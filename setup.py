"""Legacy setup shim: the build environment has no `wheel` package, so
`pip install -e . --no-build-isolation` falls back to `setup.py develop`,
which this file enables. All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
