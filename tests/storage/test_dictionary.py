"""Unit tests for delta and main dictionaries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import DeltaDictionary, MainDictionary, NULL_CODE


class TestDeltaDictionary:
    def test_encode_assigns_first_seen_order(self):
        d = DeltaDictionary()
        assert d.encode("b") == 0
        assert d.encode("a") == 1
        assert d.encode("b") == 0
        assert len(d) == 2
        assert d.values() == ["b", "a"]

    def test_null_encodes_to_null_code(self):
        d = DeltaDictionary()
        assert d.encode(None) == NULL_CODE
        assert len(d) == 0

    def test_lookup(self):
        d = DeltaDictionary()
        d.encode(42)
        assert d.lookup(42) == 0
        assert d.lookup(43) is None
        assert d.lookup(None) is None

    def test_decode(self):
        d = DeltaDictionary()
        d.encode("x")
        assert d.decode(0) == "x"
        assert d.decode(NULL_CODE) is None

    def test_contains(self):
        d = DeltaDictionary()
        d.encode(1)
        assert 1 in d
        assert 2 not in d

    def test_min_max(self):
        d = DeltaDictionary()
        assert d.min_value() is None
        assert d.max_value() is None
        d.encode(5)
        d.encode(2)
        d.encode(9)
        assert d.min_value() == 2
        assert d.max_value() == 9


class TestMainDictionary:
    def test_sorted_codes(self):
        d = MainDictionary(["pear", "apple", "pear", "fig"])
        assert d.values() == ["apple", "fig", "pear"]
        assert d.lookup("apple") == 0
        assert d.lookup("pear") == 2

    def test_nulls_excluded(self):
        d = MainDictionary([None, 1, None])
        assert len(d) == 1
        assert d.lookup(None) is None

    def test_min_max_constant_time_ends(self):
        d = MainDictionary([5, 1, 3])
        assert d.min_value() == 1
        assert d.max_value() == 5

    def test_empty(self):
        d = MainDictionary()
        assert len(d) == 0
        assert d.min_value() is None
        assert d.max_value() is None

    def test_from_sorted(self):
        d = MainDictionary.from_sorted([1, 2, 3])
        assert d.lookup(2) == 1
        assert d.decode(0) == 1

    def test_decode_null(self):
        d = MainDictionary([1])
        assert d.decode(NULL_CODE) is None

    @given(st.lists(st.integers()))
    def test_property_codes_are_ranks(self, values):
        d = MainDictionary(values)
        decoded = [d.decode(i) for i in range(len(d))]
        assert decoded == sorted(set(values))
        for value in set(values):
            assert d.decode(d.lookup(value)) == value


class TestMemoryEstimates:
    def test_nbytes_grows_with_values(self):
        d = DeltaDictionary()
        assert d.nbytes() == 0
        d.encode("hello")
        assert d.nbytes() == 5
        d.encode(7)
        assert d.nbytes() == 13

    def test_main_nbytes(self):
        assert MainDictionary(["ab", "c"]).nbytes() == 3
