"""Unit tests for the catalog and aging rules."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage import (
    Catalog,
    ColumnDef,
    ConsistentAging,
    Schema,
    SqlType,
    ratio_aging,
    threshold_aging,
)


def schema():
    return Schema([ColumnDef("id", SqlType.INT, nullable=False)], primary_key="id")


class TestCatalog:
    def test_create_and_lookup(self):
        cat = Catalog()
        table = cat.create_table("t", schema())
        assert cat.table("t") is table
        assert cat.has_table("t")
        assert "t" in cat
        assert cat.table_names() == ["t"]

    def test_table_ids_unique_and_not_reused(self):
        cat = Catalog()
        t1 = cat.create_table("a", schema())
        cat.drop_table("a")
        t2 = cat.create_table("a", schema())
        assert t1.table_id != t2.table_id

    def test_duplicate_name_rejected(self):
        cat = Catalog()
        cat.create_table("t", schema())
        with pytest.raises(CatalogError):
            cat.create_table("t", schema())

    def test_missing_lookups(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.table("nope")
        with pytest.raises(CatalogError):
            cat.drop_table("nope")


class TestAgingRules:
    def test_threshold_rule(self):
        rule = threshold_aging("year", hot_if_at_least=2014)
        assert rule({"year": 2014}) == "hot"
        assert rule({"year": 2015}) == "hot"
        assert rule({"year": 2013}) == "cold"
        assert rule({"year": None}) == "cold"
        assert rule({}) == "cold"

    def test_threshold_rule_on_dates(self):
        rule = threshold_aging("day", hot_if_at_least="2014-01-01")
        assert rule({"day": "2014-06-01"}) == "hot"
        assert rule({"day": "2013-12-31"}) == "cold"

    def test_ratio_rule_quarter_hot(self):
        # The paper's 1:3 hot/cold ratio (Fig. 11).
        years = [2010, 2011, 2012, 2013]
        rule = ratio_aging("year", years, hot_fraction=0.25)
        assert [rule({"year": y}) for y in years] == ["cold", "cold", "cold", "hot"]

    def test_ratio_rule_all_hot(self):
        rule = ratio_aging("year", [1, 2], hot_fraction=1.0)
        assert rule({"year": 1}) == "hot"

    def test_ratio_rule_validation(self):
        with pytest.raises(SchemaError):
            ratio_aging("year", [], hot_fraction=0.5)
        with pytest.raises(SchemaError):
            ratio_aging("year", [1], hot_fraction=0.0)
        with pytest.raises(SchemaError):
            ratio_aging("year", [1], hot_fraction=1.5)


class TestConsistentAging:
    def test_covers(self):
        decl = ConsistentAging("header", "item")
        assert decl.covers("header", "item")
        assert decl.covers("item", "header")
        assert not decl.covers("header", "dim")
        assert decl.tables() == ("header", "item")
