"""Unit tests for the catalog and aging rules."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage import (
    Catalog,
    ColumnDef,
    ConsistentAging,
    Schema,
    SqlType,
    aging_rule_from_spec,
    aging_rule_spec,
    ratio_aging,
    threshold_aging,
)


def schema():
    return Schema([ColumnDef("id", SqlType.INT, nullable=False)], primary_key="id")


class TestCatalog:
    def test_create_and_lookup(self):
        cat = Catalog()
        table = cat.create_table("t", schema())
        assert cat.table("t") is table
        assert cat.has_table("t")
        assert "t" in cat
        assert cat.table_names() == ["t"]

    def test_table_ids_unique_and_not_reused(self):
        cat = Catalog()
        t1 = cat.create_table("a", schema())
        cat.drop_table("a")
        t2 = cat.create_table("a", schema())
        assert t1.table_id != t2.table_id

    def test_duplicate_name_rejected(self):
        cat = Catalog()
        cat.create_table("t", schema())
        with pytest.raises(CatalogError):
            cat.create_table("t", schema())

    def test_missing_lookups(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.table("nope")
        with pytest.raises(CatalogError):
            cat.drop_table("nope")


class TestAgingRules:
    def test_threshold_rule(self):
        rule = threshold_aging("year", hot_if_at_least=2014)
        assert rule({"year": 2014}) == "hot"
        assert rule({"year": 2015}) == "hot"
        assert rule({"year": 2013}) == "cold"
        assert rule({"year": None}) == "cold"
        assert rule({}) == "cold"

    def test_threshold_rule_on_dates(self):
        rule = threshold_aging("day", hot_if_at_least="2014-01-01")
        assert rule({"day": "2014-06-01"}) == "hot"
        assert rule({"day": "2013-12-31"}) == "cold"

    def test_ratio_rule_quarter_hot(self):
        # The paper's 1:3 hot/cold ratio (Fig. 11).
        years = [2010, 2011, 2012, 2013]
        rule = ratio_aging("year", years, hot_fraction=0.25)
        assert [rule({"year": y}) for y in years] == ["cold", "cold", "cold", "hot"]

    def test_ratio_rule_all_hot(self):
        rule = ratio_aging("year", [1, 2], hot_fraction=1.0)
        assert rule({"year": 1}) == "hot"

    def test_ratio_rule_validation(self):
        with pytest.raises(SchemaError):
            ratio_aging("year", [], hot_fraction=0.5)
        with pytest.raises(SchemaError):
            ratio_aging("year", [1], hot_fraction=0.0)
        with pytest.raises(SchemaError):
            ratio_aging("year", [1], hot_fraction=1.5)

    def test_ratio_rule_with_duplicate_domain_values(self):
        # A domain observed from data carries duplicates; the quantile cut
        # must still land on a sensible threshold (here: 25 % of the
        # *observations* hot means only the max year qualifies).
        years = [2010, 2010, 2011, 2011, 2012, 2012, 2013, 2013]
        rule = ratio_aging("year", years, hot_fraction=0.25)
        assert rule({"year": 2013}) == "hot"
        assert rule({"year": 2012}) == "cold"

    def test_ratio_rule_all_duplicates(self):
        # A single-valued domain (however many observations): everything
        # at or above the only value is hot regardless of the fraction.
        rule = ratio_aging("year", [2012] * 5, hot_fraction=0.5)
        assert rule({"year": 2012}) == "hot"
        assert rule({"year": 2011}) == "cold"

    def test_ratio_rule_hot_fraction_one_keeps_domain_hot(self):
        years = [2010, 2011, 2012]
        rule = ratio_aging("year", years, hot_fraction=1.0)
        assert [rule({"year": y}) for y in years] == ["hot"] * 3
        # Values below the whole domain still age out...
        assert rule({"year": 2009}) == "cold"
        # ...as do NULLs, which belong to no recent business transaction.
        assert rule({"year": None}) == "cold"

    def test_null_routes_cold_for_every_constructor(self):
        for rule in (
            threshold_aging("year", 2014),
            ratio_aging("year", [2010, 2011], hot_fraction=0.5),
        ):
            assert rule({"year": None}) == "cold"
            assert rule({}) == "cold"


class TestAgingRuleSpecs:
    def test_threshold_round_trip(self):
        rule = threshold_aging("year", 2014)
        spec = aging_rule_spec(rule)
        assert spec == {"kind": "threshold", "column": "year", "hot_if_at_least": 2014}
        assert aging_rule_from_spec(spec) == rule

    def test_ratio_rules_serialize_as_their_threshold(self):
        rule = ratio_aging("year", [2010, 2011, 2012, 2013], hot_fraction=0.25)
        restored = aging_rule_from_spec(aging_rule_spec(rule))
        assert restored == rule
        assert restored({"year": 2013}) == "hot"

    def test_callable_rules_have_no_spec(self):
        assert aging_rule_spec(lambda row: "hot") is None
        assert aging_rule_from_spec(None) is None

    def test_unknown_spec_kind_rejected(self):
        with pytest.raises(SchemaError):
            aging_rule_from_spec({"kind": "lunar-phase"})

    def test_non_json_threshold_has_no_spec(self):
        rule = threshold_aging("stamp", hot_if_at_least=object())
        assert aging_rule_spec(rule) is None


class TestConsistentAging:
    def test_covers(self):
        decl = ConsistentAging("header", "item")
        assert decl.covers("header", "item")
        assert decl.covers("item", "header")
        assert not decl.covers("header", "dim")
        assert decl.tables() == ("header", "item")

    def test_covers_is_symmetric_for_every_pair(self):
        decl = ConsistentAging("orders", "orderline")
        for a, b in [("orders", "orderline"), ("orderline", "orders")]:
            assert decl.covers(a, b) == decl.covers(b, a) is True
        for a, b in [("orders", "stock"), ("stock", "orderline")]:
            assert decl.covers(a, b) == decl.covers(b, a) is False
