"""Unit tests for schemas, column definitions, and type validation."""

import pytest

from repro.errors import SchemaError
from repro.storage import ColumnDef, Schema, SqlType, tid_column


def sample_schema():
    return Schema(
        [
            ColumnDef("id", SqlType.INT, nullable=False),
            ColumnDef("name", SqlType.TEXT),
            ColumnDef("price", SqlType.FLOAT),
            ColumnDef("day", SqlType.DATE),
            tid_column("tid_self"),
        ],
        primary_key="id",
    )


class TestSchemaDefinition:
    def test_columns_order_preserved(self):
        schema = sample_schema()
        assert schema.column_names == ["id", "name", "price", "day", "tid_self"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnDef("a", SqlType.INT), ColumnDef("a", SqlType.TEXT)])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnDef("a", SqlType.INT)], primary_key="b")

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            ColumnDef("bad name", SqlType.INT)
        with pytest.raises(SchemaError):
            ColumnDef("", SqlType.INT)

    def test_tid_columns_flagged_and_separable(self):
        schema = sample_schema()
        assert schema.tid_column_names() == ["tid_self"]
        assert "tid_self" not in schema.business_column_names()

    def test_column_lookup(self):
        schema = sample_schema()
        assert schema.column("price").sql_type is SqlType.FLOAT
        assert schema.has_column("name")
        assert not schema.has_column("nope")
        with pytest.raises(SchemaError):
            schema.column("nope")

    def test_extended_with(self):
        schema = Schema([ColumnDef("a", SqlType.INT)], primary_key="a")
        extended = schema.extended_with([tid_column("tid_x")])
        assert extended.column_names == ["a", "tid_x"]
        assert extended.primary_key == "a"
        assert len(schema) == 1  # original untouched


class TestRowValidation:
    def test_valid_row_filled_and_coerced(self):
        schema = sample_schema()
        row = schema.validate_row({"id": 1, "name": "x", "price": 2})
        assert row == {
            "id": 1,
            "name": "x",
            "price": 2.0,
            "day": None,
            "tid_self": None,
        }
        assert isinstance(row["price"], float)

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            sample_schema().validate_row({"id": 1, "wat": 2})

    def test_not_null_enforced(self):
        with pytest.raises(SchemaError):
            sample_schema().validate_row({"name": "x"})

    def test_type_mismatches(self):
        schema = sample_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"id": "one"})
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "name": 5})
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "price": "free"})
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "day": 20240101})

    def test_int_accepts_int_rejects_bool(self):
        schema = Schema([ColumnDef("n", SqlType.INT)])
        assert schema.validate_row({"n": 5})["n"] == 5
        with pytest.raises(SchemaError):
            schema.validate_row({"n": True})

    def test_float_accepts_int(self):
        schema = Schema([ColumnDef("x", SqlType.FLOAT)])
        assert schema.validate_row({"x": 3})["x"] == 3.0

    def test_date_iso_string(self):
        schema = Schema([ColumnDef("d", SqlType.DATE)])
        assert schema.validate_row({"d": "2014-07-01"})["d"] == "2014-07-01"
