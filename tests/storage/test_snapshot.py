"""Tests for database snapshot save/load."""

import pytest

from repro import Database, ExecutionStrategy
from repro.errors import StorageError
from repro.storage import load_database, save_database, threshold_aging

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def populated_db():
    db = make_erp_db()
    load_erp(db, n_headers=5, merge=True)
    load_erp(db, n_headers=2, start_hid=60, merge=False)
    db.update("item", 0, {"price": 99.0})
    db.delete("item", 1)
    return db


class TestRoundTrip:
    def test_queries_identical_after_reload(self, tmp_path):
        db = populated_db()
        expected_profit = db.query(PROFIT_SQL, strategy=UNCACHED)
        expected_join = db.query(HEADER_ITEM_SQL, strategy=UNCACHED)
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.query(PROFIT_SQL, strategy=UNCACHED) == expected_profit
        assert restored.query(HEADER_ITEM_SQL, strategy=FULL) == expected_join

    def test_partition_layout_preserved(self, tmp_path):
        db = populated_db()
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        for name in db.catalog.table_names():
            original = {p.name: p.row_count for p in db.table(name).partitions()}
            loaded = {p.name: p.row_count for p in restored.table(name).partitions()}
            assert loaded == original, name

    def test_mvcc_stamps_and_visibility_preserved(self, tmp_path):
        db = populated_db()
        checkpoint = 4  # an early snapshot tid
        past = db.query("SELECT COUNT(*) AS n FROM item", as_of=checkpoint)
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.query("SELECT COUNT(*) AS n FROM item", as_of=checkpoint) == past

    def test_writes_continue_after_reload(self, tmp_path):
        db = populated_db()
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        # tids continue past the snapshot high-water mark
        txn = restored.begin()
        assert txn.tid > db.transactions.global_snapshot() - 1
        restored.insert("header", {"hid": 900, "year": 2014}, txn=txn)
        txn.commit()
        restored.insert("item", {"iid": 9000, "hid": 900, "cid": 0, "price": 5.0})
        assert restored.query(HEADER_ITEM_SQL, strategy=FULL) == restored.query(
            HEADER_ITEM_SQL, strategy=UNCACHED
        )

    def test_matching_dependencies_restored(self, tmp_path):
        db = populated_db()
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert len(restored.enforcer.dependencies()) == 2
        # Enforcement still stamps new child rows.
        restored.insert("header", {"hid": 901, "year": 2014})
        restored.insert("item", {"iid": 9001, "hid": 901, "cid": 0, "price": 1.0})
        row = restored.table("item").get_row(9001)
        assert row["tid_header"] == restored.table("header").get_row(901)["tid_header"]

    def test_table_ids_preserved_and_not_reused(self, tmp_path):
        db = populated_db()
        ids = {name: db.table(name).table_id for name in db.catalog.table_names()}
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        for name, table_id in ids.items():
            assert restored.table(name).table_id == table_id
        fresh = restored.create_table("extra", [("x", "INT")])
        assert fresh.table_id > max(ids.values())

    def test_history_survives(self, tmp_path):
        db = make_erp_db()
        load_erp(db, n_headers=3, merge=False)
        checkpoint = db.transactions.global_snapshot()
        db.delete("item", 0)
        db.merge(keep_history=True)
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        past = restored.query("SELECT COUNT(*) AS n FROM item", as_of=checkpoint)
        now = restored.query("SELECT COUNT(*) AS n FROM item")
        assert past.rows[0][0] == now.rows[0][0] + 1


class TestAgedAndUpdateDelta:
    def test_callable_aged_requires_rule(self, tmp_path):
        db = Database()
        rule = lambda row: "hot" if (row["year"] or 0) >= 2014 else "cold"
        db.create_table(
            "t", [("k", "INT"), ("year", "INT")], primary_key="k", aging_rule=rule
        )
        db.insert("t", {"k": 1, "year": 2015})
        db.insert("t", {"k": 2, "year": 2010})
        save_database(db, tmp_path / "snap")
        with pytest.raises(StorageError):
            load_database(tmp_path / "snap")
        restored = load_database(tmp_path / "snap", aging_rules={"t": rule})
        assert restored.table("t").partition("hot_delta").row_count == 1
        assert restored.table("t").partition("cold_delta").row_count == 1

    def test_threshold_aging_round_trips(self, tmp_path):
        db = Database()
        rule = threshold_aging("year", 2014)
        db.create_table(
            "t", [("k", "INT"), ("year", "INT")], primary_key="k", aging_rule=rule
        )
        db.insert("t", {"k": 1, "year": 2015})
        db.insert("t", {"k": 2, "year": 2010})
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.table("t").aging_rule == rule
        assert restored.table("t").partition("hot_delta").row_count == 1
        assert restored.table("t").partition("cold_delta").row_count == 1
        # New inserts keep routing through the restored rule.
        restored.insert("t", {"k": 3, "year": 2016})
        assert restored.table("t").partition("hot_delta").row_count == 2

    def test_update_delta_layout_preserved(self, tmp_path):
        db = Database()
        db.create_table(
            "t", [("k", "INT"), ("v", "FLOAT")], primary_key="k",
            separate_update_delta=True,
        )
        db.insert("t", {"k": 1, "v": 1.0})
        db.merge()
        db.update("t", 1, {"v": 2.0})
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.table("t").partition("udelta").row_count == 1
        assert restored.table("t").get_row(1)["v"] == 2.0


class TestErrors:
    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(StorageError):
            load_database(tmp_path / "nothing")

    def test_missing_partition_file(self, tmp_path):
        db = populated_db()
        root = save_database(db, tmp_path / "snap")
        (root / "item.delta.jsonl").unlink()
        with pytest.raises(StorageError):
            load_database(root)

    def test_bad_format_version(self, tmp_path):
        import json

        db = populated_db()
        root = save_database(db, tmp_path / "snap")
        catalog = json.loads((root / "catalog.json").read_text())
        catalog["format_version"] = 999
        (root / "catalog.json").write_text(json.dumps(catalog))
        with pytest.raises(StorageError):
            load_database(root)
