"""Unit tests for dictionary-encoded column fragments."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import ColumnFragment


class TestDeltaFragment:
    def test_append_and_read(self):
        frag = ColumnFragment("city")
        for value in ["rome", "oslo", "rome", None]:
            frag.append(value)
        assert len(frag) == 4
        assert frag.value_at(0) == "rome"
        assert frag.value_at(3) is None
        assert frag.codes().tolist() == [0, 1, 0, -1]

    def test_decode_rows(self):
        frag = ColumnFragment("n")
        for value in [10, 20, 30]:
            frag.append(value)
        out = frag.decode_rows(np.array([2, 0]))
        assert out.tolist() == [30, 10]

    def test_decode_rows_with_nulls(self):
        frag = ColumnFragment("n")
        for value in [None, 5]:
            frag.append(value)
        assert frag.decode_rows([0, 1]).tolist() == [None, 5]

    def test_decode_all(self):
        frag = ColumnFragment("n")
        for value in [1, None, 1]:
            frag.append(value)
        assert frag.decode_all() == [1, None, 1]

    def test_equality_mask(self):
        frag = ColumnFragment("k")
        for value in ["a", "b", "a", None]:
            frag.append(value)
        assert frag.equality_mask("a").tolist() == [True, False, True, False]
        assert frag.equality_mask("zzz").tolist() == [False] * 4
        assert frag.equality_mask(None).tolist() == [False] * 4

    def test_min_max_through_dictionary(self):
        frag = ColumnFragment("t")
        assert frag.min_value() is None
        for value in [7, 3, 9]:
            frag.append(value)
        assert frag.min_value() == 3
        assert frag.max_value() == 9


class TestMainFragment:
    def test_build_main_sorted_dictionary(self):
        frag = ColumnFragment.build_main("c", ["b", "a", "b", None])
        assert len(frag) == 4
        assert frag.decode_all() == ["b", "a", "b", None]
        # codes are sorted ranks
        assert frag.codes().tolist() == [1, 0, 1, -1]

    def test_main_is_append_immutable(self):
        frag = ColumnFragment.build_main("c", [1])
        with pytest.raises(TypeError):
            frag.append(2)

    def test_build_main_empty(self):
        frag = ColumnFragment.build_main("c", [])
        assert len(frag) == 0
        assert frag.min_value() is None


class TestMemory:
    def test_nbytes_packs_codes(self):
        frag = ColumnFragment("c")
        for i in range(100):
            frag.append(i % 2)  # 2 distinct values -> 2 bits per code
        small = frag.nbytes()
        frag2 = ColumnFragment("c")
        for i in range(100):
            frag2.append(i)  # 100 distinct -> 7 bits per code + larger dict
        assert frag2.nbytes() > small


@given(st.lists(st.one_of(st.none(), st.integers(-50, 50))))
def test_property_roundtrip_delta(values):
    frag = ColumnFragment("v")
    for value in values:
        frag.append(value)
    assert frag.decode_all() == values


@given(st.lists(st.one_of(st.none(), st.text(max_size=5))))
def test_property_roundtrip_main(values):
    frag = ColumnFragment.build_main("v", values)
    assert frag.decode_all() == values
