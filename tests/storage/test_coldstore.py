"""The memory-mapped cold tier: demotion, identity, bit-identity, recovery.

The tier contract under test:

* demotion swaps a cold main's backing onto disk files **in place** — same
  partition/fragment objects, no version bump, so plans and memos survive;
* query results are bit-identical across all-resident and tiered layouts
  under every execution mode (serial, parallel, delta-memo incremental);
* the partition synopsis answers prune-relevant facts (min/max/nulls)
  without touching disk;
* released handles reopen transparently; byte accounting splits
  resident vs mapped; reattach after restart CRC-validates the files.
"""

import numpy as np
import pytest

from repro import Database, ExecutionStrategy
from repro.errors import StorageError
from repro.storage import threshold_aging
from repro.storage.coldstore import (
    LazyMainDictionary,
    MappedIntVector,
    demote_partition,
    partition_dir,
    read_manifest,
    release_table,
)

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

SPAN_SQL = (
    "SELECT h.year AS year, SUM(i.price) AS total, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY h.year"
)


def make_aged_db(cold_path=None, **kwargs) -> Database:
    """header/item both aged on year (consistently), MD installed."""
    db = Database(cold_path=cold_path, **kwargs)
    db.create_table(
        "header",
        [("hid", "INT"), ("year", "INT")],
        primary_key="hid",
        aging_rule=threshold_aging("year", 2014),
    )
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("year", "INT"), ("price", "FLOAT")],
        primary_key="iid",
        aging_rule=threshold_aging("year", 2014),
    )
    db.add_matching_dependency("header", "hid", "item", "hid")
    db.declare_consistent_aging("header", "item")
    return db


def load_aged(db: Database, n_headers: int = 8, merge: bool = True, start: int = 0):
    """Half the objects land cold (2012/2013), half hot (2014/2015)."""
    for hid in range(start, start + n_headers):
        year = 2012 + hid % 4
        items = [
            {"iid": hid * 10 + k, "hid": hid, "year": year, "price": float(k + 1)}
            for k in range(3)
        ]
        db.insert_business_object("header", {"hid": hid, "year": year}, "item", items)
    if merge:
        db.merge()


@pytest.fixture
def tiered_db(tmp_path):
    db = make_aged_db(cold_path=tmp_path / "cold")
    load_aged(db, n_headers=8, merge=True)
    return db


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestMappedIntVector:
    def _vector(self, tmp_path, values):
        path = tmp_path / "codes.bin"
        path.write_bytes(np.asarray(values, dtype="<i8").tobytes())
        return MappedIntVector(path, len(values))

    def test_reads_and_length(self, tmp_path):
        vec = self._vector(tmp_path, [5, -1, 7])
        assert len(vec) == 3
        assert list(vec) == [5, -1, 7]
        assert vec[0] == 5 and vec[-1] == 7
        assert vec[0:2].tolist() == [5, -1]

    def test_bounds_checked(self, tmp_path):
        vec = self._vector(tmp_path, [1])
        with pytest.raises(IndexError):
            vec[1]
        with pytest.raises(IndexError):
            vec[-2]

    def test_read_only(self, tmp_path):
        vec = self._vector(tmp_path, [1, 2])
        with pytest.raises(StorageError):
            vec[0] = 9

    def test_release_then_reopen(self, tmp_path):
        vec = self._vector(tmp_path, [1, 2, 3])
        assert vec[1] == 2
        assert vec.is_loaded
        vec.release()
        assert not vec.is_loaded
        assert vec[2] == 3  # transparently re-mapped
        assert vec.nbytes() == 24

    def test_zero_length_needs_no_file(self, tmp_path):
        vec = MappedIntVector(tmp_path / "missing.bin", 0)
        assert len(vec) == 0
        assert vec.view().tolist() == []


class TestLazyMainDictionary:
    def _dictionary(self, tmp_path, values):
        import json

        path = tmp_path / "d.json"
        path.write_text(json.dumps(sorted(values)))
        return LazyMainDictionary(path, len(values), min(values), max(values))

    def test_metadata_without_io(self, tmp_path):
        # The file deliberately does not exist: metadata must not touch it.
        lazy = LazyMainDictionary(tmp_path / "absent.json", 4, "a", "z")
        assert len(lazy) == 4
        assert lazy.min_value() == "a"
        assert lazy.max_value() == "z"
        assert not lazy.is_loaded
        assert lazy.loaded_nbytes() == 0

    def test_data_access_loads(self, tmp_path):
        lazy = self._dictionary(tmp_path, [10, 20, 30])
        assert lazy.decode(1) == 20
        assert lazy.is_loaded
        assert lazy.lookup(30) == 2
        assert 10 in lazy and 99 not in lazy
        assert lazy.values() == [10, 20, 30]

    def test_release_frees_and_reloads(self, tmp_path):
        lazy = self._dictionary(tmp_path, [1, 2])
        lazy.decode(0)
        assert lazy.release() > 0
        assert not lazy.is_loaded
        assert lazy.decode(1) == 2  # reloaded on demand


# ----------------------------------------------------------------------
# demotion mechanics
# ----------------------------------------------------------------------
class TestDemotion:
    def test_swap_preserves_identity_and_version(self, tiered_db):
        table = tiered_db.table("header")
        partition = table.group("cold").main
        fragment = partition.column("year")
        version_before = table.version
        partition_version = partition.version

        demoted = tiered_db.age_out()
        assert ("header", partition.name) in demoted
        assert table.group("cold").main is partition  # same object
        assert partition.column("year") is fragment  # same fragment
        assert partition.storage_tier == "mapped"
        assert fragment.is_mapped
        assert table.version == version_before  # no memo/plan invalidation
        assert partition.version == partition_version

    def test_idempotent(self, tiered_db):
        first = tiered_db.age_out()
        assert first
        assert tiered_db.age_out() == []

    def test_only_mains_demotable(self, tiered_db, tmp_path):
        delta = tiered_db.table("header").group("cold").delta
        with pytest.raises(StorageError):
            demote_partition("header", delta, tmp_path / "cold2")

    def test_in_memory_db_without_cold_path_refuses(self):
        from repro.errors import DurabilityError

        db = make_aged_db()
        load_aged(db, n_headers=4)
        with pytest.raises(DurabilityError):
            db.age_out()

    def test_rows_identical_after_demotion(self, tiered_db):
        partition = tiered_db.table("item").group("cold").main
        before = [partition.get_row(i) for i in range(partition.row_count)]
        tiered_db.age_out()
        after = [partition.get_row(i) for i in range(partition.row_count)]
        assert after == before

    def test_manifest_written_and_validated(self, tiered_db):
        tiered_db.age_out()
        partition = tiered_db.table("header").group("cold").main
        manifest = read_manifest(
            partition_dir(tiered_db.cold_dir, "header", partition.name)
        )
        assert manifest is not None
        assert manifest["row_count"] == partition.row_count
        assert [c["name"] for c in manifest["columns"]] == partition.column_names()

    def test_drop_table_removes_cold_files(self, tiered_db):
        tiered_db.age_out()
        table_dir = tiered_db.cold_dir / "header"
        assert table_dir.is_dir()
        tiered_db.drop_table("header")
        assert not table_dir.exists()


class TestByteAccounting:
    def test_resident_vs_mapped_split(self, tiered_db):
        table = tiered_db.table("item")
        resident_before = table.nbytes_resident()
        assert table.nbytes_mapped() == 0
        tiered_db.age_out()
        assert table.nbytes_mapped() > 0
        assert table.nbytes_resident() < resident_before
        tiers = table.tier_bytes()
        assert set(tiers) == {"hot", "cold_resident", "cold_mapped"}
        assert tiers["cold_mapped"] > 0
        assert tiers["hot"] > 0

    def test_release_cold_frees_loaded_handles(self, tiered_db):
        tiered_db.age_out()
        table = tiered_db.table("item")
        # Touch the data so the lazy dictionaries materialize.
        tiered_db.query(SPAN_SQL, strategy=UNCACHED)
        assert release_table(table) > 0
        # Released handles reopen transparently.
        assert tiered_db.query(SPAN_SQL, strategy=UNCACHED).rows

    def test_governor_cold_shed_runs_first(self, tmp_path):
        db = make_aged_db(cold_path=tmp_path / "cold")
        load_aged(db, n_headers=8)
        db.age_out()
        db.query(SPAN_SQL, strategy=FULL)  # load handles + create an entry
        shed = db.cache.shed_to_budget(0)
        assert "cold" in shed
        # Shedding must not break subsequent queries.
        assert db.query(SPAN_SQL, strategy=UNCACHED).rows


# ----------------------------------------------------------------------
# synopsis
# ----------------------------------------------------------------------
class TestSynopsis:
    def test_min_max_nulls_without_disk(self, tiered_db):
        tiered_db.age_out()
        partition = tiered_db.table("header").group("cold").main
        fragment = partition.column("year")
        assert partition.min_value("year") == 2012
        assert partition.max_value("year") == 2013
        assert partition.has_nulls("year") is False
        # The verdicts came from the synopsis: nothing was loaded.
        assert not fragment.dictionary.is_loaded

    def test_synopsis_skips_counted_in_reports(self, tmp_path):
        db = make_aged_db(cold_path=tmp_path / "cold")
        load_aged(db, n_headers=8)
        db.age_out()
        db.query(SPAN_SQL, strategy=FULL)
        prune = db.last_report.prune
        assert prune.pruned_total > 0
        assert prune.synopsis_skips > 0
        assert prune.synopsis_skips <= prune.pruned_total


# ----------------------------------------------------------------------
# bit-identity across layouts and execution modes
# ----------------------------------------------------------------------
class TestBitIdentity:
    def _pair(self, tmp_path, **kwargs):
        resident = make_aged_db(**kwargs)
        tiered = make_aged_db(cold_path=tmp_path / "cold", **kwargs)
        for db in (resident, tiered):
            load_aged(db, n_headers=8, merge=True)
            load_aged(db, n_headers=2, start=100, merge=False)
        tiered.age_out()
        return resident, tiered

    def _assert_identical(self, a, b):
        assert a.columns == b.columns
        assert a.rows == b.rows
        for row_a, row_b in zip(a.rows, b.rows):
            assert [type(v) for v in row_a] == [type(v) for v in row_b]

    def test_serial(self, tmp_path):
        resident, tiered = self._pair(tmp_path)
        for strategy in (UNCACHED, FULL):
            self._assert_identical(
                resident.query(SPAN_SQL, strategy=strategy),
                tiered.query(SPAN_SQL, strategy=strategy),
            )

    def test_parallel(self, tmp_path):
        resident, tiered = self._pair(tmp_path, n_workers=2)
        try:
            self._assert_identical(
                resident.query(SPAN_SQL, strategy=FULL),
                tiered.query(SPAN_SQL, strategy=FULL),
            )
        finally:
            resident.close()
            tiered.close()

    def test_delta_memo_incremental(self, tmp_path):
        # The delta memo only engages on single-entry plans, which aged
        # (multi-combo) tables never produce — so demote a *default*-group
        # main directly through the coldstore API instead of age_out().
        def build(cold=None):
            db = Database()
            db.create_table(
                "header", [("hid", "INT"), ("year", "INT")], primary_key="hid"
            )
            db.create_table(
                "item",
                [("iid", "INT"), ("hid", "INT"), ("price", "FLOAT")],
                primary_key="iid",
            )
            db.add_matching_dependency("header", "hid", "item", "hid")
            for hid in range(8):
                db.insert_business_object(
                    "header",
                    {"hid": hid, "year": 2012 + hid % 4},
                    "item",
                    [
                        {"iid": hid * 10 + k, "hid": hid, "price": float(k + 1)}
                        for k in range(3)
                    ],
                )
            db.merge()
            # Deltas must be non-empty before the memo is built, else the
            # plan excludes them and later growth forces a rebuild.
            for hid in (100, 101):
                db.insert_business_object(
                    "header",
                    {"hid": hid, "year": 2014},
                    "item",
                    [{"iid": hid * 10, "hid": hid, "price": 2.0}],
                )
            if cold is not None:
                for name in ("header", "item"):
                    table = db.table(name)
                    demote_partition(name, table.group("default").main, cold)
            return db

        resident, tiered = build(), build(cold=tmp_path / "cold")
        for db in (resident, tiered):
            db.query(SPAN_SQL, strategy=FULL)
            for hid in (200, 201):  # fresh delta rows between the two hits
                db.insert_business_object(
                    "header",
                    {"hid": hid, "year": 2014},
                    "item",
                    [{"iid": hid * 10, "hid": hid, "price": 4.0}],
                )
        result_resident = resident.query(SPAN_SQL, strategy=FULL)
        result_tiered = tiered.query(SPAN_SQL, strategy=FULL)
        assert resident.last_report.delta_memo_mode == "incremental"
        assert tiered.last_report.delta_memo_mode == "incremental"
        self._assert_identical(result_resident, result_tiered)

    def test_cache_entry_survives_demotion(self, tmp_path):
        db = make_aged_db(cold_path=tmp_path / "cold")
        load_aged(db, n_headers=8)
        baseline = db.query(SPAN_SQL, strategy=FULL)
        entries = db.cache.entry_count()
        assert entries > 0
        db.age_out()
        # Demotion bumps no versions: the entries and plan are still valid.
        assert db.cache.entry_count() == entries
        again = db.query(SPAN_SQL, strategy=FULL)
        assert db.last_report.cache_hits >= 1
        assert again.rows == baseline.rows


# ----------------------------------------------------------------------
# mutation of demoted partitions
# ----------------------------------------------------------------------
class TestColdMutation:
    def test_delete_promotes_dts_and_stays_correct(self, tiered_db):
        tiered_db.age_out()
        before = tiered_db.query(SPAN_SQL, strategy=UNCACHED)
        # hid=0 is a 2012 (cold) object: its rows live in the mapped mains.
        tiered_db.delete("item", 0)  # iid 0 belongs to hid 0
        partition = tiered_db.table("item").group("cold").main
        assert partition.storage_tier == "mapped"  # codes/cts still mapped
        after = tiered_db.query(SPAN_SQL, strategy=UNCACHED)
        total_before = sum(r[1] for r in before.rows)
        total_after = sum(r[1] for r in after.rows)
        assert total_after == total_before - 1.0  # iid 0 had price 1.0
        # Uncached and cached agree on the mutated cold data.
        cached = tiered_db.query(SPAN_SQL, strategy=FULL)
        assert cached.rows == after.rows


# ----------------------------------------------------------------------
# restart: reattach or discard
# ----------------------------------------------------------------------
class TestReattach:
    def _durable_aged_db(self, path):
        db = Database.open(path)
        db.create_table(
            "header",
            [("hid", "INT"), ("year", "INT")],
            primary_key="hid",
            aging_rule=threshold_aging("year", 2014),
        )
        db.create_table(
            "item",
            [("iid", "INT"), ("hid", "INT"), ("year", "INT"), ("price", "FLOAT")],
            primary_key="iid",
            aging_rule=threshold_aging("year", 2014),
        )
        db.add_matching_dependency("header", "hid", "item", "hid")
        db.declare_consistent_aging("header", "item")
        return db

    def test_cold_tier_survives_restart(self, tmp_path):
        db = self._durable_aged_db(tmp_path / "db")
        load_aged(db, n_headers=8)
        db.age_out()
        expected = db.query(SPAN_SQL, strategy=UNCACHED)
        db.close()

        recovered = Database.open(tmp_path / "db")
        for name in ("header", "item"):
            assert recovered.table(name).group("cold").main.storage_tier == "mapped"
        assert recovered.query(SPAN_SQL, strategy=UNCACHED).rows == expected.rows
        recovered.close()

    def test_corrupted_cold_file_discarded(self, tmp_path):
        db = self._durable_aged_db(tmp_path / "db")
        load_aged(db, n_headers=8)
        db.age_out()
        expected = db.query(SPAN_SQL, strategy=UNCACHED)
        partition = db.table("header").group("cold").main
        cold = partition_dir(db.cold_dir, "header", partition.name)
        db.close()

        # Flip a byte in the year code vector: the CRC no longer matches.
        data = bytearray((cold / "year.codes.bin").read_bytes())
        data[0] ^= 0xFF
        (cold / "year.codes.bin").write_bytes(bytes(data))

        recovered = Database.open(tmp_path / "db")
        assert recovered.table("header").group("cold").main.storage_tier == "resident"
        assert not cold.exists()  # stale directory was deleted
        assert recovered.query(SPAN_SQL, strategy=UNCACHED).rows == expected.rows
        recovered.close()

    def test_stale_cold_files_after_remerge_discarded(self, tmp_path):
        db = self._durable_aged_db(tmp_path / "db")
        load_aged(db, n_headers=8)
        db.age_out()
        # New cold business + merge rebuilds the cold main resident; the
        # old cold files now describe a shorter partition.
        load_aged(db, n_headers=4, start=50, merge=True)
        expected = db.query(SPAN_SQL, strategy=UNCACHED)
        db.close()

        recovered = Database.open(tmp_path / "db")
        assert recovered.table("header").group("cold").main.storage_tier == "resident"
        assert recovered.query(SPAN_SQL, strategy=UNCACHED).rows == expected.rows
        # Re-demotion from the recovered state works.
        demoted = recovered.age_out()
        assert ("header", "cold_main") in demoted
        assert recovered.query(SPAN_SQL, strategy=UNCACHED).rows == expected.rows
        recovered.close()
