"""Unit tests for the packed visibility bit vector."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import BitVector


class TestConstruction:
    def test_empty(self):
        bv = BitVector(0)
        assert len(bv) == 0
        assert bv.pop_count() == 0
        assert not bv.any()

    def test_zero_filled(self):
        bv = BitVector(100)
        assert len(bv) == 100
        assert bv.pop_count() == 0

    def test_one_filled(self):
        bv = BitVector(100, fill=True)
        assert bv.pop_count() == 100
        assert bv.all()

    def test_fill_exact_word_boundary(self):
        bv = BitVector(128, fill=True)
        assert bv.pop_count() == 128

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_from_bools(self):
        bv = BitVector.from_bools([True, False, True, True])
        assert len(bv) == 4
        assert bv.get(0) and not bv.get(1) and bv.get(2) and bv.get(3)

    def test_from_indices(self):
        bv = BitVector.from_indices(10, [0, 5, 9])
        assert bv.set_indices() == [0, 5, 9]

    def test_from_numpy_bool(self):
        mask = np.array([False, True, False])
        bv = BitVector.from_numpy_bool(mask)
        assert bv.set_indices() == [1]


class TestBitAccess:
    def test_set_get_clear(self):
        bv = BitVector(70)
        bv.set(0)
        bv.set(63)
        bv.set(64)
        bv.set(69)
        assert bv.pop_count() == 4
        bv.clear(63)
        assert not bv.get(63)
        assert bv.pop_count() == 3

    def test_out_of_range(self):
        bv = BitVector(8)
        with pytest.raises(IndexError):
            bv.get(8)
        with pytest.raises(IndexError):
            bv.set(-1)

    def test_getitem_alias(self):
        bv = BitVector.from_bools([True, False])
        assert bv[0] is True
        assert bv[1] is False


class TestAlgebra:
    def test_and_or_xor(self):
        a = BitVector.from_bools([1, 1, 0, 0])
        b = BitVector.from_bools([1, 0, 1, 0])
        assert (a & b).set_indices() == [0]
        assert (a | b).set_indices() == [0, 1, 2]
        assert (a ^ b).set_indices() == [1, 2]

    def test_invert_masks_tail(self):
        a = BitVector.from_bools([1, 0, 1])
        inv = ~a
        assert inv.set_indices() == [1]
        assert len(inv) == 3

    def test_and_not(self):
        stored = BitVector.from_bools([1, 1, 1, 0])
        current = BitVector.from_bools([1, 0, 1, 0])
        invalidated = stored.and_not(current)
        assert invalidated.set_indices() == [1]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector(3) & BitVector(4)

    def test_and_not_padded(self):
        current = BitVector.from_bools([1, 0, 1, 1, 1])
        stored = BitVector.from_bools([1, 1, 1])
        new_rows = current.and_not_padded(stored)
        assert new_rows.set_indices() == [3, 4]

    def test_and_not_padded_rejects_longer_operand(self):
        with pytest.raises(ValueError):
            BitVector(3).and_not_padded(BitVector(5))


class TestGrowth:
    def test_extended_zero_fill(self):
        bv = BitVector.from_bools([1, 0, 1])
        grown = bv.extended(10)
        assert len(grown) == 10
        assert grown.set_indices() == [0, 2]

    def test_extended_one_fill(self):
        bv = BitVector.from_bools([1, 0])
        grown = bv.extended(5, fill=True)
        assert grown.set_indices() == [0, 2, 3, 4]

    def test_extended_cannot_shrink(self):
        with pytest.raises(ValueError):
            BitVector(5).extended(4)


class TestConversion:
    def test_roundtrip_numpy(self):
        mask = np.array([True, False] * 50)
        assert np.array_equal(BitVector.from_numpy_bool(mask).to_numpy(), mask)

    def test_iter_set(self):
        bv = BitVector.from_indices(200, [3, 64, 199])
        assert list(bv.iter_set()) == [3, 64, 199]

    def test_equality(self):
        a = BitVector.from_bools([1, 0, 1])
        b = BitVector.from_bools([1, 0, 1])
        c = BitVector.from_bools([1, 0, 0])
        assert a == b
        assert a != c
        assert a != BitVector(3)

    def test_copy_is_independent(self):
        a = BitVector(10)
        b = a.copy()
        b.set(3)
        assert not a.get(3)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BitVector(4))


@given(st.lists(st.booleans(), max_size=300))
def test_property_roundtrip(bools):
    bv = BitVector.from_bools(bools)
    assert bv.to_numpy().tolist() == bools
    assert bv.pop_count() == sum(bools)


@given(st.lists(st.booleans(), max_size=200), st.lists(st.booleans(), max_size=200))
def test_property_and_not_is_set_difference(a_bits, b_bits):
    n = min(len(a_bits), len(b_bits))
    a = BitVector.from_bools(a_bits[:n])
    b = BitVector.from_bools(b_bits[:n])
    expected = [i for i in range(n) if a_bits[i] and not b_bits[i]]
    assert a.and_not(b).set_indices() == expected


@given(st.lists(st.booleans(), max_size=200))
def test_property_double_invert_is_identity(bits):
    bv = BitVector.from_bools(bits)
    assert ~~bv == bv


class TestSetMany:
    def test_bulk_set_matches_loop(self):
        indices = [0, 5, 63, 64, 65, 199]
        bulk = BitVector(200)
        bulk.set_many(indices)
        loop = BitVector(200)
        for i in indices:
            loop.set(i)
        assert bulk == loop

    def test_duplicates_fold(self):
        bv = BitVector(70)
        bv.set_many([64, 64, 64, 3, 3])
        assert bv.set_indices() == [3, 64]

    def test_empty_batch(self):
        bv = BitVector(10)
        bv.set_many([])
        bv.set_many(np.empty(0, dtype=np.int64))
        assert bv.pop_count() == 0

    def test_generator_input(self):
        bv = BitVector(100)
        bv.set_many(i * 10 for i in range(5))
        assert bv.set_indices() == [0, 10, 20, 30, 40]

    def test_out_of_range_mutates_nothing(self):
        bv = BitVector(64)
        bv.set(1)
        with pytest.raises(IndexError):
            bv.set_many([2, 3, 64])
        with pytest.raises(IndexError):
            bv.set_many([-1, 5])
        assert bv.set_indices() == [1]

    def test_numpy_array_input(self):
        bv = BitVector(128)
        bv.set_many(np.array([127, 0], dtype=np.int64))
        assert bv.get(127) and bv.get(0)


@given(st.lists(st.integers(0, 199), max_size=60))
def test_property_set_many_equals_loop(indices):
    bulk = BitVector(200)
    bulk.set_many(indices)
    loop = BitVector(200)
    for i in indices:
        loop.set(i)
    assert bulk == loop
