"""Unit tests for growable typed vectors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import IntVector, ObjectVector


class TestIntVector:
    def test_empty(self):
        v = IntVector()
        assert len(v) == 0
        assert v.to_numpy().tolist() == []

    def test_init_from_iterable(self):
        v = IntVector([5, 6, 7])
        assert list(v) == [5, 6, 7]

    def test_append_growth_beyond_initial_capacity(self):
        v = IntVector()
        for i in range(1000):
            v.append(i)
        assert len(v) == 1000
        assert v[999] == 999
        assert v[0] == 0

    def test_extend(self):
        v = IntVector([1])
        v.extend([2, 3])
        v.extend(np.array([4, 5]))
        assert list(v) == [1, 2, 3, 4, 5]

    def test_getitem_negative(self):
        v = IntVector([10, 20, 30])
        assert v[-1] == 30
        assert v[-3] == 10

    def test_getitem_out_of_range(self):
        v = IntVector([1])
        with pytest.raises(IndexError):
            v[1]
        with pytest.raises(IndexError):
            v[-2]

    def test_setitem(self):
        v = IntVector([1, 2, 3])
        v[1] = 99
        assert list(v) == [1, 99, 3]
        with pytest.raises(IndexError):
            v[3] = 0

    def test_slice_returns_copy(self):
        v = IntVector([1, 2, 3, 4])
        sliced = v[1:3]
        sliced[0] = 42
        assert v[1] == 2

    def test_view_is_zero_copy(self):
        v = IntVector([1, 2, 3])
        view = v.view()
        view[0] = 7
        assert v[0] == 7

    def test_copy_is_independent(self):
        v = IntVector([1, 2])
        c = v.copy()
        c.append(3)
        assert len(v) == 2
        assert len(c) == 3

    def test_nbytes(self):
        assert IntVector([1, 2, 3]).nbytes() == 24

    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62)))
    def test_property_roundtrip(self, values):
        v = IntVector()
        for value in values:
            v.append(value)
        assert list(v) == values


class TestObjectVector:
    def test_mixed_payloads(self):
        v = ObjectVector()
        v.append("a")
        v.append(3)
        v.append(None)
        v.extend([1.5, "z"])
        assert v.to_list() == ["a", 3, None, 1.5, "z"]
        assert len(v) == 5
        assert v[2] is None

    def test_to_numpy_object_dtype(self):
        arr = ObjectVector(["x", 1]).to_numpy()
        assert arr.dtype == object
        assert arr.tolist() == ["x", 1]

    def test_copy_is_independent(self):
        v = ObjectVector([1])
        c = v.copy()
        c.append(2)
        assert len(v) == 1


class TestExtendIterables:
    def test_extend_generator(self):
        """Regression: extend() used to raise on non-sized iterables because
        np.asarray wraps a generator in a 0-d object array."""
        v = IntVector([1])
        v.extend(i * i for i in range(5))
        assert list(v) == [1, 0, 1, 4, 9, 16]

    def test_extend_map_object(self):
        v = IntVector()
        v.extend(map(int, "123"))
        assert list(v) == [1, 2, 3]

    def test_extend_empty_generator(self):
        v = IntVector([7])
        v.extend(x for x in ())
        assert list(v) == [7]

    def test_extend_range_and_array_still_work(self):
        v = IntVector()
        v.extend(range(3))
        v.extend(np.array([5, 6], dtype=np.int64))
        assert list(v) == [0, 1, 2, 5, 6]
