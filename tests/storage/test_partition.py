"""Unit tests for partitions and MVCC visibility."""

import pytest

from repro.errors import StorageError
from repro.storage import ColumnDef, Partition, Schema, SqlType


def schema():
    return Schema(
        [ColumnDef("k", SqlType.INT, nullable=False), ColumnDef("v", SqlType.TEXT)],
        primary_key="k",
    )


def make_delta(rows):
    part = Partition("delta", "delta", schema())
    for row, cts in rows:
        part.append_row(schema().validate_row(row), cts)
    return part


class TestAppendAndRead:
    def test_append_rows(self):
        part = make_delta([({"k": 1, "v": "a"}, 1), ({"k": 2, "v": None}, 2)])
        assert part.row_count == 2
        assert part.get_row(0) == {"k": 1, "v": "a"}
        assert part.get_row(1) == {"k": 2, "v": None}
        assert part.cts_array().tolist() == [1, 2]
        assert part.dts_array().tolist() == [0, 0]

    def test_append_to_main_rejected(self):
        part = Partition("main", "main", schema())
        with pytest.raises(StorageError):
            part.append_row({"k": 1, "v": "a"}, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(StorageError):
            Partition("x", "weird", schema())

    def test_unknown_column(self):
        part = make_delta([])
        with pytest.raises(StorageError):
            part.column("zzz")


class TestVisibility:
    def test_snapshot_excludes_future_rows(self):
        part = make_delta([({"k": 1}, 1), ({"k": 2}, 5)])
        assert part.visible_mask(1).tolist() == [True, False]
        assert part.visible_mask(5).tolist() == [True, True]
        assert part.visible_count(4) == 1

    def test_invalidation(self):
        part = make_delta([({"k": 1}, 1), ({"k": 2}, 1)])
        part.invalidate(0, 3)
        # Before the invalidating transaction: still visible.
        assert part.visible_mask(2).tolist() == [True, True]
        # At and after: gone.
        assert part.visible_mask(3).tolist() == [False, True]
        assert part.visible_rows(3).tolist() == [1]

    def test_double_invalidation_rejected(self):
        part = make_delta([({"k": 1}, 1)])
        part.invalidate(0, 2)
        with pytest.raises(StorageError):
            part.invalidate(0, 3)

    def test_invalidate_out_of_range(self):
        part = make_delta([({"k": 1}, 1)])
        with pytest.raises(StorageError):
            part.invalidate(5, 2)

    def test_visibility_bitvector_matches_mask(self):
        part = make_delta([({"k": i}, i) for i in range(1, 8)])
        part.invalidate(2, 6)
        bv = part.visibility(6)
        assert bv.to_numpy().tolist() == part.visible_mask(6).tolist()


class TestBuildMain:
    def test_bulk_build_preserves_stamps(self):
        rows = [{"k": 2, "v": "b"}, {"k": 1, "v": "a"}]
        part = Partition.build_main("main", schema(), rows, cts=[1, 2], dts=[0, 4])
        assert part.kind == "main"
        assert part.get_row(0) == {"k": 2, "v": "b"}
        assert part.visible_mask(3).tolist() == [True, True]
        assert part.visible_mask(4).tolist() == [True, False]

    def test_bulk_build_length_mismatch(self):
        with pytest.raises(StorageError):
            Partition.build_main("main", schema(), [{"k": 1, "v": None}], [1], [0, 0])

    def test_main_dictionary_is_sorted(self):
        rows = [{"k": 3, "v": "z"}, {"k": 1, "v": "a"}]
        part = Partition.build_main("main", schema(), rows, [1, 1], [0, 0])
        assert part.column("k").codes().tolist() == [1, 0]


class TestStats:
    def test_min_max_from_dictionary(self):
        part = make_delta([({"k": 5}, 1), ({"k": 2}, 1)])
        assert part.min_value("k") == 2
        assert part.max_value("k") == 5

    def test_min_max_includes_invalidated_rows(self):
        # The paper reads min/max from the *current dictionaries*; an
        # invalidated row's value stays in the dictionary until the merge,
        # keeping pruning conservative.
        part = make_delta([({"k": 100}, 1), ({"k": 2}, 1)])
        part.invalidate(0, 2)
        assert part.max_value("k") == 100

    def test_nbytes_positive_and_additive(self):
        part = make_delta([({"k": 1, "v": "abc"}, 1)])
        assert part.nbytes() > 0
        assert part.nbytes_columns(["v"]) <= part.nbytes()

    def test_empty_partition(self):
        part = make_delta([])
        assert part.is_physically_empty()
        assert part.visible_count(100) == 0
        assert part.min_value("k") is None
