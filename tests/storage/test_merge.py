"""Unit tests for the delta-merge operation."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    ColumnDef,
    MergeEvent,
    Schema,
    SqlType,
    Table,
    merge_table,
    threshold_aging,
)


def schema():
    return Schema(
        [ColumnDef("id", SqlType.INT, nullable=False), ColumnDef("year", SqlType.INT)],
        primary_key="id",
    )


class RecordingListener:
    def __init__(self):
        self.before = []
        self.after = []

    def before_merge(self, event: MergeEvent):
        # Pre-merge state must still be in place.
        self.before.append(
            (event.group_name, event.table.partition(event.delta_name).row_count)
        )

    def after_merge(self, event: MergeEvent):
        self.after.append(
            (event.group_name, event.table.partition(event.delta_name).row_count)
        )


class TestBasicMerge:
    def test_moves_delta_to_main(self):
        table = Table("t", schema())
        for i in range(5):
            table.insert({"id": i, "year": 2000 + i}, tid=i + 1)
        stats = merge_table(table, snapshot=5)
        assert stats.rows_moved == 5
        assert stats.rows_dropped == 0
        assert table.partition("main").row_count == 5
        assert table.partition("delta").row_count == 0
        # Main dictionary is sorted after rebuild.
        assert table.partition("main").column("year").codes().tolist() == list(range(5))

    def test_merge_preserves_visibility_stamps(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        table.insert({"id": 2}, tid=4)
        merge_table(table, snapshot=4)
        main = table.partition("main")
        assert main.visible_mask(2).tolist() == [True, False]

    def test_invalidated_rows_dropped_by_default(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        table.insert({"id": 2}, tid=2)
        table.delete(1, tid=3)
        stats = merge_table(table, snapshot=3)
        assert stats.rows_dropped == 1
        assert table.partition("main").row_count == 1
        assert table.get_row(2) is not None

    def test_keep_history_retains_invalidated_rows(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        table.delete(1, tid=2)
        merge_table(table, snapshot=2, keep_history=True)
        main = table.partition("main")
        assert main.row_count == 1
        assert main.visible_count(2) == 0
        assert main.visible_count(1) == 1

    def test_update_then_merge_keeps_only_new_version(self):
        table = Table("t", schema())
        table.insert({"id": 1, "year": 2000}, tid=1)
        table.update(1, {"year": 2001}, tid=2)
        merge_table(table, snapshot=2)
        assert table.partition("main").row_count == 1
        assert table.get_row(1)["year"] == 2001

    def test_pk_index_rebuilt(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        merge_table(table, snapshot=1)
        locator = table.pk_lookup(1)
        assert locator.partition == "main"
        assert table.get_row(1)["id"] == 1

    def test_future_row_raises(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=10)
        with pytest.raises(StorageError):
            merge_table(table, snapshot=5)

    def test_double_merge_accumulates(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        merge_table(table, snapshot=1)
        table.insert({"id": 2}, tid=2)
        merge_table(table, snapshot=2)
        assert table.partition("main").row_count == 2
        assert table.partition("delta").row_count == 0


class TestListeners:
    def test_two_phase_notification(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        listener = RecordingListener()
        merge_table(table, snapshot=1, listeners=[listener])
        # before sees the populated delta, after sees the emptied one.
        assert listener.before == [("default", 1)]
        assert listener.after == [("default", 0)]


class TestAgedMerge:
    def make(self):
        table = Table(
            "t", schema(), aging_rule=threshold_aging("year", hot_if_at_least=2014)
        )
        table.insert({"id": 1, "year": 2015}, tid=1)
        table.insert({"id": 2, "year": 2010}, tid=2)
        return table

    def test_merge_all_groups(self):
        table = self.make()
        stats = merge_table(table, snapshot=2)
        assert stats.groups_merged == 2
        assert table.partition("hot_main").row_count == 1
        assert table.partition("cold_main").row_count == 1

    def test_merge_single_group(self):
        table = self.make()
        stats = merge_table(table, snapshot=2, group_name="hot")
        assert stats.groups_merged == 1
        assert table.partition("hot_main").row_count == 1
        # Cold group untouched: row still in its delta.
        assert table.partition("cold_delta").row_count == 1
        assert table.partition("cold_main").row_count == 0


class CancellableListener(RecordingListener):
    def __init__(self, fail_on_group=None):
        super().__init__()
        self.cancelled = []
        self.fail_on_group = fail_on_group

    def before_merge(self, event: MergeEvent):
        super().before_merge(event)
        if event.group_name == self.fail_on_group:
            raise RuntimeError(f"listener rejects group {event.group_name}")

    def cancel_merge(self, event: MergeEvent):
        self.cancelled.append(event.group_name)


class TestAtomicity:
    """Phase-one failures leave the table exactly as it was."""

    def make(self):
        table = Table("t", schema())
        table.insert({"id": 0, "year": 2000}, tid=1)
        table.insert({"id": 1, "year": 2001}, tid=2)
        merge_table(table, snapshot=2)  # ids 0-1 into main
        table.insert({"id": 9, "year": 2009}, tid=5)  # fresh delta row
        return table

    def test_failing_listener_leaves_table_untouched(self):
        table = self.make()
        main_before = table.partition("main")
        delta_rows = table.partition("delta").row_count
        listener = CancellableListener(fail_on_group="default")
        with pytest.raises(RuntimeError):
            merge_table(table, snapshot=5, listeners=[listener])
        # Same partition objects, same contents, usable pk index.
        assert table.partition("main") is main_before
        assert table.partition("delta").row_count == delta_rows
        assert table.get_row(9)["year"] == 2009
        assert table.pk_lookup(0).partition == "main"
        # The listener was told to forget what it planned.
        assert listener.cancelled == ["default"]
        assert listener.after == []

    def test_future_row_failure_is_atomic(self):
        table = self.make()
        table.insert({"id": 50, "year": 2050}, tid=99)
        listener = CancellableListener()
        with pytest.raises(StorageError):
            merge_table(table, snapshot=5, listeners=[listener])
        assert listener.cancelled == ["default"]
        assert table.partition("delta").row_count > 0
        assert table.get_row(9) is not None

    def test_aged_table_cancels_every_announced_group(self):
        table = Table(
            "t", schema(), aging_rule=threshold_aging("year", hot_if_at_least=2014)
        )
        table.insert({"id": 1, "year": 2015}, tid=1)
        table.insert({"id": 2, "year": 2010}, tid=2)
        # Fail on the second group: the first was already announced and
        # staged, and must be cancelled too.
        failing = CancellableListener(fail_on_group="cold")
        with pytest.raises(RuntimeError):
            merge_table(table, snapshot=2, listeners=[failing])
        assert sorted(failing.cancelled) == ["cold", "hot"]
        assert table.partition("hot_main").row_count == 0
        assert table.partition("hot_delta").row_count == 1
        assert table.partition("cold_delta").row_count == 1

    def test_retry_after_failure_succeeds(self):
        table = self.make()
        with pytest.raises(RuntimeError):
            merge_table(
                table, snapshot=5, listeners=[CancellableListener(fail_on_group="default")]
            )
        stats = merge_table(table, snapshot=5)
        assert stats.groups_merged == 1
        assert table.partition("delta").row_count == 0
