"""Unit tests for tables: writes, PK index, aging routing."""

import pytest

from repro.errors import IntegrityError, SchemaError, StorageError
from repro.storage import ColumnDef, Schema, SqlType, Table, threshold_aging


def schema():
    return Schema(
        [
            ColumnDef("id", SqlType.INT, nullable=False),
            ColumnDef("year", SqlType.INT),
            ColumnDef("amount", SqlType.FLOAT),
        ],
        primary_key="id",
    )


class TestSimpleTable:
    def test_partition_layout(self):
        table = Table("t", schema())
        names = [p.name for p in table.partitions()]
        assert names == ["main", "delta"]
        assert not table.is_aged()

    def test_insert_goes_to_delta(self):
        table = Table("t", schema())
        locator = table.insert({"id": 1, "amount": 5.0}, tid=1)
        assert locator.partition == "delta"
        assert table.partition("delta").row_count == 1
        assert table.partition("main").row_count == 0

    def test_duplicate_pk_rejected(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        with pytest.raises(IntegrityError):
            table.insert({"id": 1}, tid=2)

    def test_null_pk_rejected_by_not_null(self):
        table = Table("t", schema())
        with pytest.raises(SchemaError):
            table.insert({"id": None}, tid=1)

    def test_null_pk_rejected_even_when_nullable(self):
        nullable_pk = Schema([ColumnDef("id", SqlType.INT)], primary_key="id")
        table = Table("t", nullable_pk)
        with pytest.raises(IntegrityError):
            table.insert({"id": None}, tid=1)

    def test_get_row(self):
        table = Table("t", schema())
        table.insert({"id": 7, "year": 2013}, tid=1)
        assert table.get_row(7)["year"] == 2013
        assert table.get_row(999) is None

    def test_update_inserts_new_version(self):
        table = Table("t", schema())
        table.insert({"id": 1, "amount": 1.0}, tid=1)
        table.update(1, {"amount": 2.0}, tid=2)
        delta = table.partition("delta")
        assert delta.row_count == 2
        assert delta.dts_array().tolist() == [2, 0]
        assert table.get_row(1)["amount"] == 2.0

    def test_update_unknown_column(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        with pytest.raises(SchemaError):
            table.update(1, {"bogus": 1}, tid=2)

    def test_update_pk_change_rejected(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        with pytest.raises(IntegrityError):
            table.update(1, {"id": 2}, tid=2)

    def test_update_missing_row(self):
        table = Table("t", schema())
        with pytest.raises(IntegrityError):
            table.update(1, {"amount": 1.0}, tid=1)

    def test_delete(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        table.delete(1, tid=2)
        assert table.get_row(1) is None
        assert table.visible_row_count(2) == 0
        assert table.visible_row_count(1) == 1
        # Key becomes reusable after delete.
        table.insert({"id": 1}, tid=3)
        assert table.get_row(1) is not None

    def test_delete_missing(self):
        table = Table("t", schema())
        with pytest.raises(IntegrityError):
            table.delete(42, tid=1)

    def test_counts(self):
        table = Table("t", schema())
        for i in range(5):
            table.insert({"id": i}, tid=i + 1)
        assert table.row_count() == 5
        assert table.visible_row_count(3) == 3
        assert table.nbytes() > 0


class TestAgedTable:
    def make(self):
        return Table(
            "t", schema(), aging_rule=threshold_aging("year", hot_if_at_least=2014)
        )

    def test_partition_layout(self):
        table = self.make()
        names = [p.name for p in table.partitions()]
        assert names == ["hot_main", "hot_delta", "cold_main", "cold_delta"]
        assert table.is_aged()

    def test_routing(self):
        table = self.make()
        hot = table.insert({"id": 1, "year": 2014}, tid=1)
        cold = table.insert({"id": 2, "year": 2010}, tid=2)
        null_year = table.insert({"id": 3, "year": None}, tid=3)
        assert hot.partition == "hot_delta"
        assert cold.partition == "cold_delta"
        assert null_year.partition == "cold_delta"

    def test_update_stays_in_group(self):
        table = self.make()
        table.insert({"id": 1, "year": 2010}, tid=1)
        # Update of a cold row lands in the cold delta, even if the new
        # values would route hot: versions of one object stay together.
        locator = table.update(1, {"amount": 9.0}, tid=2)
        assert locator.partition == "cold_delta"

    def test_unknown_group_from_rule(self):
        table = Table("t", schema(), aging_rule=lambda row: "lukewarm")
        with pytest.raises(StorageError):
            table.insert({"id": 1}, tid=1)

    def test_group_access(self):
        table = self.make()
        assert table.group("hot").delta.name == "hot_delta"
        with pytest.raises(StorageError):
            table.group("default")
        with pytest.raises(StorageError):
            table.partition("nope")


class TestRebuildPkIndex:
    def test_rebuild_after_manual_mutation(self):
        table = Table("t", schema())
        table.insert({"id": 1}, tid=1)
        table.insert({"id": 2}, tid=2)
        table.delete(2, tid=3)
        table.rebuild_pk_index()
        assert table.pk_lookup(1) is not None
        assert table.pk_lookup(2) is None
