"""Tests for CSV import/export."""

import pytest

from repro import Database, IntegrityError, SchemaError


def make_db():
    db = Database()
    db.create_table(
        "products",
        [("pid", "INT"), ("name", "TEXT"), ("price", "FLOAT"), ("added", "DATE")],
        primary_key="pid",
    )
    return db


class TestExport:
    def test_roundtrip(self, tmp_path):
        db = make_db()
        rows = [
            {"pid": 1, "name": "hammer", "price": 9.5, "added": "2014-01-02"},
            {"pid": 2, "name": None, "price": None, "added": None},
        ]
        for row in rows:
            db.insert("products", row)
        db.merge()
        path = tmp_path / "products.csv"
        assert db.export_csv("products", path) == 2

        other = make_db()
        assert other.import_csv("products", path) == 2
        for row in rows:
            assert other.table("products").get_row(row["pid"]) == row

    def test_export_excludes_invisible_rows(self, tmp_path):
        db = make_db()
        db.insert("products", {"pid": 1, "name": "a", "price": 1.0})
        db.insert("products", {"pid": 2, "name": "b", "price": 2.0})
        db.delete("products", 1)
        path = tmp_path / "out.csv"
        assert db.export_csv("products", path) == 1
        assert "hammer" not in path.read_text()
        assert ",b," in path.read_text()

    def test_tid_columns_excluded_by_default(self, tmp_path):
        db = Database()
        db.create_table("p", [("id", "INT")], primary_key="id")
        db.create_table("c", [("id", "INT"), ("pid", "INT")], primary_key="id")
        db.add_matching_dependency("p", "id", "c", "pid")
        db.insert("p", {"id": 1})
        db.insert("c", {"id": 1, "pid": 1})
        path = tmp_path / "c.csv"
        db.export_csv("c", path)
        assert "tid_p" not in path.read_text()
        db.export_csv("c", path, include_tid_columns=True)
        assert "tid_p" in path.read_text()


class TestImport:
    def test_types_parsed(self, tmp_path):
        path = tmp_path / "in.csv"
        path.write_text("pid,name,price,added\n3,saw,19.25,2013-05-06\n4,,,\n")
        db = make_db()
        assert db.import_csv("products", path) == 2
        row = db.table("products").get_row(3)
        assert row == {"pid": 3, "name": "saw", "price": 19.25, "added": "2013-05-06"}
        assert db.table("products").get_row(4)["name"] is None

    def test_unknown_header_rejected(self, tmp_path):
        path = tmp_path / "in.csv"
        path.write_text("pid,bogus\n1,2\n")
        with pytest.raises(SchemaError):
            make_db().import_csv("products", path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "in.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            make_db().import_csv("products", path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "in.csv"
        path.write_text("pid,name\n1,a,EXTRA\n")
        with pytest.raises(SchemaError):
            make_db().import_csv("products", path)

    def test_import_runs_md_enforcement(self, tmp_path):
        db = Database()
        db.create_table("p", [("id", "INT")], primary_key="id")
        db.create_table("c", [("id", "INT"), ("pid", "INT")], primary_key="id")
        db.add_matching_dependency("p", "id", "c", "pid")
        db.insert("p", {"id": 1})
        good = tmp_path / "good.csv"
        good.write_text("id,pid\n10,1\n")
        db.import_csv("c", good)
        assert db.table("c").get_row(10)["tid_p"] is not None
        bad = tmp_path / "bad.csv"
        bad.write_text("id,pid\n11,999\n")
        with pytest.raises(IntegrityError):
            db.import_csv("c", bad)

    def test_batching_commits_transactions(self, tmp_path):
        path = tmp_path / "in.csv"
        lines = ["pid,name,price,added"] + [f"{i},n{i},1.0," for i in range(25)]
        path.write_text("\n".join(lines) + "\n")
        db = make_db()
        assert db.import_csv("products", path, batch_size=10) == 25
        snapshot = db.transactions.global_snapshot()
        assert db.table("products").visible_row_count(snapshot) == 25
