"""Tests for the ERP workload generator and its query family."""

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import ErpConfig, ErpWorkload
from repro.storage import threshold_aging

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def make_workload(**config_kwargs):
    db = Database()
    return db, ErpWorkload(db, ErpConfig(**config_kwargs))


class TestSchema:
    def test_tables_and_mds_created(self):
        db, _ = make_workload()
        assert set(db.catalog.table_names()) == {"Header", "Item", "ProductCategory"}
        assert db.table("Item").schema.has_column("tid_Header")
        assert db.table("Item").schema.has_column("tid_ProductCategory")
        assert len(db.enforcer.dependencies()) == 2

    def test_aged_schema(self):
        db = Database()
        ErpWorkload(
            db,
            ErpConfig(),
            header_aging=threshold_aging("FiscalYear", 2014),
            item_aging=threshold_aging("FiscalYear", 2014),
        )
        assert db.table("Header").is_aged()
        assert db.table("Item").is_aged()


class TestGeneration:
    def test_counts_and_ratio(self):
        db, workload = make_workload(items_per_header=10)
        headers, items = workload.insert_objects(12)
        assert headers == 12
        assert items == 120
        snapshot = db.transactions.global_snapshot()
        assert db.table("Header").visible_row_count(snapshot) == 12
        assert db.table("Item").visible_row_count(snapshot) == 120

    def test_determinism(self):
        _, w1 = make_workload(seed=5)
        _, w2 = make_workload(seed=5)
        header1, items1 = w1._make_object(2013)
        header2, items2 = w2._make_object(2013)
        assert header1 == header2
        assert items1 == items2

    def test_merge_after(self):
        db, workload = make_workload()
        workload.insert_objects(3, merge_after=True)
        assert db.table("Item").partition("delta").row_count == 0
        assert db.table("Item").partition("main").row_count == 30

    def test_object_temporal_locality(self):
        db, workload = make_workload()
        workload.insert_objects(5)
        item_table = db.table("Item")
        header_table = db.table("Header")
        for iid in range(1, 51):
            item = item_table.get_row(iid)
            header = header_table.get_row(item["HeaderID"])
            assert item["tid_Header"] == header["tid_Header"]

    def test_late_items_break_locality_not_integrity(self):
        db, workload = make_workload(late_item_rate=0.5, items_per_header=8)
        headers, items = workload.insert_objects(6)
        assert items == 48  # all items arrive eventually
        # tid stamps still satisfy the MD even for late items...
        item_table = db.table("Item")
        header_table = db.table("Header")
        for iid in range(1, 49):
            item = item_table.get_row(iid)
            header = header_table.get_row(item["HeaderID"])
            assert item["tid_Header"] == header["tid_Header"]
        # ...but some items were physically created by a later transaction
        # than the one stamped in tid_Header (the locality violation).
        delta = item_table.partition("delta")
        cts = delta.cts_array()
        tid_frag = delta.column("tid_Header")
        late = sum(
            1
            for row in range(delta.row_count)
            if cts[row] > tid_frag.value_at(row)
        )
        assert late > 0

    def test_object_stream(self):
        _, workload = make_workload()
        stream = workload.object_stream(year=2013)
        header, items = next(stream)
        assert header["FiscalYear"] == 2013
        assert len(items) == workload.config.items_per_header

    def test_year_pinning(self):
        db, workload = make_workload()
        workload.insert_objects(4, year=2014)
        snapshot = db.transactions.global_snapshot()
        years = set()
        header = db.table("Header")
        for hid in range(1, 5):
            years.add(header.get_row(hid)["FiscalYear"])
        assert years == {2014}


class TestQueries:
    def test_profit_and_loss_runs_and_strategies_agree(self):
        db, workload = make_workload(n_categories=5)
        workload.insert_objects(10, merge_after=True)
        workload.insert_objects(2)
        sql = workload.profit_and_loss_sql(year=2013)
        reference = db.query(sql, strategy=UNCACHED)
        assert db.query(sql, strategy=FULL) == reference

    def test_profit_and_loss_filters(self):
        sql = ErpWorkload.profit_and_loss_sql(year=2013, language="GER")
        assert "GER" in sql and "2013" in sql
        sql_no_year = ErpWorkload.profit_and_loss_sql(year=None)
        assert "FiscalYear" not in sql_no_year

    def test_header_item_and_doc_type_queries(self):
        db, workload = make_workload(n_categories=3)
        workload.insert_objects(6, merge_after=True)
        for sql in (workload.header_item_sql(), workload.doc_type_sql(2013)):
            assert db.query(sql, strategy=FULL) == db.query(sql, strategy=UNCACHED)

    def test_single_table_query(self):
        db, workload = make_workload(n_categories=3)
        workload.insert_objects(5)
        result = db.query(workload.single_table_sql(), strategy=UNCACHED)
        assert result.columns == ["CategoryID", "Revenue", "N", "AvgPrice"]
        assert sum(result.column_values("N")) == 50
