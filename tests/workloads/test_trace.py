"""Tests for workload trace recording and replay."""

import json

import pytest

from repro import Database, ExecutionStrategy
from repro.errors import ReproError
from repro.workloads import ErpConfig, ErpWorkload, TraceRecorder, TraceReplayer

from ..conftest import HEADER_ITEM_SQL, make_erp_db

UNCACHED = ExecutionStrategy.UNCACHED


def record_workload(tmp_path, actions):
    """Run ``actions(db)`` under a recorder; returns (db, trace path)."""
    db = make_erp_db()
    path = tmp_path / "workload.trace"
    with TraceRecorder(db, path) as recorder:
        actions(db)
    return db, path, recorder


def standard_actions(db):
    db.insert("category", {"cid": 0, "name": "c0", "lang": "ENG"})
    db.insert_business_object(
        "header",
        {"hid": 1, "year": 2013},
        "item",
        [{"iid": k, "hid": 1, "cid": 0, "price": float(k)} for k in range(3)],
    )
    db.update("item", 1, {"price": 42.0})
    db.delete("item", 2)
    db.merge("item")
    db.insert("item", {"iid": 9, "hid": 1, "cid": 0, "price": 5.0})


class TestRecording:
    def test_operations_recorded_in_order(self, tmp_path):
        _db, path, recorder = record_workload(tmp_path, standard_actions)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        ops = [record["op"] for record in records]
        assert ops == ["insert"] * 5 + ["update", "delete", "merge", "insert"]
        assert recorder.operations == len(records)

    def test_update_records_only_changes(self, tmp_path):
        _db, path, _rec = record_workload(tmp_path, standard_actions)
        update = next(
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["op"] == "update"
        )
        assert update == {
            "op": "update",
            "table": "item",
            "pk": 1,
            "changes": {"price": 42.0},
        }

    def test_tid_columns_not_recorded(self, tmp_path):
        _db, path, _rec = record_workload(tmp_path, standard_actions)
        assert "tid_header" not in path.read_text()

    def test_close_detaches(self, tmp_path):
        db = make_erp_db()
        path = tmp_path / "t.trace"
        recorder = TraceRecorder(db, path)
        recorder.close()
        db.insert("category", {"cid": 5, "name": "x", "lang": "ENG"})
        assert recorder.operations == 0


class TestReplay:
    def test_replay_reproduces_state_and_topology(self, tmp_path):
        original, path, _rec = record_workload(tmp_path, standard_actions)
        replica = make_erp_db()
        counts = TraceReplayer(replica).replay(path)
        assert counts == {"insert": 6, "update": 1, "delete": 1, "merge": 1}
        # Same logical contents...
        assert replica.query(HEADER_ITEM_SQL, strategy=UNCACHED) == original.query(
            HEADER_ITEM_SQL, strategy=UNCACHED
        )
        # ...and the same partition topology (which rows are merged).
        for table in ("header", "item", "category"):
            original_layout = {
                p.name: p.visible_count(original.transactions.global_snapshot())
                for p in original.table(table).partitions()
            }
            replica_layout = {
                p.name: p.visible_count(replica.transactions.global_snapshot())
                for p in replica.table(table).partitions()
            }
            assert replica_layout == original_layout, table

    def test_replayed_mds_hold(self, tmp_path):
        _original, path, _rec = record_workload(tmp_path, standard_actions)
        replica = make_erp_db()
        TraceReplayer(replica).replay(path)
        item = replica.table("item").get_row(0)
        header = replica.table("header").get_row(1)
        assert item["tid_header"] == header["tid_header"]

    def test_unknown_operation_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"op": "explode"}\n')
        with pytest.raises(ReproError):
            TraceReplayer(make_erp_db()).replay(path)

    def test_erp_generator_through_trace(self, tmp_path):
        db = Database()
        path = tmp_path / "erp.trace"
        with TraceRecorder(db, path):
            workload = ErpWorkload(db, ErpConfig(seed=8, n_categories=4))
            workload.insert_objects(10, merge_after=True)
            workload.insert_objects(2)
        replica = Database()
        ErpWorkload(replica, ErpConfig(seed=999, n_categories=4))  # schema only
        counts = TraceReplayer(replica).replay(path)
        assert counts["insert"] > 100
        sql = workload.profit_and_loss_sql(year=None)
        assert replica.query(sql, strategy=UNCACHED) == db.query(sql, strategy=UNCACHED)
