"""Tests for the CH-benCHmark generator and the four Fig. 9 queries."""

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import CH_QUERIES, CH_QUERY_TABLES, ChBenchmark, ChConfig

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


@pytest.fixture(scope="module")
def ch():
    db = Database()
    benchmark = ChBenchmark(db, ChConfig(seed=11))
    benchmark.load()
    return db, benchmark


class TestGenerator:
    def test_row_counts_shape(self, ch):
        db, benchmark = ch
        counts = benchmark.row_counts()
        config = benchmark.config
        assert counts["region"] == 3
        assert counts["nation"] == 7
        assert counts["supplier"] == config.suppliers
        assert counts["item"] == config.items
        assert counts["stock"] == config.items * config.warehouses
        assert (
            counts["customer"]
            == config.warehouses
            * config.districts_per_warehouse
            * config.customers_per_district
        )
        expected_orders = (
            config.warehouses
            * config.districts_per_warehouse
            * config.orders_per_district
        )
        assert counts["orders"] == expected_orders
        assert counts["orderline"] == expected_orders * config.orderlines_per_order

    def test_delta_population_near_five_percent(self, ch):
        _, benchmark = ch
        deltas = benchmark.delta_counts()
        totals = benchmark.row_counts()
        for table in ("orders", "orderline"):
            fraction = deltas[table] / totals[table]
            assert 0.02 <= fraction <= 0.10, (table, fraction)
        # Static dimensions keep empty deltas (the empty-delta-pruning prey).
        for table in ("region", "nation", "supplier", "customer"):
            assert deltas[table] == 0

    def test_matching_dependencies_installed(self, ch):
        db, _ = ch
        tid_cols = db.table("orderline").schema.tid_column_names()
        assert "tid_orders" in tid_cols
        assert "tid_stock" in tid_cols
        assert len(db.enforcer.dependencies()) == 4

    def test_orderline_references_valid_stock(self, ch):
        db, _ = ch
        orderline = db.table("orderline")
        stock = db.table("stock")
        for partition in orderline.partitions():
            fragment = partition.column("ol_s_key")
            for row in range(min(partition.row_count, 50)):
                assert stock.get_row(fragment.value_at(row)) is not None

    def test_determinism(self):
        counts = []
        for _ in range(2):
            db = Database()
            bench = ChBenchmark(db, ChConfig(seed=3))
            bench.load()
            result = db.query(CH_QUERIES["Q5"], strategy=UNCACHED)
            counts.append(result.rows)
        assert counts[0] == counts[1]


class TestQueries:
    @pytest.mark.parametrize("name", list(CH_QUERIES))
    def test_query_parses_with_expected_table_count(self, name):
        from repro import parse_sql

        query = parse_sql(CH_QUERIES[name])
        assert len(query.tables) == CH_QUERY_TABLES[name]
        assert len(query.tables) > 3  # the paper's selection criterion

    @pytest.mark.parametrize("name", list(CH_QUERIES))
    def test_query_nonempty_and_strategy_equivalent(self, ch, name):
        db, _ = ch
        reference = db.query(CH_QUERIES[name], strategy=UNCACHED)
        assert len(reference) > 0
        assert db.query(CH_QUERIES[name], strategy=FULL) == reference
        assert (
            db.query(CH_QUERIES[name], strategy=ExecutionStrategy.CACHED_NO_PRUNING)
            == reference
        )

    @pytest.mark.parametrize("name", list(CH_QUERIES))
    def test_full_pruning_eliminates_most_subjoins(self, ch, name):
        db, benchmark = ch
        db.query(CH_QUERIES[name], strategy=FULL)
        report = db.last_report
        tables = CH_QUERY_TABLES[name]
        # Star-join reduction excludes every table whose delta is empty at
        # plan time, so only 2^k - 1 subjoins are enumerated (k = tables
        # with delta rows); the rest are never generated.
        deltas = benchmark.delta_counts()
        parsed = db.parse(CH_QUERIES[name])
        k = sum(1 for ref in parsed.tables if deltas[ref.table] > 0)
        assert report.prune.combos_total == 2**k - 1
        assert report.prune.excluded_tables == tables - k
        assert report.prune.combos_excluded == (2**tables - 1) - (2**k - 1)
        # The vast majority of compensation subjoins must be pruned.
        assert report.prune.evaluated <= tables
        assert report.prune.pruned_total >= report.prune.combos_total - tables

    @pytest.mark.parametrize("name", list(CH_QUERIES))
    def test_exhaustive_override_restores_full_enumeration(self, ch, name):
        db, _ = ch
        tables = CH_QUERY_TABLES[name]
        reduced = db.query(CH_QUERIES[name], strategy=FULL)
        exhaustive = db.query(
            CH_QUERIES[name], strategy=FULL, star_join_tables=()
        )
        assert db.last_report.prune.combos_total == 2**tables - 1
        assert db.last_report.prune.excluded_tables == 0
        assert exhaustive.rows == reduced.rows

    def test_q3_revenue_positive(self, ch):
        db, _ = ch
        result = db.query(CH_QUERIES["Q3"], strategy=FULL)
        assert all(v > 0 for v in result.column_values("revenue"))

    def test_q5_nations_in_europe(self, ch):
        db, _ = ch
        result = db.query(CH_QUERIES["Q5"], strategy=FULL)
        assert set(result.column_values("nation")) <= {
            "GERMANY",
            "FRANCE",
            "UNITED_KINGDOM",
        }

    def test_q9_grouped_by_year(self, ch):
        db, _ = ch
        result = db.query(CH_QUERIES["Q9"], strategy=FULL)
        assert set(result.column_values("year")) <= {2012, 2013, 2014}
