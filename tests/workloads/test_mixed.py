"""Tests for the mixed-workload driver and its system adapters."""

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import (
    AggregateCacheSystem,
    EagerViewSystem,
    LazyViewSystem,
    UncachedSystem,
    run_mixed_workload,
)


SQL = "SELECT cat, SUM(price) AS s, COUNT(*) AS n FROM sales GROUP BY cat"


def make_db():
    db = Database()
    db.create_table(
        "sales",
        [("sid", "INT"), ("cat", "TEXT"), ("price", "FLOAT")],
        primary_key="sid",
    )
    return db


def row_stream(start=0):
    sid = start
    while True:
        yield ("sales", {"sid": sid, "cat": f"c{sid % 3}", "price": float(sid % 7)})
        sid += 1


def all_systems(db):
    return [
        UncachedSystem(db, SQL),
        AggregateCacheSystem(db, SQL),
        EagerViewSystem(db, SQL),
        LazyViewSystem(db, SQL),
    ]


class TestDriver:
    def test_operation_split(self):
        db = make_db()
        system = UncachedSystem(db, SQL)
        result = run_mixed_workload(system, row_stream(), 20, insert_ratio=0.25)
        assert result.inserts == 5
        assert result.reads == 15
        assert result.operations == 20
        assert len(result.read_times) == 15
        assert result.total_time == result.insert_time + result.read_time

    def test_ratio_bounds(self):
        db = make_db()
        system = UncachedSystem(db, SQL)
        with pytest.raises(ValueError):
            run_mixed_workload(system, row_stream(), 10, insert_ratio=1.5)

    def test_pure_insert_and_pure_read(self):
        db = make_db()
        db.insert("sales", {"sid": 9999, "cat": "x", "price": 1.0})
        system = UncachedSystem(db, SQL)
        writes = run_mixed_workload(system, row_stream(), 10, insert_ratio=1.0)
        assert writes.reads == 0
        reads = run_mixed_workload(system, row_stream(10), 10, insert_ratio=0.0)
        assert reads.inserts == 0

    def test_deterministic_plan(self):
        db = make_db()
        system = UncachedSystem(db, SQL)
        run_mixed_workload(system, row_stream(), 10, insert_ratio=0.5, seed=3)
        snapshot = db.transactions.global_snapshot()
        count_a = db.table("sales").visible_row_count(snapshot)
        db2 = make_db()
        run_mixed_workload(UncachedSystem(db2, SQL), row_stream(), 10, 0.5, seed=3)
        assert db2.table("sales").visible_row_count(
            db2.transactions.global_snapshot()
        ) == count_a


class TestSystemsAgree:
    def test_all_systems_produce_identical_reads(self):
        results = {}
        for make_system in (
            UncachedSystem,
            AggregateCacheSystem,
            EagerViewSystem,
            LazyViewSystem,
        ):
            db = make_db()
            db.insert("sales", {"sid": 10_000, "cat": "seed", "price": 2.0})
            db.merge()
            system = make_system(db, SQL)
            seen = []
            run_mixed_workload(
                system,
                row_stream(),
                30,
                insert_ratio=0.5,
                seed=7,
                read_callback=lambda r: seen.append(sorted(r.rows)),
            )
            results[system.name] = seen
        reference = next(iter(results.values()))
        for name, seen in results.items():
            assert len(seen) == len(reference)
            for got, want in zip(seen, reference):
                assert [g[0] for g in got] == [w[0] for w in want], name
                for g, w in zip(got, want):
                    assert g[1] == pytest.approx(w[1]), name
                    assert g[2] == w[2], name

    def test_cache_system_populates_cache(self):
        db = make_db()
        system = AggregateCacheSystem(db, SQL)
        run_mixed_workload(system, row_stream(), 10, insert_ratio=0.3)
        assert db.cache.entry_count() == 1
