"""Tests for the TPC-C-style transaction driver over the CH schema."""

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import (
    CH_QUERIES,
    ChBenchmark,
    ChConfig,
    ChTransactionDriver,
)

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


@pytest.fixture
def loaded():
    db = Database()
    benchmark = ChBenchmark(db, ChConfig(seed=2))
    benchmark.load()
    return db, benchmark


class TestNewOrder:
    def test_inserts_object_in_one_transaction(self, loaded):
        db, benchmark = loaded
        driver = ChTransactionDriver(benchmark, seed=3)
        before = db.table("orderline").row_count()
        o_key = driver.new_order()
        order = db.table("orders").get_row(o_key)
        assert order["o_carrier_id"] is None
        lines = benchmark.config.orderlines_per_order
        assert db.table("orderline").row_count() == before + lines
        # Temporal locality: orderlines carry the order's tid.
        ol_key = driver._orderlines_of(o_key)[0]
        line = db.table("orderline").get_row(ol_key)
        assert line["tid_orders"] == order["tid_orders"]
        assert driver.counts.new_order == 1

    def test_neworder_entry_created(self, loaded):
        db, benchmark = loaded
        driver = ChTransactionDriver(benchmark, seed=3)
        before = db.table("neworder").visible_row_count(
            db.transactions.global_snapshot()
        )
        driver.new_order()
        after = db.table("neworder").visible_row_count(
            db.transactions.global_snapshot()
        )
        assert after == before + 1


class TestPayment:
    def test_balance_decreases(self, loaded):
        db, benchmark = loaded
        driver = ChTransactionDriver(benchmark, seed=4)
        c_key = driver.payment()
        assert db.table("customer").get_row(c_key)["c_balance"] < 0
        assert driver.counts.payment == 1

    def test_payment_invalidates_main_row(self, loaded):
        db, benchmark = loaded
        driver = ChTransactionDriver(benchmark, seed=4)
        epoch_before = sum(
            p.invalidation_epoch for p in db.table("customer").partitions()
        )
        driver.payment()
        epoch_after = sum(
            p.invalidation_epoch for p in db.table("customer").partitions()
        )
        assert epoch_after == epoch_before + 1


class TestDelivery:
    def test_delivers_oldest_order(self, loaded):
        db, benchmark = loaded
        driver = ChTransactionDriver(benchmark, seed=5)
        oldest = driver._oldest_neworder()
        delivered = driver.delivery()
        assert delivered == oldest[1]
        order = db.table("orders").get_row(delivered)
        assert order["o_carrier_id"] is not None
        for ol_key in driver._orderlines_of(delivered):
            assert db.table("orderline").get_row(ol_key)["ol_delivery_d"] is not None

    def test_delivery_when_queue_empty(self):
        db = Database()
        benchmark = ChBenchmark(db, ChConfig(seed=2, new_order_fraction=0.0))
        benchmark.load()
        driver = ChTransactionDriver(benchmark, seed=5)
        assert driver.delivery() is None


class TestMixedRun:
    def test_run_mix_and_query_equivalence(self, loaded):
        db, benchmark = loaded
        for name in CH_QUERIES:
            db.query(CH_QUERIES[name], strategy=FULL)  # warm entries
        driver = ChTransactionDriver(benchmark, seed=6)
        counts = driver.run(40)
        assert counts.total == 40
        assert counts.new_order > 0 and counts.payment > 0
        for name in CH_QUERIES:
            assert db.query(CH_QUERIES[name], strategy=FULL) == db.query(
                CH_QUERIES[name], strategy=UNCACHED
            ), name

    def test_run_then_merge_then_query(self, loaded):
        db, benchmark = loaded
        db.query(CH_QUERIES["Q5"], strategy=FULL)
        ChTransactionDriver(benchmark, seed=7).run(25)
        db.merge()
        cached = db.query(CH_QUERIES["Q5"], strategy=FULL)
        assert db.last_report.cache_hits >= 1
        assert cached == db.query(CH_QUERIES["Q5"], strategy=UNCACHED)
