"""The shared environment-variable helper (repro.envutil).

Contract: unset/empty -> default; malformed -> RuntimeWarning once per
variable per process, then default; a well-formed value below the minimum
-> ValueError (misconfiguration should fail loudly, not be silently
clamped).
"""

import warnings

import pytest

from repro import envutil
from repro.envutil import env_float, env_int


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    envutil._reset_warnings()
    yield
    envutil._reset_warnings()


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "")
        assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_none_default_passes_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", None) is None

    def test_valid_value_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "42")
        assert env_int("REPRO_TEST_KNOB", 7) == 42

    def test_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "  42  ")
        assert env_int("REPRO_TEST_KNOB", 7) == 42

    def test_malformed_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "banana")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_KNOB"):
            assert env_int("REPRO_TEST_KNOB", 7) == 7
        # Second read of the same malformed variable stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_each_variable_warns_independently(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "x")
        monkeypatch.setenv("REPRO_OTHER_KNOB", "y")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_KNOB"):
            env_int("REPRO_TEST_KNOB", 1)
        with pytest.warns(RuntimeWarning, match="REPRO_OTHER_KNOB"):
            env_int("REPRO_OTHER_KNOB", 1)

    def test_below_minimum_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            env_int("REPRO_TEST_KNOB", 7, minimum=1)

    def test_at_minimum_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "1")
        assert env_int("REPRO_TEST_KNOB", 7, minimum=1) == 1


class TestEnvFloat:
    def test_valid_value_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "2.5")
        assert env_float("REPRO_TEST_KNOB", 1.0) == 2.5

    def test_malformed_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "fast")
        with pytest.warns(RuntimeWarning):
            assert env_float("REPRO_TEST_KNOB", 1.5) == 1.5

    def test_below_minimum_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "0.5")
        with pytest.raises(ValueError, match="must be >="):
            env_float("REPRO_TEST_KNOB", None, minimum=1.0)


class TestGovernorConfigFromEnv:
    def test_defaults_with_nothing_set(self, monkeypatch):
        from repro.governor import GovernorConfig

        for var in (
            "REPRO_QUERY_TIMEOUT_MS",
            "REPRO_MEMORY_BUDGET_MB",
            "REPRO_WAL_RETRIES",
            "REPRO_RETRY_BACKOFF_MS",
            "REPRO_BREAKER_THRESHOLD",
            "REPRO_BREAKER_RESET_MS",
        ):
            monkeypatch.delenv(var, raising=False)
        config = GovernorConfig.from_env()
        assert config == GovernorConfig()
        assert config.query_timeout_ms is None
        assert config.memory_budget_mb is None

    def test_knobs_read_from_env(self, monkeypatch):
        from repro.governor import GovernorConfig

        monkeypatch.setenv("REPRO_QUERY_TIMEOUT_MS", "250")
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "64")
        monkeypatch.setenv("REPRO_WAL_RETRIES", "5")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "2")
        config = GovernorConfig.from_env()
        assert config.query_timeout_ms == 250.0
        assert config.memory_budget_mb == 64.0
        assert config.wal_retries == 5
        assert config.breaker_threshold == 2

    def test_malformed_timeout_falls_back_to_disabled(self, monkeypatch):
        from repro.governor import GovernorConfig

        monkeypatch.setenv("REPRO_QUERY_TIMEOUT_MS", "soon")
        with pytest.warns(RuntimeWarning):
            config = GovernorConfig.from_env()
        assert config.query_timeout_ms is None
