"""Unit tests for the concurrency primitives behind the serving facade."""

import threading
import time

import pytest

from repro.concurrency import DictMemo, ReadWriteLock, StripedMemo


class TestReadWriteLock:
    def test_concurrent_readers(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # all three readers hold the lock at once

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        writer_in = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                time.sleep(0.05)
                order.append("write")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read():
                order.append("read")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join(timeout=5)
        tr.join(timeout=5)
        assert order == ["write", "read"]

    def test_writer_preference_over_new_readers(self):
        lock = ReadWriteLock()
        order = []
        reader_in = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read():
                reader_in.set()
                writer_waiting.wait(timeout=5)
                time.sleep(0.05)  # give the late reader time to queue up

        def writer():
            reader_in.wait(timeout=5)
            writer_waiting.set()
            with lock.write():
                order.append("write")

        def late_reader():
            writer_waiting.wait(timeout=5)
            time.sleep(0.01)  # arrive after the writer started waiting
            with lock.read():
                order.append("late-read")

        threads = [
            threading.Thread(target=first_reader),
            threading.Thread(target=writer),
            threading.Thread(target=late_reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert order == ["write", "late-read"]

    def test_write_reentrant(self):
        lock = ReadWriteLock()
        with lock.write():
            with lock.write():
                pass
        # Fully released: another thread can acquire immediately.
        acquired = []
        t = threading.Thread(target=lambda: acquired.append(lock.write().__enter__()))
        t.start()
        t.join(timeout=5)
        assert acquired

    def test_read_within_write(self):
        lock = ReadWriteLock()
        with lock.write():
            with lock.read():
                pass
            # The write side survives the nested read's release.
            with lock.write():
                pass

    def test_read_reentrant(self):
        lock = ReadWriteLock()
        with lock.read():
            with lock.read():
                pass

    def test_upgrade_refused(self):
        lock = ReadWriteLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_release_misuse(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestMemos:
    @pytest.mark.parametrize("memo_cls", [StripedMemo, DictMemo])
    def test_compute_once(self, memo_cls):
        memo = memo_cls()
        calls = []

        def factory():
            calls.append(1)
            return "value"

        assert memo.get_or_compute("k", factory) == "value"
        assert memo.get_or_compute("k", factory) == "value"
        assert len(calls) == 1
        assert len(memo) == 1

    def test_striped_memo_no_duplicate_compute_under_contention(self):
        memo = StripedMemo(n_stripes=4)
        calls = []
        start = threading.Barrier(8, timeout=5)

        def worker(i):
            start.wait()
            for key in range(10):
                memo.get_or_compute(key, lambda k=key: calls.append(k) or k * 2)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        # Each of the 10 keys computed exactly once across 8 threads —
        # the stripe lock held across the factory is what guarantees it.
        assert sorted(calls) == list(range(10))
        assert len(memo) == 10

    def test_striped_memo_validates_stripes(self):
        with pytest.raises(ValueError):
            StripedMemo(n_stripes=0)
