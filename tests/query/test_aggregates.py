"""Unit tests for aggregate specs and grouped accumulation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CacheError, QueryError
from repro.query import AggFunc, AggregateSpec, Col, GroupedAggregates


def arr(values):
    out = np.empty(len(values), dtype=object)
    out[:] = values
    return out


def specs(*pairs):
    return [
        AggregateSpec(func, Col("v", "t") if has_arg else None, f"out{i}")
        for i, (func, has_arg) in enumerate(pairs)
    ]


class TestAggregateSpec:
    def test_count_star(self):
        spec = AggregateSpec(AggFunc.COUNT, None, "n")
        assert spec.is_count_star
        assert spec.canonical() == "COUNT(*)"

    def test_non_count_requires_arg(self):
        with pytest.raises(QueryError):
            AggregateSpec(AggFunc.SUM, None, "s")

    def test_self_maintainability(self):
        assert AggFunc.SUM.self_maintainable
        assert AggFunc.COUNT.self_maintainable
        assert AggFunc.AVG.self_maintainable
        assert not AggFunc.MIN.self_maintainable
        assert not AggFunc.MAX.self_maintainable

    def test_canonical(self):
        spec = AggregateSpec(AggFunc.SUM, Col("price", "i"), "profit")
        assert spec.canonical() == "SUM(i.price)"


class TestAccumulate:
    def test_sum_count_avg(self):
        grouped = GroupedAggregates(
            specs((AggFunc.SUM, True), (AggFunc.COUNT, False), (AggFunc.AVG, True))
        )
        keys = [("a",), ("a",), ("b",)]
        values = arr([1.0, 3.0, 10.0])
        grouped.accumulate(keys, [values, arr([None] * 3), values])
        rows = dict((row[0], row[1:]) for row in grouped.finalize())
        assert rows["a"] == (4.0, 2, 2.0)
        assert rows["b"] == (10.0, 1, 10.0)

    def test_nulls_skipped_by_sum_avg_count_col(self):
        grouped = GroupedAggregates(
            specs((AggFunc.SUM, True), (AggFunc.COUNT, True), (AggFunc.AVG, True))
        )
        values = arr([None, 2.0, None])
        grouped.accumulate([("g",)] * 3, [values, values, values])
        row = grouped.finalize()[0]
        assert row[0] == "g"
        assert row[1] == 2.0
        assert row[2] == 1
        assert row[3] == 2.0
        assert grouped.count_star(("g",)) == 3

    def test_sum_all_null_is_null(self):
        grouped = GroupedAggregates(specs((AggFunc.SUM, True)))
        grouped.accumulate([("g",)], [arr([None])])
        assert grouped.finalize()[0][1] is None

    def test_min_max(self):
        grouped = GroupedAggregates(specs((AggFunc.MIN, True), (AggFunc.MAX, True)))
        values = arr([5, None, 2, 9])
        grouped.accumulate([("g",)] * 4, [values, values])
        assert grouped.finalize()[0][1:] == (2, 9)

    def test_empty_group_key(self):
        grouped = GroupedAggregates(specs((AggFunc.COUNT, False)))
        grouped.accumulate([(), ()], [arr([None, None])])
        assert grouped.finalize() == [(2,)]

    def test_invalid_sign(self):
        grouped = GroupedAggregates(specs((AggFunc.COUNT, False)))
        with pytest.raises(ValueError):
            grouped.accumulate([()], [arr([None])], sign=2)


class TestSubtraction:
    def test_subtract_retires_empty_groups(self):
        grouped = GroupedAggregates(specs((AggFunc.SUM, True)))
        grouped.accumulate([("a",), ("b",)], [arr([1.0, 2.0])])
        grouped.accumulate([("a",)], [arr([1.0])], sign=-1)
        assert grouped.group_count() == 1
        assert grouped.finalize() == [("b", 2.0)]

    def test_subtract_partial(self):
        grouped = GroupedAggregates(specs((AggFunc.SUM, True), (AggFunc.AVG, True)))
        values = arr([10.0, 20.0])
        grouped.accumulate([("g",)] * 2, [values, values])
        grouped.accumulate([("g",)], [arr([10.0]), arr([10.0])], sign=-1)
        assert grouped.finalize()[0][1:] == (20.0, 20.0)

    def test_subtract_min_rejected(self):
        grouped = GroupedAggregates(specs((AggFunc.MIN, True)))
        grouped.accumulate([("g",)], [arr([1])])
        with pytest.raises(CacheError):
            grouped.accumulate([("g",)], [arr([1])], sign=-1)


class TestMerge:
    def test_merge_adds(self):
        a = GroupedAggregates(specs((AggFunc.SUM, True), (AggFunc.COUNT, False)))
        b = GroupedAggregates(specs((AggFunc.SUM, True), (AggFunc.COUNT, False)))
        a.accumulate([("x",)], [arr([1.0]), arr([None])])
        b.accumulate([("x",), ("y",)], [arr([2.0, 5.0]), arr([None, None])])
        a.merge(b)
        rows = dict((row[0], row[1:]) for row in a.finalize())
        assert rows["x"] == (3.0, 2)
        assert rows["y"] == (5.0, 1)

    def test_merge_subtract_retires(self):
        a = GroupedAggregates(specs((AggFunc.COUNT, False)))
        b = GroupedAggregates(specs((AggFunc.COUNT, False)))
        a.accumulate([("x",)], [arr([None])])
        b.accumulate([("x",)], [arr([None])])
        a.merge(b, sign=-1)
        assert a.group_count() == 0

    def test_merge_min_max(self):
        a = GroupedAggregates(specs((AggFunc.MIN, True), (AggFunc.MAX, True)))
        b = GroupedAggregates(specs((AggFunc.MIN, True), (AggFunc.MAX, True)))
        a.accumulate([("g",)], [arr([5]), arr([5])])
        b.accumulate([("g",)], [arr([3]), arr([3])])
        a.merge(b)
        assert a.finalize()[0][1:] == (3, 5)

    def test_merge_spec_mismatch(self):
        a = GroupedAggregates(specs((AggFunc.SUM, True)))
        b = GroupedAggregates(specs((AggFunc.COUNT, False)))
        with pytest.raises(CacheError):
            a.merge(b)

    def test_copy_independent(self):
        a = GroupedAggregates(specs((AggFunc.SUM, True)))
        a.accumulate([("g",)], [arr([1.0])])
        c = a.copy()
        c.accumulate([("g",)], [arr([1.0])])
        assert a.finalize()[0][1] == 1.0
        assert c.finalize()[0][1] == 2.0


class TestMetricsHelpers:
    def test_total_rows_and_size(self):
        grouped = GroupedAggregates(specs((AggFunc.COUNT, False)))
        grouped.accumulate([("a",), ("a",), ("b",)], [arr([None] * 3)])
        assert grouped.total_rows_aggregated() == 3
        assert grouped.approximate_nbytes() > 0
        assert set(grouped.keys()) == {("a",), ("b",)}


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.floats(-100, 100)),
        max_size=60,
    )
)
def test_property_add_then_subtract_is_identity(rows):
    """Adding a batch then subtracting it restores the previous state."""
    base = GroupedAggregates(
        specs((AggFunc.SUM, True), (AggFunc.COUNT, False), (AggFunc.AVG, True))
    )
    base.accumulate([("a",)], [arr([1.0]), arr([None]), arr([1.0])])
    snapshot = sorted(base.copy().finalize())
    keys = [(g,) for g, _ in rows]
    values = arr([v for _, v in rows])
    base.accumulate(keys, [values, arr([None] * len(rows)), values])
    base.accumulate(keys, [values, arr([None] * len(rows)), values], sign=-1)
    result = sorted(base.finalize())
    assert [r[0] for r in result] == [r[0] for r in snapshot]
    for got, want in zip(result, snapshot):
        assert got[2] == want[2]  # counts exact
        assert got[1] == pytest.approx(want[1])
        assert got[3] == pytest.approx(want[3])
