"""Unit tests for expression trees and their evaluation semantics."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import And, Arith, Cmp, Col, InList, IsNull, Lit, Not, Or
from repro.query.expr import conjuncts_of, single_alias_of


class ArrayProvider:
    """Column provider backed by plain dict-of-arrays, for expression tests."""

    def __init__(self, columns, n):
        self._columns = {
            key: np.array(values, dtype=object) for key, values in columns.items()
        }
        self._n = n

    def get(self, alias, name):
        return self._columns[(alias, name)]

    def row_count(self):
        return self._n


def provider(**cols):
    n = len(next(iter(cols.values())))
    return ArrayProvider({("t", name): values for name, values in cols.items()}, n)


class TestComparison:
    def test_all_operators(self):
        p = provider(x=[1, 2, 3])
        col = Col("x", "t")
        assert Cmp("=", col, Lit(2)).evaluate(p).tolist() == [False, True, False]
        assert Cmp("!=", col, Lit(2)).evaluate(p).tolist() == [True, False, True]
        assert Cmp("<", col, Lit(2)).evaluate(p).tolist() == [True, False, False]
        assert Cmp("<=", col, Lit(2)).evaluate(p).tolist() == [True, True, False]
        assert Cmp(">", col, Lit(2)).evaluate(p).tolist() == [False, False, True]
        assert Cmp(">=", col, Lit(2)).evaluate(p).tolist() == [False, True, True]

    def test_null_is_false(self):
        p = provider(x=[None, 5, None])
        col = Col("x", "t")
        for op in ("=", "!=", "<", "<=", ">", ">="):
            result = Cmp(op, col, Lit(5)).evaluate(p)
            assert not result[0] and not result[2]

    def test_string_comparison(self):
        p = provider(s=["abc", "xyz"])
        assert Cmp("=", Col("s", "t"), Lit("abc")).evaluate(p).tolist() == [True, False]

    def test_column_vs_column(self):
        p = ArrayProvider(
            {("t", "a"): np.array([1, 2], dtype=object), ("t", "b"): np.array([1, 3], dtype=object)},
            2,
        )
        assert Cmp("=", Col("a", "t"), Col("b", "t")).evaluate(p).tolist() == [True, False]

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Cmp("~", Col("x"), Lit(1))

    def test_is_equi_join(self):
        assert Cmp("=", Col("a", "h"), Col("b", "i")).is_equi_join()
        assert not Cmp("=", Col("a", "h"), Col("b", "h")).is_equi_join()
        assert not Cmp("=", Col("a", "h"), Lit(1)).is_equi_join()
        assert not Cmp("<", Col("a", "h"), Col("b", "i")).is_equi_join()


class TestBoolean:
    def test_and_or_not(self):
        p = provider(x=[1, 2, 3, 4])
        col = Col("x", "t")
        gt1 = Cmp(">", col, Lit(1))
        lt4 = Cmp("<", col, Lit(4))
        assert And([gt1, lt4]).evaluate(p).tolist() == [False, True, True, False]
        assert Or([Not(gt1), Not(lt4)]).evaluate(p).tolist() == [True, False, False, True]

    def test_empty_boolean_rejected(self):
        with pytest.raises(QueryError):
            And([])
        with pytest.raises(QueryError):
            Or([])

    def test_conjunct_flattening(self):
        a, b, c = (Cmp("=", Col("x", "t"), Lit(i)) for i in range(3))
        nested = And([a, And([b, c])])
        assert nested.conjuncts() == [a, b, c]
        assert conjuncts_of(nested) == [a, b, c]
        assert conjuncts_of(a) == [a]

    def test_operator_sugar(self):
        a = Cmp("=", Col("x", "t"), Lit(1))
        b = Cmp("=", Col("x", "t"), Lit(2))
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)


class TestOtherPredicates:
    def test_in_list(self):
        p = provider(x=[1, 2, None, 4])
        result = InList(Col("x", "t"), [1, 4]).evaluate(p)
        assert result.tolist() == [True, False, False, True]

    def test_is_null(self):
        p = provider(x=[None, 1])
        assert IsNull(Col("x", "t")).evaluate(p).tolist() == [True, False]
        assert IsNull(Col("x", "t"), negated=True).evaluate(p).tolist() == [False, True]


class TestArithmetic:
    def test_basic_ops(self):
        p = provider(x=[10, 20])
        col = Col("x", "t")
        assert Arith("+", col, Lit(1)).evaluate(p).tolist() == [11, 21]
        assert Arith("-", col, Lit(1)).evaluate(p).tolist() == [9, 19]
        assert Arith("*", col, Lit(2)).evaluate(p).tolist() == [20, 40]
        assert Arith("/", col, Lit(2)).evaluate(p).tolist() == [5, 10]

    def test_null_propagates(self):
        p = provider(x=[None, 3])
        out = Arith("*", Col("x", "t"), Lit(2)).evaluate(p)
        assert out.tolist() == [None, 6]

    def test_unknown_op(self):
        with pytest.raises(QueryError):
            Arith("%", Col("x"), Lit(1))


class TestCanonicalAndBinding:
    def test_canonical_stable_under_operand_order(self):
        a = Cmp("=", Col("x", "t"), Lit(1))
        b = Cmp("=", Col("y", "t"), Lit(2))
        assert And([a, b]).canonical() == And([b, a]).canonical()

    def test_literal_quoting(self):
        assert Lit("o'brien").canonical() == "'o''brien'"
        assert Lit(None).canonical() == "None"

    def test_expr_equality_by_canonical(self):
        assert Cmp("=", Col("x", "t"), Lit(1)) == Cmp("=", Col("x", "t"), Lit(1))
        assert Cmp("=", Col("x", "t"), Lit(1)) != Cmp("=", Col("x", "t"), Lit(2))
        assert hash(Lit(1)) == hash(Lit(1))

    def test_rebind(self):
        expr = Cmp("=", Col("x", "a"), Col("y", "b"))
        rebound = expr.rebind({"a": "h"})
        assert rebound.canonical() == "(h.x = b.y)"
        # original untouched
        assert expr.canonical() == "(a.x = b.y)"

    def test_map_columns(self):
        expr = And([Cmp("=", Col("x"), Lit(1)), IsNull(Col("y"))])
        bound = expr.map_columns(lambda c: Col(c.name, "t"))
        assert {a for a, _ in bound.column_refs()} == {"t"}

    def test_column_refs(self):
        expr = Or([Cmp("=", Col("x", "a"), Col("y", "b")), IsNull(Col("z", "a"))])
        assert expr.column_refs() == frozenset({("a", "x"), ("b", "y"), ("a", "z")})

    def test_single_alias_of(self):
        assert single_alias_of(Cmp("=", Col("x", "a"), Lit(1))) == "a"
        assert single_alias_of(Cmp("=", Col("x", "a"), Col("y", "b"))) is None
        assert single_alias_of(Lit(1)) is None
