"""Tests for HAVING clauses and time-travel (as_of) queries."""

import pytest

from repro import Database, ExecutionStrategy, QueryError
from repro.errors import SqlSyntaxError

from ..conftest import HEADER_ITEM_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def make_sales_db():
    db = Database()
    db.create_table(
        "sales", [("sid", "INT"), ("cat", "TEXT"), ("price", "FLOAT")], primary_key="sid"
    )
    rows = [(1, "a", 10.0), (2, "a", 20.0), (3, "b", 5.0), (4, "c", 100.0)]
    for sid, cat, price in rows:
        db.insert("sales", {"sid": sid, "cat": cat, "price": price})
    db.merge()
    return db


class TestHaving:
    def test_having_filters_groups(self):
        db = make_sales_db()
        result = db.query(
            "SELECT cat, SUM(price) AS s FROM sales GROUP BY cat HAVING s > 20"
        )
        assert result.to_dicts() == [
            {"cat": "a", "s": 30.0},
            {"cat": "c", "s": 100.0},
        ]

    def test_having_on_count(self):
        db = make_sales_db()
        result = db.query(
            "SELECT cat, COUNT(*) AS n FROM sales GROUP BY cat HAVING n >= 2"
        )
        assert result.column_values("cat") == ["a"]

    def test_having_on_group_label(self):
        db = make_sales_db()
        result = db.query(
            "SELECT cat, SUM(price) AS s FROM sales GROUP BY cat HAVING cat != 'a'"
        )
        assert result.column_values("cat") == ["b", "c"]

    def test_having_with_order_and_limit(self):
        db = make_sales_db()
        result = db.query(
            "SELECT cat, SUM(price) AS s FROM sales GROUP BY cat "
            "HAVING s > 1 ORDER BY s DESC LIMIT 2"
        )
        assert result.column_values("cat") == ["c", "a"]

    def test_having_does_not_split_cache_entries(self):
        db = make_sales_db()
        db.query("SELECT cat, SUM(price) AS s FROM sales GROUP BY cat", strategy=FULL)
        db.query(
            "SELECT cat, SUM(price) AS s FROM sales GROUP BY cat HAVING s > 20",
            strategy=FULL,
        )
        # Same extent: one entry, second query was a hit.
        assert db.cache.entry_count() == 1
        assert db.last_report.cache_hits == 1

    def test_having_unknown_output_column(self):
        db = make_sales_db()
        with pytest.raises(QueryError):
            db.query("SELECT cat, SUM(price) AS s FROM sales GROUP BY cat HAVING zz > 1")

    def test_having_strategy_equivalence(self):
        db = make_erp_db()
        load_erp(db, n_headers=5, merge=True)
        load_erp(db, n_headers=2, start_hid=70, merge=False)
        sql = HEADER_ITEM_SQL + " HAVING profit > 10"
        reference = db.query(sql, strategy=UNCACHED)
        assert db.query(sql, strategy=FULL) == reference


class TestTimeTravel:
    def test_as_of_sees_past_inserts_only(self):
        db = make_sales_db()
        snapshot = db.transactions.global_snapshot()
        db.insert("sales", {"sid": 9, "cat": "a", "price": 1000.0})
        now = db.query("SELECT SUM(price) AS s FROM sales")
        past = db.query("SELECT SUM(price) AS s FROM sales", as_of=snapshot)
        assert now.rows[0][0] == past.rows[0][0] + 1000.0

    def test_as_of_before_delete_with_history(self):
        db = make_sales_db()
        snapshot = db.transactions.global_snapshot()
        db.delete("sales", 4)
        db.merge(keep_history=True)
        past = db.query(
            "SELECT cat, COUNT(*) AS n FROM sales GROUP BY cat", as_of=snapshot
        )
        assert "c" in past.column_values("cat")
        now = db.query("SELECT cat, COUNT(*) AS n FROM sales GROUP BY cat")
        assert "c" not in now.column_values("cat")

    def test_as_of_zero_sees_nothing(self):
        db = make_sales_db()
        past = db.query("SELECT COUNT(*) AS n FROM sales", as_of=0)
        assert past.rows == []

    def test_as_of_with_cache_strategy_is_consistent(self):
        db = make_sales_db()
        db.query("SELECT cat, SUM(price) AS s FROM sales GROUP BY cat", strategy=FULL)
        snapshot = db.transactions.global_snapshot()
        db.insert("sales", {"sid": 10, "cat": "b", "price": 7.0})
        cached = db.query(
            "SELECT cat, SUM(price) AS s FROM sales GROUP BY cat",
            strategy=FULL,
            as_of=snapshot,
        )
        uncached = db.query(
            "SELECT cat, SUM(price) AS s FROM sales GROUP BY cat",
            strategy=UNCACHED,
            as_of=snapshot,
        )
        assert cached == uncached

    def test_as_of_and_txn_are_exclusive(self):
        db = make_sales_db()
        txn = db.begin()
        with pytest.raises(QueryError):
            db.query("SELECT COUNT(*) AS n FROM sales", txn=txn, as_of=1)

    def test_old_reader_after_merge_compensates(self):
        """A reader older than a cache entry must not see rows merged after
        its snapshot (the is_clean_for guard)."""
        db = make_sales_db()
        db.query("SELECT COUNT(*) AS n FROM sales", strategy=FULL)
        old = db.transactions.global_snapshot()
        db.insert("sales", {"sid": 11, "cat": "z", "price": 2.0})
        db.merge()  # entry maintained; new row now in the main
        db.query("SELECT COUNT(*) AS n FROM sales", strategy=FULL)  # re-anchor
        past = db.query("SELECT COUNT(*) AS n FROM sales", strategy=FULL, as_of=old)
        assert past.rows[0][0] == 4
