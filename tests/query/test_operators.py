"""Unit tests for physical operators: providers, hash joins, aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query import AggFunc, AggregateSpec, Col, GroupedAggregates
from repro.query.operators import (
    KERNEL_ROWLOOP,
    KERNEL_VECTORIZED,
    JoinedProvider,
    PartitionProvider,
    aggregate_into,
    build_hash_table,
    join_kernel,
    kernel_override,
    probe_hash_join,
)
from repro.storage import ColumnDef, Partition, Schema, SqlType

BOTH_KERNELS = pytest.mark.parametrize("kernel", [KERNEL_VECTORIZED, KERNEL_ROWLOOP])


def make_partition(name, columns, rows):
    schema = Schema([ColumnDef(n, t) for n, t in columns])
    part = Partition(name, "delta", schema)
    for row in rows:
        part.append_row(schema.validate_row(row), cts=1)
    return part


@pytest.fixture
def header_part():
    return make_partition(
        "hdelta",
        [("hid", SqlType.INT), ("year", SqlType.INT)],
        [{"hid": 1, "year": 2013}, {"hid": 2, "year": 2014}, {"hid": 3, "year": 2013}],
    )


@pytest.fixture
def item_part():
    return make_partition(
        "idelta",
        [("iid", SqlType.INT), ("hid", SqlType.INT), ("price", SqlType.FLOAT)],
        [
            {"iid": 10, "hid": 1, "price": 5.0},
            {"iid": 11, "hid": 1, "price": 6.0},
            {"iid": 12, "hid": 2, "price": 7.0},
            {"iid": 13, "hid": None, "price": 8.0},
        ],
    )


class TestProviders:
    def test_partition_provider_alias_check(self, header_part):
        provider = PartitionProvider("h", header_part, np.array([0, 2]))
        assert provider.get("h", "year").tolist() == [2013, 2013]
        assert provider.get(None, "year").tolist() == [2013, 2013]
        with pytest.raises(QueryError):
            provider.get("other", "year")

    def test_joined_provider_alignment(self, header_part, item_part):
        with pytest.raises(QueryError):
            JoinedProvider(
                {"h": header_part, "i": item_part},
                {"h": np.array([0]), "i": np.array([0, 1])},
            )

    def test_joined_provider_unqualified_resolution(self, header_part, item_part):
        provider = JoinedProvider(
            {"h": header_part, "i": item_part},
            {"h": np.array([0]), "i": np.array([0])},
        )
        assert provider.get(None, "price").tolist() == [5.0]
        with pytest.raises(QueryError):
            provider.get(None, "hid")  # ambiguous: both tables have it
        with pytest.raises(QueryError):
            provider.get(None, "missing")

    def test_select(self, header_part):
        provider = JoinedProvider({"h": header_part}, {"h": np.array([0, 1, 2])})
        narrowed = provider.select(np.array([True, False, True]))
        assert narrowed.row_count() == 2
        assert narrowed.indices["h"].tolist() == [0, 2]

    def test_codes_access(self, item_part):
        provider = JoinedProvider({"i": item_part}, {"i": np.array([0, 3])})
        codes, fragment = provider.codes("i", "hid")
        assert codes.tolist() == [0, -1]  # NULL encodes as -1
        assert fragment.dictionary.decode(0) == 1


class TestHashJoin:
    @BOTH_KERNELS
    def test_build_skips_null_keys(self, item_part, kernel):
        with kernel_override(kernel):
            table = build_hash_table(item_part, np.arange(4), ["hid"])
        assert table.kernel == kernel
        assert len(table) == 2 and bool(table)
        grouped = table.as_dict()
        assert set(grouped) == {(1,), (2,)}
        assert grouped[(1,)] == [0, 1]

    @BOTH_KERNELS
    def test_empty_table_is_falsy(self, item_part, kernel):
        with kernel_override(kernel):
            table = build_hash_table(item_part, np.array([3]), ["hid"])  # NULL key
        assert not table
        assert len(table) == 0
        assert table.as_dict() == {}

    @BOTH_KERNELS
    def test_probe_expands_matches(self, header_part, item_part, kernel):
        current = JoinedProvider({"h": header_part}, {"h": np.array([0, 1, 2])})
        with kernel_override(kernel):
            table = build_hash_table(item_part, np.arange(4), ["hid"])
            joined = probe_hash_join(current, [("h", "hid")], "i", item_part, table)
        assert joined.row_count() == 3  # h1 matches twice, h2 once, h3 zero
        assert joined.indices["h"].tolist() == [0, 0, 1]
        assert joined.indices["i"].tolist() == [0, 1, 2]

    @BOTH_KERNELS
    def test_probe_null_keys_never_match(self, header_part, item_part, kernel):
        current = JoinedProvider({"i": item_part}, {"i": np.array([3])})
        with kernel_override(kernel):
            table = build_hash_table(header_part, np.arange(3), ["hid"])
            joined = probe_hash_join(current, [("i", "hid")], "h", header_part, table)
        assert joined.row_count() == 0

    @BOTH_KERNELS
    def test_composite_key(self, kernel):
        left = make_partition(
            "l", [("a", SqlType.INT), ("b", SqlType.INT)],
            [{"a": 1, "b": 1}, {"a": 1, "b": 2}],
        )
        right = make_partition(
            "r", [("a", SqlType.INT), ("b", SqlType.INT)],
            [{"a": 1, "b": 2}, {"a": 1, "b": 3}],
        )
        current = JoinedProvider({"l": left}, {"l": np.arange(2)})
        with kernel_override(kernel):
            table = build_hash_table(right, np.arange(2), ["a", "b"])
            joined = probe_hash_join(current, [("l", "a"), ("l", "b")], "r", right, table)
        assert joined.row_count() == 1
        assert joined.indices["l"].tolist() == [1]

    def test_kernel_selection_env(self, monkeypatch):
        assert join_kernel() == KERNEL_VECTORIZED
        monkeypatch.setenv("REPRO_JOIN_KERNEL", "rowloop")
        assert join_kernel() == KERNEL_ROWLOOP
        with kernel_override(KERNEL_VECTORIZED):
            assert join_kernel() == KERNEL_VECTORIZED  # override beats env
        with pytest.raises(QueryError):
            with kernel_override("simd"):
                pass

    def test_main_delta_dictionary_bridging(self, header_part):
        """Probe codes are translated when build/probe dictionaries differ:
        a bulk-built main partition has sorted-rank codes, the probing delta
        has append-order codes, yet the join must agree with the row loop."""
        schema = Schema([ColumnDef("hid", SqlType.INT), ColumnDef("v", SqlType.INT)])
        rows = [
            {"hid": 3, "v": 30},
            {"hid": 1, "v": 10},
            {"hid": 2, "v": 20},
            {"hid": 1, "v": 11},
        ]
        main = Partition.build_main("hmain", schema, rows, cts=[1] * 4, dts=[0] * 4)
        current = JoinedProvider({"h": header_part}, {"h": np.array([0, 1, 2])})
        results = {}
        for kernel in (KERNEL_VECTORIZED, KERNEL_ROWLOOP):
            with kernel_override(kernel):
                table = build_hash_table(main, np.arange(4), ["hid"])
                joined = probe_hash_join(current, [("h", "hid")], "m", main, table)
            results[kernel] = {
                alias: idx.tolist() for alias, idx in joined.indices.items()
            }
        assert results[KERNEL_VECTORIZED] == results[KERNEL_ROWLOOP]
        # h.hid=1 matches main rows 1 and 3 (in build-row order), hid=2 row 2,
        # hid=3 row 0.
        assert results[KERNEL_VECTORIZED]["m"] == [1, 3, 2, 0]


def specs():
    return [
        AggregateSpec(AggFunc.SUM, Col("price", "i"), "s"),
        AggregateSpec(AggFunc.COUNT, None, "n"),
        AggregateSpec(AggFunc.AVG, Col("price", "i"), "a"),
    ]


class TestAggregationPaths:
    def test_small_input_uses_row_loop(self, item_part):
        provider = JoinedProvider({"i": item_part}, {"i": np.arange(4)})
        grouped = GroupedAggregates(specs())
        n = aggregate_into(grouped, provider, [Col("hid", "i")], specs())
        assert n == 4
        rows = {row[0]: row[1:] for row in grouped.finalize()}
        assert rows[1] == (11.0, 2, 5.5)
        assert rows[None] == (8.0, 1, 8.0)

    def test_empty_provider(self, item_part):
        provider = JoinedProvider({"i": item_part}, {"i": np.empty(0, dtype=np.int64)})
        grouped = GroupedAggregates(specs())
        assert aggregate_into(grouped, provider, [Col("hid", "i")], specs()) == 0


class TestExactnessRegressions:
    """Bugfix pins: these fail on the float64-bincount / raw mixed-radix
    implementations and must stay green on both kernels."""

    def _run_both(self, part, n_rows, group_by, sp):
        provider = JoinedProvider({"i": part}, {"i": np.arange(n_rows)})
        results = {}
        for kernel in (KERNEL_VECTORIZED, KERNEL_ROWLOOP):
            grouped = GroupedAggregates(sp)
            with kernel_override(kernel):
                aggregate_into(grouped, provider, group_by, sp)
            results[kernel] = sorted(grouped.finalize())
        return results

    def test_integer_sum_exact_beyond_2_53(self):
        """SUM/AVG of INT columns must not round through float64: one value
        at 2**53 plus 59 ones is exactly 2**53 + 59, which float64 cannot
        represent (spacing is 2 above 2**53)."""
        big = 2**53
        rows = [{"hid": 1, "val": big}] + [{"hid": 1, "val": 1}] * 59
        part = make_partition(
            "i", [("hid", SqlType.INT), ("val", SqlType.INT)], rows
        )
        sp = [
            AggregateSpec(AggFunc.SUM, Col("val", "i"), "s"),
            AggregateSpec(AggFunc.AVG, Col("val", "i"), "a"),
            AggregateSpec(AggFunc.COUNT, None, "n"),
        ]
        results = self._run_both(part, len(rows), [Col("hid", "i")], sp)
        assert results[KERNEL_VECTORIZED] == results[KERNEL_ROWLOOP]
        ((key, total, avg, count),) = results[KERNEL_VECTORIZED]
        assert key == 1 and count == 60
        assert type(total) is int and total == big + 59
        assert avg == (big + 59) / 60

    def test_integer_sum_exact_beyond_int64(self):
        """Sums past int64 range take the arbitrary-precision path."""
        big = 2**60 + 1
        rows = [{"hid": 1, "val": big}] * 60  # total = 60*(2**60+1) > 2**63
        part = make_partition(
            "i", [("hid", SqlType.INT), ("val", SqlType.INT)], rows
        )
        sp = [AggregateSpec(AggFunc.SUM, Col("val", "i"), "s")]
        results = self._run_both(part, len(rows), [Col("hid", "i")], sp)
        assert results[KERNEL_VECTORIZED] == results[KERNEL_ROWLOOP]
        ((_, total),) = results[KERNEL_VECTORIZED]
        assert type(total) is int and total == 60 * big

    def test_group_code_overflow_keeps_groups_distinct(self):
        """Nine group-by columns whose radix product is 3 * 256**8 > 2**64:
        the raw mixed-radix fold wraps int64 and merges (0, t, ..., t) with
        (1, t, ..., t); the overflow-safe fold must keep all 257 groups."""
        cols = [("a", SqlType.INT)] + [(f"c{j}", SqlType.INT) for j in range(8)]
        rows = [
            {"a": 0, **{f"c{j}": i for j in range(8)}} for i in range(255)
        ] + [
            {"a": 1, **{f"c{j}": t for j in range(8)}} for t in (0, 1)
        ]
        part = make_partition("i", cols, rows)
        group_by = [Col(name, "i") for name, _ in cols]
        sp = [AggregateSpec(AggFunc.COUNT, None, "n")]
        results = self._run_both(part, len(rows), group_by, sp)
        assert results[KERNEL_VECTORIZED] == results[KERNEL_ROWLOOP]
        out = results[KERNEL_VECTORIZED]
        assert len(out) == 257
        assert all(row[-1] == 1 for row in out)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(0, 4)),
            st.one_of(st.none(), st.floats(-50, 50, allow_nan=False)),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_property_vectorized_equals_row_loop(rows):
    """The code-space vectorized aggregation must agree with the row loop
    regardless of size (the 48-row threshold picks the path)."""
    part = make_partition(
        "i",
        [("hid", SqlType.INT), ("price", SqlType.FLOAT)],
        [{"hid": h, "price": p} for h, p in rows],
    )
    provider = JoinedProvider({"i": part}, {"i": np.arange(len(rows))})

    vectorized = GroupedAggregates(specs())
    aggregate_into(vectorized, provider, [Col("hid", "i")], specs())

    from repro.query import operators

    original = operators._VECTORIZE_THRESHOLD
    operators._VECTORIZE_THRESHOLD = 10**9  # force the row loop
    try:
        looped = GroupedAggregates(specs())
        aggregate_into(looped, provider, [Col("hid", "i")], specs())
    finally:
        operators._VECTORIZE_THRESHOLD = original

    left = {row[0]: row[1:] for row in vectorized.finalize()}
    right = {row[0]: row[1:] for row in looped.finalize()}
    assert set(left) == set(right)
    for key in left:
        for a, b in zip(left[key], right[key]):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert a == pytest.approx(b)
