"""Unit tests for physical operators: providers, hash joins, aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query import AggFunc, AggregateSpec, Col, GroupedAggregates
from repro.query.operators import (
    JoinedProvider,
    PartitionProvider,
    aggregate_into,
    build_hash_table,
    probe_hash_join,
)
from repro.storage import ColumnDef, Partition, Schema, SqlType


def make_partition(name, columns, rows):
    schema = Schema([ColumnDef(n, t) for n, t in columns])
    part = Partition(name, "delta", schema)
    for row in rows:
        part.append_row(schema.validate_row(row), cts=1)
    return part


@pytest.fixture
def header_part():
    return make_partition(
        "hdelta",
        [("hid", SqlType.INT), ("year", SqlType.INT)],
        [{"hid": 1, "year": 2013}, {"hid": 2, "year": 2014}, {"hid": 3, "year": 2013}],
    )


@pytest.fixture
def item_part():
    return make_partition(
        "idelta",
        [("iid", SqlType.INT), ("hid", SqlType.INT), ("price", SqlType.FLOAT)],
        [
            {"iid": 10, "hid": 1, "price": 5.0},
            {"iid": 11, "hid": 1, "price": 6.0},
            {"iid": 12, "hid": 2, "price": 7.0},
            {"iid": 13, "hid": None, "price": 8.0},
        ],
    )


class TestProviders:
    def test_partition_provider_alias_check(self, header_part):
        provider = PartitionProvider("h", header_part, np.array([0, 2]))
        assert provider.get("h", "year").tolist() == [2013, 2013]
        assert provider.get(None, "year").tolist() == [2013, 2013]
        with pytest.raises(QueryError):
            provider.get("other", "year")

    def test_joined_provider_alignment(self, header_part, item_part):
        with pytest.raises(QueryError):
            JoinedProvider(
                {"h": header_part, "i": item_part},
                {"h": np.array([0]), "i": np.array([0, 1])},
            )

    def test_joined_provider_unqualified_resolution(self, header_part, item_part):
        provider = JoinedProvider(
            {"h": header_part, "i": item_part},
            {"h": np.array([0]), "i": np.array([0])},
        )
        assert provider.get(None, "price").tolist() == [5.0]
        with pytest.raises(QueryError):
            provider.get(None, "hid")  # ambiguous: both tables have it
        with pytest.raises(QueryError):
            provider.get(None, "missing")

    def test_select(self, header_part):
        provider = JoinedProvider({"h": header_part}, {"h": np.array([0, 1, 2])})
        narrowed = provider.select(np.array([True, False, True]))
        assert narrowed.row_count() == 2
        assert narrowed.indices["h"].tolist() == [0, 2]

    def test_codes_access(self, item_part):
        provider = JoinedProvider({"i": item_part}, {"i": np.array([0, 3])})
        codes, fragment = provider.codes("i", "hid")
        assert codes.tolist() == [0, -1]  # NULL encodes as -1
        assert fragment.dictionary.decode(0) == 1


class TestHashJoin:
    def test_build_skips_null_keys(self, item_part):
        table = build_hash_table(item_part, np.arange(4), ["hid"])
        assert set(table) == {(1,), (2,)}
        assert table[(1,)] == [0, 1]

    def test_probe_expands_matches(self, header_part, item_part):
        current = JoinedProvider({"h": header_part}, {"h": np.array([0, 1, 2])})
        table = build_hash_table(item_part, np.arange(4), ["hid"])
        joined = probe_hash_join(current, [("h", "hid")], "i", item_part, table)
        assert joined.row_count() == 3  # h1 matches twice, h2 once, h3 zero
        assert joined.indices["h"].tolist() == [0, 0, 1]
        assert joined.indices["i"].tolist() == [0, 1, 2]

    def test_probe_null_keys_never_match(self, header_part, item_part):
        current = JoinedProvider({"i": item_part}, {"i": np.array([3])})
        table = build_hash_table(header_part, np.arange(3), ["hid"])
        joined = probe_hash_join(current, [("i", "hid")], "h", header_part, table)
        assert joined.row_count() == 0

    def test_composite_key(self):
        left = make_partition(
            "l", [("a", SqlType.INT), ("b", SqlType.INT)],
            [{"a": 1, "b": 1}, {"a": 1, "b": 2}],
        )
        right = make_partition(
            "r", [("a", SqlType.INT), ("b", SqlType.INT)],
            [{"a": 1, "b": 2}, {"a": 1, "b": 3}],
        )
        table = build_hash_table(right, np.arange(2), ["a", "b"])
        current = JoinedProvider({"l": left}, {"l": np.arange(2)})
        joined = probe_hash_join(current, [("l", "a"), ("l", "b")], "r", right, table)
        assert joined.row_count() == 1
        assert joined.indices["l"].tolist() == [1]


def specs():
    return [
        AggregateSpec(AggFunc.SUM, Col("price", "i"), "s"),
        AggregateSpec(AggFunc.COUNT, None, "n"),
        AggregateSpec(AggFunc.AVG, Col("price", "i"), "a"),
    ]


class TestAggregationPaths:
    def test_small_input_uses_row_loop(self, item_part):
        provider = JoinedProvider({"i": item_part}, {"i": np.arange(4)})
        grouped = GroupedAggregates(specs())
        n = aggregate_into(grouped, provider, [Col("hid", "i")], specs())
        assert n == 4
        rows = {row[0]: row[1:] for row in grouped.finalize()}
        assert rows[1] == (11.0, 2, 5.5)
        assert rows[None] == (8.0, 1, 8.0)

    def test_empty_provider(self, item_part):
        provider = JoinedProvider({"i": item_part}, {"i": np.empty(0, dtype=np.int64)})
        grouped = GroupedAggregates(specs())
        assert aggregate_into(grouped, provider, [Col("hid", "i")], specs()) == 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(0, 4)),
            st.one_of(st.none(), st.floats(-50, 50, allow_nan=False)),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_property_vectorized_equals_row_loop(rows):
    """The code-space vectorized aggregation must agree with the row loop
    regardless of size (the 48-row threshold picks the path)."""
    part = make_partition(
        "i",
        [("hid", SqlType.INT), ("price", SqlType.FLOAT)],
        [{"hid": h, "price": p} for h, p in rows],
    )
    provider = JoinedProvider({"i": part}, {"i": np.arange(len(rows))})

    vectorized = GroupedAggregates(specs())
    aggregate_into(vectorized, provider, [Col("hid", "i")], specs())

    from repro.query import operators

    original = operators._VECTORIZE_THRESHOLD
    operators._VECTORIZE_THRESHOLD = 10**9  # force the row loop
    try:
        looped = GroupedAggregates(specs())
        aggregate_into(looped, provider, [Col("hid", "i")], specs())
    finally:
        operators._VECTORIZE_THRESHOLD = original

    left = {row[0]: row[1:] for row in vectorized.finalize()}
    right = {row[0]: row[1:] for row in looped.finalize()}
    assert set(left) == set(right)
    for key in left:
        for a, b in zip(left[key], right[key]):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert a == pytest.approx(b)
