"""Parallel subjoin execution: bit-identical results, stats, build sides."""

import pytest

from repro.errors import QueryError
from repro.query import (
    AggFunc,
    AggregateQuery,
    AggregateSpec,
    Col,
    ComboSpec,
    ExecutionStats,
    JoinEdge,
    ParallelConfig,
    QueryExecutor,
    TableRef,
    parse_sql,
)
from repro.query.parallel import MEMO_PRIVATE, MEMO_SHARED, default_workers
from repro.storage import Catalog, ColumnDef, Schema, SqlType, merge_table
from repro.txn import TransactionManager


@pytest.fixture
def env():
    """Header/Item catalog with deliberately *asymmetric* sizes: the item
    table dwarfs the header table, so build-side selection matters."""
    catalog = Catalog()
    txn = TransactionManager()
    header = catalog.create_table(
        "header",
        Schema(
            [
                ColumnDef("hid", SqlType.INT, nullable=False),
                ColumnDef("year", SqlType.INT),
            ],
            primary_key="hid",
        ),
    )
    item = catalog.create_table(
        "item",
        Schema(
            [
                ColumnDef("iid", SqlType.INT, nullable=False),
                ColumnDef("hid", SqlType.INT),
                ColumnDef("cat", SqlType.TEXT),
                ColumnDef("price", SqlType.FLOAT),
            ],
            primary_key="iid",
        ),
    )
    for hid in range(1, 5):
        header.insert({"hid": hid, "year": 2013 + hid % 2}, txn.begin().tid)
    iid = 0
    for hid in range(1, 5):
        for k in range(12):
            iid += 1
            item.insert(
                {
                    "iid": iid,
                    "hid": hid,
                    "cat": "ABC"[k % 3],
                    "price": 1.5 * k + hid * 0.25,
                },
                txn.begin().tid,
            )
    merge_table(header, txn.latest_tid)
    merge_table(item, txn.latest_tid)
    # Delta rows on both tables so all four subjoins are non-trivial.  The
    # item side stays strictly larger than the header side in *every*
    # main/delta pairing (48/6 item rows vs. 4/1 header rows).
    header.insert({"hid": 5, "year": 2015}, txn.begin().tid)
    for k in range(6):
        iid += 1
        item.insert(
            {"iid": iid, "hid": 1 + k % 5, "cat": "AB"[k % 2], "price": 3.25 * k},
            txn.begin().tid,
        )
    return catalog, txn


def profit_query():
    # Item deliberately FIRST in the FROM list: the legacy planner seeded
    # the probe side from FROM order, which only *happened* to be right.
    return AggregateQuery(
        tables=[TableRef("item", "i"), TableRef("header", "h")],
        aggregates=[
            AggregateSpec(AggFunc.SUM, Col("price", "i"), "profit"),
            AggregateSpec(AggFunc.AVG, Col("price", "i"), "avg_price"),
            AggregateSpec(AggFunc.COUNT, None, "n"),
        ],
        group_by=[Col("cat", "i")],
        join_edges=[JoinEdge("h", "hid", "i", "hid")],
    )


def header_first_query():
    query = profit_query()
    return AggregateQuery(
        tables=[TableRef("header", "h"), TableRef("item", "i")],
        aggregates=query.aggregates,
        group_by=query.group_by,
        join_edges=query.join_edges,
    )


PARALLEL = ParallelConfig(n_workers=4, min_combos=2, min_rows=0)


class TestBitIdentical:
    @pytest.mark.parametrize("memo", [MEMO_SHARED, MEMO_PRIVATE])
    def test_parallel_equals_serial_bitwise(self, env, memo):
        catalog, txn = env
        config = ParallelConfig(n_workers=4, min_combos=2, min_rows=0, memo=memo)
        serial = QueryExecutor(catalog)
        parallel = QueryExecutor(catalog, parallel=config)
        try:
            a = serial.execute(profit_query(), txn.latest_tid)
            b = parallel.execute(profit_query(), txn.latest_tid)
        finally:
            parallel.close()
        # finalize() preserves group insertion order, so bit-identical
        # execution implies *identical lists*, not just equal sets.
        assert a.finalize() == b.finalize()

    def test_three_way_join_identical(self, env):
        catalog, txn = env
        catalog.create_table(
            "cat_dim",
            Schema(
                [
                    ColumnDef("cat", SqlType.TEXT, nullable=False),
                    ColumnDef("label", SqlType.TEXT),
                ],
                primary_key="cat",
            ),
        )
        dim = catalog.table("cat_dim")
        for cat, label in [("A", "Alpha"), ("B", "Beta"), ("C", "Gamma")]:
            dim.insert({"cat": cat, "label": label}, txn.begin().tid)
        query = parse_sql(
            "SELECT d.label, SUM(i.price) AS s, COUNT(*) AS n "
            "FROM item i, header h, cat_dim d "
            "WHERE h.hid = i.hid AND i.cat = d.cat GROUP BY d.label"
        )
        serial = QueryExecutor(catalog)
        parallel = QueryExecutor(catalog, parallel=PARALLEL)
        try:
            a = serial.execute(query, txn.latest_tid)
            b = parallel.execute(query, txn.latest_tid)
        finally:
            parallel.close()
        assert a.finalize() == b.finalize()

    def test_explicit_combo_subset_identical(self, env):
        catalog, txn = env
        header = catalog.table("header")
        item = catalog.table("item")
        combos = [
            ComboSpec({"h": header.partition("main"), "i": item.partition("delta")}),
            ComboSpec({"h": header.partition("delta"), "i": item.partition("main")}),
            ComboSpec({"h": header.partition("delta"), "i": item.partition("delta")}),
        ]
        serial = QueryExecutor(catalog)
        parallel = QueryExecutor(catalog, parallel=PARALLEL)
        try:
            a = serial.execute(profit_query(), txn.latest_tid, combos=list(combos))
            b = parallel.execute(profit_query(), txn.latest_tid, combos=list(combos))
        finally:
            parallel.close()
        assert a.finalize() == b.finalize()


class TestStats:
    def test_serial_and_parallel_stats_identical(self, env):
        catalog, txn = env
        serial_stats, parallel_stats = ExecutionStats(), ExecutionStats()
        serial = QueryExecutor(catalog)
        parallel = QueryExecutor(catalog, parallel=PARALLEL)
        try:
            serial.execute(profit_query(), txn.latest_tid, stats=serial_stats)
            parallel.execute(profit_query(), txn.latest_tid, stats=parallel_stats)
        finally:
            parallel.close()
        assert serial_stats.combos_evaluated == parallel_stats.combos_evaluated == 4
        assert serial_stats.combos_empty == parallel_stats.combos_empty
        assert serial_stats.rows_aggregated == parallel_stats.rows_aggregated
        assert serial_stats.subjoins == parallel_stats.subjoins
        assert serial_stats.probe_sides == parallel_stats.probe_sides

    def test_stats_merge_preserves_order(self):
        a = ExecutionStats(1, 0, 10, ["x"], ["h"])
        b = ExecutionStats(2, 1, 5, ["y", "z"], ["i", "i"])
        a.merge(b)
        assert a.combos_evaluated == 3
        assert a.combos_empty == 1
        assert a.rows_aggregated == 15
        assert a.subjoins == ["x", "y", "z"]
        assert a.probe_sides == ["h", "i", "i"]


class TestCachePipelineParity:
    """Whole-database check: the cache pipeline's per-query report —
    executor stats and PruneReport counters — is identical whether the
    compensation subjoins run serially or on a worker pool."""

    def test_report_identical_serial_vs_parallel(self):
        import dataclasses

        from repro import ExecutionStrategy
        from tests.conftest import HEADER_ITEM_SQL, load_erp, make_erp_db

        reports = {}
        results = {}
        for label, kwargs in (
            ("serial", {}),
            ("parallel", {"parallel": PARALLEL}),
        ):
            db = make_erp_db(**kwargs)
            load_erp(db, n_headers=8, merge=True)
            load_erp(db, n_headers=3, start_hid=100, merge=False)
            db.query(HEADER_ITEM_SQL)  # create the cache entry
            results[label] = db.query(
                HEADER_ITEM_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING
            )
            reports[label] = db.last_report
            db.close()
        assert results["serial"].rows == results["parallel"].rows
        serial, parallel = reports["serial"], reports["parallel"]
        assert dataclasses.asdict(serial.prune) == dataclasses.asdict(parallel.prune)
        s_stats, p_stats = serial.executor_stats, parallel.executor_stats
        assert s_stats.combos_evaluated == p_stats.combos_evaluated
        assert s_stats.combos_empty == p_stats.combos_empty
        assert s_stats.rows_aggregated == p_stats.rows_aggregated
        assert s_stats.subjoins == p_stats.subjoins
        assert s_stats.probe_sides == p_stats.probe_sides
        assert serial.cache_hits == parallel.cache_hits


class TestBuildSideSelection:
    def test_probe_side_is_largest_scan(self, env):
        catalog, txn = env
        stats = ExecutionStats()
        QueryExecutor(catalog).execute(
            header_first_query(), txn.latest_tid, stats=stats
        )
        # Regression: the legacy planner probed "h" (first in FROM), building
        # every hash table on the far larger item side.  The item scan is
        # larger in every subjoin here, so "i" must probe throughout.
        assert stats.probe_sides == ["i"] * stats.combos_evaluated

    def test_from_order_does_not_change_plan(self, env):
        catalog, txn = env
        s1, s2 = ExecutionStats(), ExecutionStats()
        executor = QueryExecutor(catalog)
        executor.execute(profit_query(), txn.latest_tid, stats=s1)
        executor.execute(header_first_query(), txn.latest_tid, stats=s2)
        assert s1.probe_sides == s2.probe_sides

    def test_results_unchanged_by_build_side(self, env):
        catalog, txn = env
        a = QueryExecutor(catalog).execute(profit_query(), txn.latest_tid)
        b = QueryExecutor(catalog).execute(header_first_query(), txn.latest_tid)
        assert dict(
            (row[0], row[1:]) for row in a.finalize()
        ) == dict((row[0], row[1:]) for row in b.finalize())


class TestParallelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(n_workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(memo="bogus")

    def test_should_parallelize_gating(self):
        config = ParallelConfig(n_workers=4, min_combos=4, min_rows=100)
        assert config.should_parallelize(4, 100)
        assert not config.should_parallelize(3, 100)  # too few combos
        assert not config.should_parallelize(4, 99)  # too few rows
        assert not ParallelConfig(n_workers=1).should_parallelize(100, 10**9)

    def test_auto_uses_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_WORKERS", "3")
        assert default_workers() == 3
        assert ParallelConfig.auto().n_workers == 3
        monkeypatch.setenv("REPRO_N_WORKERS", "junk")
        assert default_workers() >= 1

    def test_serial_fallback_used_below_thresholds(self, env):
        catalog, txn = env
        # min_rows far above the fixture's size: the pool must never start.
        config = ParallelConfig(n_workers=4, min_rows=10**9)
        executor = QueryExecutor(catalog, parallel=config)
        grouped = executor.execute(profit_query(), txn.latest_tid)
        assert executor._pool is None  # serial fallback: no pool created
        reference = QueryExecutor(catalog).execute(profit_query(), txn.latest_tid)
        assert grouped.finalize() == reference.finalize()


class TestPoolLifecycle:
    def test_close_is_idempotent_and_recoverable(self, env):
        catalog, txn = env
        executor = QueryExecutor(catalog, parallel=PARALLEL)
        executor.execute(profit_query(), txn.latest_tid)
        assert executor._pool is not None
        executor.close()
        executor.close()
        assert executor._pool is None
        # Executing again transparently recreates the pool.
        grouped = executor.execute(profit_query(), txn.latest_tid)
        assert grouped.group_count() == 3
        executor.close()

    def test_per_call_override(self, env):
        catalog, txn = env
        executor = QueryExecutor(catalog)  # serial by default
        grouped = executor.execute(
            profit_query(), txn.latest_tid, parallel=PARALLEL
        )
        try:
            reference = executor.execute(profit_query(), txn.latest_tid)
            assert grouped.finalize() == reference.finalize()
        finally:
            executor.close()

    def test_missing_partition_errors_in_parallel_mode(self, env):
        catalog, txn = env
        item = catalog.table("item")
        bad = [
            ComboSpec({"i": item.partition("main")}),  # "h" missing
            ComboSpec({"i": item.partition("delta")}),
        ]
        executor = QueryExecutor(catalog, parallel=PARALLEL)
        try:
            with pytest.raises(QueryError, match="misses partitions"):
                executor.execute(profit_query(), txn.latest_tid, combos=bad)
        finally:
            executor.close()
