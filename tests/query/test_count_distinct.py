"""Tests for COUNT(DISTINCT expr)."""

import pytest

from repro import Database, ExecutionStrategy, QueryError, parse_sql
from repro.errors import SqlSyntaxError
from repro.query import AggFunc, AggregateSpec, Col

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def make_db():
    db = Database()
    db.create_table(
        "orders",
        [("oid", "INT"), ("customer", "TEXT"), ("region", "TEXT"), ("amount", "FLOAT")],
        primary_key="oid",
    )
    rows = [
        (1, "alice", "eu", 10.0),
        (2, "alice", "eu", 20.0),
        (3, "bob", "eu", 30.0),
        (4, "carol", "us", 40.0),
        (5, None, "us", 50.0),
    ]
    for oid, customer, region, amount in rows:
        db.insert(
            "orders",
            {"oid": oid, "customer": customer, "region": region, "amount": amount},
        )
    db.merge()
    return db


class TestParsing:
    def test_count_distinct_parses(self):
        query = parse_sql("SELECT COUNT(DISTINCT customer) AS c FROM orders")
        spec = query.aggregates[0]
        assert spec.distinct
        assert spec.canonical() == "COUNT(DISTINCT customer)"
        assert not spec.self_maintainable

    def test_distinct_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT SUM(DISTINCT x) FROM t")

    def test_spec_validation(self):
        with pytest.raises(QueryError):
            AggregateSpec(AggFunc.SUM, Col("x"), "s", distinct=True)
        with pytest.raises(QueryError):
            AggregateSpec(AggFunc.COUNT, None, "c", distinct=True)


class TestExecution:
    def test_counts_distinct_non_null(self):
        db = make_db()
        result = db.query(
            "SELECT region, COUNT(DISTINCT customer) AS c, COUNT(*) AS n "
            "FROM orders GROUP BY region"
        )
        assert result.to_dicts() == [
            {"region": "eu", "c": 2, "n": 3},
            {"region": "us", "c": 1, "n": 2},  # the NULL customer not counted
        ]

    def test_spans_main_and_delta(self):
        db = make_db()
        db.insert("orders", {"oid": 6, "customer": "alice", "region": "eu", "amount": 1.0})
        db.insert("orders", {"oid": 7, "customer": "dave", "region": "eu", "amount": 1.0})
        result = db.query(
            "SELECT region, COUNT(DISTINCT customer) AS c FROM orders GROUP BY region"
        )
        rows = dict(result.rows)
        assert rows["eu"] == 3  # alice counted once across partitions

    def test_falls_back_uncached(self):
        db = make_db()
        db.query(
            "SELECT region, COUNT(DISTINCT customer) AS c FROM orders GROUP BY region",
            strategy=FULL,
        )
        assert db.last_report.fallback_uncached
        assert db.cache.entry_count() == 0

    def test_mixed_with_other_aggregates(self):
        db = make_db()
        result = db.query(
            "SELECT COUNT(DISTINCT region) AS r, SUM(amount) AS s, "
            "MIN(amount) AS lo FROM orders"
        )
        assert result.rows == [(2, 150.0, 10.0)]

    def test_after_update_and_delete(self):
        db = make_db()
        db.update("orders", 3, {"customer": "alice"})  # bob -> alice
        db.delete("orders", 4)  # carol gone
        result = db.query(
            "SELECT region, COUNT(DISTINCT customer) AS c FROM orders GROUP BY region"
        )
        rows = dict(result.rows)
        assert rows["eu"] == 1
        assert rows["us"] == 0  # only the NULL-customer order remains
