"""Property-based tests for the SQL parser: generated queries must parse
into the expected structure, and parsing must be deterministic and stable
under whitespace/case noise."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parse_sql
from repro.errors import SqlSyntaxError

identifier = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AS",
        "AND", "OR", "NOT", "IN", "IS", "NULL", "BETWEEN", "ASC", "DESC",
        "JOIN", "INNER", "ON", "HAVING", "SUM", "COUNT", "AVG", "MIN", "MAX",
        "DISTINCT",
    }
)


@st.composite
def generated_query(draw):
    """Build (sql text, expectations) pairs from structured choices."""
    table = draw(identifier)
    alias = draw(identifier)
    group_col = draw(identifier)
    agg_col = draw(identifier.filter(lambda c: c != group_col))
    func = draw(st.sampled_from(["SUM", "COUNT", "AVG", "MIN", "MAX"]))
    n_filters = draw(st.integers(0, 3))
    filters = []
    for i in range(n_filters):
        col = draw(identifier)
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        value = draw(
            st.one_of(
                st.integers(-1000, 1000),
                st.floats(-100, 100, allow_nan=False, allow_infinity=False),
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127
                    ),
                    max_size=6,
                ),
            )
        )
        literal = f"'{value}'" if isinstance(value, str) else repr(value)
        filters.append(f"{alias}.{col} {op} {literal}")
    where = f" WHERE {' AND '.join(filters)}" if filters else ""
    limit = draw(st.one_of(st.none(), st.integers(1, 50)))
    limit_clause = f" LIMIT {limit}" if limit is not None else ""
    sql = (
        f"SELECT {alias}.{group_col}, {func}({alias}.{agg_col}) AS agg "
        f"FROM {table} AS {alias}{where} "
        f"GROUP BY {alias}.{group_col}{limit_clause}"
    )
    return sql, {
        "table": table,
        "alias": alias,
        "group_col": group_col,
        "func": func,
        "n_filters": n_filters,
        "limit": limit,
    }


@settings(max_examples=120, deadline=None)
@given(generated_query())
def test_property_generated_queries_parse_correctly(case):
    sql, expected = case
    query = parse_sql(sql)
    assert query.tables[0].table == expected["table"]
    assert query.tables[0].alias == expected["alias"]
    assert [c.name for c in query.group_by] == [expected["group_col"]]
    assert query.aggregates[0].func.value == expected["func"]
    assert len(query.filters) == expected["n_filters"]
    assert query.limit == expected["limit"]


@settings(max_examples=60, deadline=None)
@given(generated_query(), st.integers(1, 8))
def test_property_whitespace_and_case_insensitive_keywords(case, pad):
    sql, _ = case
    noisy = sql.replace(" ", " " * pad)
    noisy = noisy.replace("SELECT", "select").replace("GROUP BY", "group   by")
    original = parse_sql(sql)
    reparsed = parse_sql(noisy)
    assert original.canonical_key() == reparsed.canonical_key()


@settings(max_examples=60, deadline=None)
@given(generated_query())
def test_property_canonical_key_is_deterministic(case):
    sql, _ = case
    assert parse_sql(sql).canonical_key() == parse_sql(sql).canonical_key()


@settings(max_examples=60, deadline=None)
@given(st.text(max_size=40))
def test_property_arbitrary_text_never_crashes_unexpectedly(text):
    """The parser either returns a query or raises SqlSyntaxError/QueryError —
    never an unrelated exception."""
    from repro.errors import QueryError

    try:
        parse_sql(text)
    except (SqlSyntaxError, QueryError):
        pass
