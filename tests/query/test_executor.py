"""Integration-style tests for the partition-aware executor."""

import pytest

from repro.errors import QueryError
from repro.query import (
    AggFunc,
    AggregateQuery,
    AggregateSpec,
    Cmp,
    Col,
    ComboSpec,
    ExecutionStats,
    JoinEdge,
    Lit,
    OrderItem,
    QueryExecutor,
    QueryResult,
    TableRef,
    all_partition_combos,
    main_only_combos,
    parse_sql,
)
from repro.storage import Catalog, ColumnDef, Schema, SqlType, merge_table
from repro.txn import TransactionManager


@pytest.fixture
def env():
    """Header/Item/Category catalog with data split across main and delta."""
    catalog = Catalog()
    txn = TransactionManager()
    header = catalog.create_table(
        "header",
        Schema(
            [
                ColumnDef("hid", SqlType.INT, nullable=False),
                ColumnDef("year", SqlType.INT),
            ],
            primary_key="hid",
        ),
    )
    item = catalog.create_table(
        "item",
        Schema(
            [
                ColumnDef("iid", SqlType.INT, nullable=False),
                ColumnDef("hid", SqlType.INT),
                ColumnDef("cat", SqlType.TEXT),
                ColumnDef("price", SqlType.FLOAT),
            ],
            primary_key="iid",
        ),
    )
    # Main contents: 2 headers, 4 items.
    for hid, year in [(1, 2013), (2, 2013)]:
        header.insert({"hid": hid, "year": year}, txn.begin().tid)
    rows = [
        (1, 1, "A", 10.0),
        (2, 1, "B", 20.0),
        (3, 2, "A", 5.0),
        (4, 2, "B", 1.0),
    ]
    for iid, hid, cat, price in rows:
        item.insert({"iid": iid, "hid": hid, "cat": cat, "price": price}, txn.begin().tid)
    merge_table(header, txn.latest_tid)
    merge_table(item, txn.latest_tid)
    # Delta contents: 1 header, 2 items (one joins a main header).
    header.insert({"hid": 3, "year": 2014}, txn.begin().tid)
    item.insert({"iid": 5, "hid": 3, "cat": "A", "price": 100.0}, txn.begin().tid)
    item.insert({"iid": 6, "hid": 1, "cat": "A", "price": 7.0}, txn.begin().tid)
    return catalog, txn


def profit_query(year=None):
    filters = []
    if year is not None:
        filters.append(Cmp("=", Col("year", "h"), Lit(year)))
    return AggregateQuery(
        tables=[TableRef("header", "h"), TableRef("item", "i")],
        aggregates=[
            AggregateSpec(AggFunc.SUM, Col("price", "i"), "profit"),
            AggregateSpec(AggFunc.COUNT, None, "n"),
        ],
        group_by=[Col("cat", "i")],
        join_edges=[JoinEdge("h", "hid", "i", "hid")],
        filters=filters,
    )


class TestSingleTable:
    def test_scan_across_main_and_delta(self, env):
        catalog, txn = env
        query = parse_sql("SELECT cat, COUNT(*) AS n FROM item GROUP BY cat")
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        rows = dict(grouped.finalize())
        assert rows == {"A": 4, "B": 2}

    def test_filters(self, env):
        catalog, txn = env
        query = parse_sql(
            "SELECT cat, SUM(price) AS s FROM item WHERE price > 5 GROUP BY cat"
        )
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        rows = dict(grouped.finalize())
        assert rows == {"A": 117.0, "B": 20.0}

    def test_no_group_by(self, env):
        catalog, txn = env
        query = parse_sql("SELECT COUNT(*) AS n FROM item")
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        assert grouped.finalize() == [(6,)]


class TestJoin:
    def test_two_table_join_all_partitions(self, env):
        catalog, txn = env
        grouped = QueryExecutor(catalog).execute(profit_query(), txn.latest_tid)
        rows = {row[0]: (row[1], row[2]) for row in grouped.finalize()}
        # A: items 1 (10) + 3 (5) + 5 (100) + 6 (7); B: items 2 (20) + 4 (1).
        assert rows["A"] == (122.0, 4)
        assert rows["B"] == (21.0, 2)

    def test_join_with_filter(self, env):
        catalog, txn = env
        grouped = QueryExecutor(catalog).execute(profit_query(2013), txn.latest_tid)
        rows = {row[0]: row[1] for row in grouped.finalize()}
        assert rows == {"A": 22.0, "B": 21.0}

    def test_subjoin_combo_counts(self, env):
        catalog, txn = env
        stats = ExecutionStats()
        QueryExecutor(catalog).execute(profit_query(), txn.latest_tid, stats=stats)
        # 2 tables x {main, delta} = 4 subjoins (Section 2.3.1).
        assert stats.combos_evaluated == 4

    def test_explicit_combo_subset(self, env):
        catalog, txn = env
        header = catalog.table("header")
        item = catalog.table("item")
        combo = ComboSpec(
            {"h": header.partition("main"), "i": item.partition("main")}
        )
        grouped = QueryExecutor(catalog).execute(
            profit_query(), txn.latest_tid, combos=[combo]
        )
        rows = {row[0]: row[1] for row in grouped.finalize()}
        assert rows == {"A": 15.0, "B": 21.0}

    def test_delta_main_cross_combo(self, env):
        catalog, txn = env
        header = catalog.table("header")
        item = catalog.table("item")
        combo = ComboSpec(
            {"h": header.partition("main"), "i": item.partition("delta")}
        )
        grouped = QueryExecutor(catalog).execute(
            profit_query(), txn.latest_tid, combos=[combo]
        )
        # Only item 6 (delta) joins main header 1.
        assert grouped.finalize() == [("A", 7.0, 1)]

    def test_sql_three_way_join(self, env):
        catalog, txn = env
        catalog.create_table(
            "cat_dim",
            Schema(
                [
                    ColumnDef("cat", SqlType.TEXT, nullable=False),
                    ColumnDef("label", SqlType.TEXT),
                ],
                primary_key="cat",
            ),
        )
        dim = catalog.table("cat_dim")
        dim.insert({"cat": "A", "label": "Alpha"}, txn.begin().tid)
        dim.insert({"cat": "B", "label": "Beta"}, txn.begin().tid)
        query = parse_sql(
            "SELECT d.label, SUM(i.price) AS s "
            "FROM header h, item i, cat_dim d "
            "WHERE h.hid = i.hid AND i.cat = d.cat GROUP BY d.label"
        )
        stats = ExecutionStats()
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid, stats=stats)
        rows = dict((r[0], r[1]) for r in grouped.finalize())
        assert rows == {"Alpha": 122.0, "Beta": 21.0}
        assert stats.combos_evaluated == 8  # 2^3 subjoins

    def test_visibility_snapshot(self, env):
        catalog, txn = env
        old_snapshot = 6  # before any delta inserts (6 inserts built the mains)
        grouped = QueryExecutor(catalog).execute(profit_query(), old_snapshot)
        rows = {row[0]: row[1] for row in grouped.finalize()}
        assert rows == {"A": 15.0, "B": 21.0}


class TestBinding:
    def test_unknown_column(self, env):
        catalog, txn = env
        query = parse_sql("SELECT SUM(wat) FROM item")
        with pytest.raises(QueryError):
            QueryExecutor(catalog).execute(query, txn.latest_tid)

    def test_ambiguous_column(self, env):
        catalog, txn = env
        query = parse_sql(
            "SELECT SUM(hid) FROM header h, item i WHERE h.hid = i.hid"
        )
        with pytest.raises(QueryError):
            QueryExecutor(catalog).execute(query, txn.latest_tid)

    def test_unqualified_binding(self, env):
        catalog, txn = env
        query = parse_sql(
            "SELECT cat, SUM(price) AS s FROM header h, item i "
            "WHERE h.hid = i.hid AND year = 2013 GROUP BY cat"
        )
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        assert dict((r[0], r[1]) for r in grouped.finalize()) == {"A": 22.0, "B": 21.0}

    def test_bad_join_edge_column(self, env):
        catalog, txn = env
        query = AggregateQuery(
            tables=[TableRef("header", "h"), TableRef("item", "i")],
            aggregates=[AggregateSpec(AggFunc.COUNT, None, "n")],
            join_edges=[JoinEdge("h", "nope", "i", "hid")],
        )
        with pytest.raises(QueryError):
            QueryExecutor(catalog).execute(query, txn.latest_tid)

    def test_order_by_unknown_output_column(self, env):
        catalog, _ = env
        query = parse_sql(
            "SELECT cat, SUM(price) AS s FROM item GROUP BY cat ORDER BY nope"
        )
        with pytest.raises(QueryError, match="ORDER BY.*nope"):
            QueryExecutor(catalog).bind(query)

    def test_order_by_ambiguous_output_column(self, env):
        catalog, _ = env
        # Group label renamed to collide with the aggregate output: "s" now
        # names two result columns, so ORDER BY s cannot pick one.
        query = AggregateQuery(
            tables=[TableRef("item", "i")],
            aggregates=[AggregateSpec(AggFunc.SUM, Col("price", "i"), "s")],
            group_by=[Col("cat", "i")],
            group_labels=["s"],
            order_by=[OrderItem("s")],
        )
        with pytest.raises(QueryError, match="ambiguous"):
            QueryExecutor(catalog).bind(query)

    def test_having_unknown_output_column(self, env):
        catalog, _ = env
        query = parse_sql(
            "SELECT cat, SUM(price) AS s FROM item GROUP BY cat HAVING zz > 1"
        )
        with pytest.raises(QueryError, match="HAVING.*zz"):
            QueryExecutor(catalog).bind(query)

    def test_having_ambiguous_output_column(self, env):
        catalog, _ = env
        query = AggregateQuery(
            tables=[TableRef("item", "i")],
            aggregates=[AggregateSpec(AggFunc.SUM, Col("price", "i"), "s")],
            group_by=[Col("cat", "i")],
            group_labels=["s"],
            having=Cmp(">", Col("s"), Lit(0)),
        )
        with pytest.raises(QueryError, match="ambiguous"):
            QueryExecutor(catalog).bind(query)

    def test_having_qualified_reference_rejected(self, env):
        catalog, _ = env
        # HAVING addresses output columns, which carry no table alias.
        query = AggregateQuery(
            tables=[TableRef("item", "i")],
            aggregates=[AggregateSpec(AggFunc.SUM, Col("price", "i"), "s")],
            group_by=[Col("cat", "i")],
            having=Cmp(">", Col("s", "i"), Lit(0)),
        )
        with pytest.raises(QueryError, match="HAVING"):
            QueryExecutor(catalog).bind(query)

    def test_valid_order_by_and_having_bind(self, env):
        catalog, txn = env
        query = parse_sql(
            "SELECT cat, SUM(price) AS s FROM item GROUP BY cat "
            "HAVING s > 5 ORDER BY s DESC"
        )
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        result = QueryResult.from_grouped(query, grouped)
        assert [row[0] for row in result.rows] == ["A", "B"]


class TestComboHelpers:
    def test_all_partition_combos(self, env):
        catalog, _ = env
        combos = all_partition_combos(profit_query(), catalog)
        assert len(combos) == 4

    def test_main_only_combos(self, env):
        catalog, _ = env
        combos = main_only_combos(profit_query(), catalog)
        assert len(combos) == 1
        assert all(p.kind == "main" for p in combos[0].values())


class TestQueryModelValidation:
    def test_disconnected_join_graph(self):
        with pytest.raises(QueryError):
            AggregateQuery(
                tables=[TableRef("a", "a"), TableRef("b", "b")],
                aggregates=[AggregateSpec(AggFunc.COUNT, None, "n")],
            )

    def test_duplicate_aliases(self):
        with pytest.raises(QueryError):
            AggregateQuery(
                tables=[TableRef("a", "x"), TableRef("b", "x")],
                aggregates=[AggregateSpec(AggFunc.COUNT, None, "n")],
            )

    def test_duplicate_outputs(self):
        with pytest.raises(QueryError):
            AggregateQuery(
                tables=[TableRef("a", "a")],
                aggregates=[
                    AggregateSpec(AggFunc.COUNT, None, "n"),
                    AggregateSpec(AggFunc.SUM, Col("x"), "n"),
                ],
            )

    def test_canonical_key_order_independent(self):
        q1 = profit_query(2013)
        q2 = AggregateQuery(
            tables=[TableRef("item", "i"), TableRef("header", "h")],
            aggregates=q1.aggregates,
            group_by=q1.group_by,
            join_edges=[JoinEdge("i", "hid", "h", "hid")],
            filters=q1.filters,
        )
        assert q1.canonical_key() == q2.canonical_key()


class TestResult:
    def test_from_grouped_with_order(self, env):
        catalog, txn = env
        query = parse_sql(
            "SELECT cat, SUM(price) AS s FROM item GROUP BY cat ORDER BY s DESC"
        )
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        result = QueryResult.from_grouped(query, grouped)
        assert result.columns == ["cat", "s"]
        assert result.rows[0][0] == "A"  # highest sum first

    def test_default_order_deterministic(self, env):
        catalog, txn = env
        query = parse_sql("SELECT cat, COUNT(*) AS n FROM item GROUP BY cat")
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        result = QueryResult.from_grouped(query, grouped)
        assert result.column_values("cat") == ["A", "B"]

    def test_limit(self, env):
        catalog, txn = env
        query = parse_sql("SELECT cat, COUNT(*) AS n FROM item GROUP BY cat LIMIT 1")
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        result = QueryResult.from_grouped(query, grouped)
        assert len(result) == 1

    def test_to_text_and_dicts(self, env):
        catalog, txn = env
        query = parse_sql("SELECT cat, COUNT(*) AS n FROM item GROUP BY cat")
        grouped = QueryExecutor(catalog).execute(query, txn.latest_tid)
        result = QueryResult.from_grouped(query, grouped)
        text = result.to_text()
        assert "cat" in text and "A" in text
        assert result.to_dicts()[0]["cat"] == "A"
