"""Randomized vectorized-vs-rowloop kernel parity.

The code-space join/aggregation kernels must be *bit-identical* to the
row-at-a-time reference: same result rows, same row order, same Python value
types.  This suite drives both kernels over seeded random databases covering
NULL join keys, empty deltas, duplicate build keys, main/delta dictionary
skew, and the serial / parallel / delta-memo execution modes.

Float prices are quantized to multiples of 0.25 so float64 sums are exact
and order-independent — without that, comparing different summation orders
bitwise would be testing IEEE rounding, not the kernels.
"""

import random

import numpy as np
import pytest

from repro import Database, ExecutionStrategy
from repro.core.strategies import CacheConfig
from repro.query import (
    AggFunc,
    AggregateQuery,
    AggregateSpec,
    Col,
    JoinEdge,
    ParallelConfig,
    QueryExecutor,
    TableRef,
)
from repro.query import operators
from repro.query.operators import (
    KERNEL_ROWLOOP,
    KERNEL_VECTORIZED,
    kernel_override,
)
from repro.query.parallel import MEMO_PRIVATE, MEMO_SHARED
from repro.storage import Catalog, ColumnDef, Schema, SqlType, merge_table
from repro.txn import TransactionManager

TAGS = ["alpha", "beta", "gamma", "delta", "epsilon"]


@pytest.fixture(autouse=True, params=[1, None], ids=["vec-agg", "default-threshold"])
def vectorize_threshold(request, monkeypatch):
    """Run every parity case twice: once with the vectorized *aggregation*
    forced on (threshold 1 — the seeded combos are smaller than the real
    48-row cutoff and would otherwise only exercise the join kernels), and
    once with the stock threshold so the fallback wiring stays covered."""
    if request.param is not None:
        monkeypatch.setattr(operators, "_VECTORIZE_THRESHOLD", request.param)


def build_catalog(seed: int, empty_delta: bool = False):
    """A seeded header/item catalog with deliberate kernel hazards.

    * some item rows carry a NULL ``hid`` (NULL join keys);
    * several items share one ``hid`` (duplicate build-side keys);
    * a merge happens mid-load, so mains carry sorted-rank dictionaries
      while deltas carry append-order ones (dictionary skew);
    * ``empty_delta=True`` stops loading at the merge (empty delta combos).
    """
    rng = random.Random(seed)
    catalog = Catalog()
    txn = TransactionManager()
    header = catalog.create_table(
        "header",
        Schema(
            [
                ColumnDef("hid", SqlType.INT, nullable=False),
                ColumnDef("year", SqlType.INT),
                ColumnDef("tag", SqlType.TEXT),
            ],
            primary_key="hid",
        ),
    )
    item = catalog.create_table(
        "item",
        Schema(
            [
                ColumnDef("iid", SqlType.INT, nullable=False),
                ColumnDef("hid", SqlType.INT),
                ColumnDef("tag", SqlType.TEXT),
                ColumnDef("price", SqlType.FLOAT),
                ColumnDef("qty", SqlType.INT),
            ],
            primary_key="iid",
        ),
    )
    iid = 0

    def load(n_headers: int, hid_base: int) -> None:
        nonlocal iid
        for hid in range(hid_base, hid_base + n_headers):
            header.insert(
                {
                    "hid": hid,
                    "year": 2013 + hid % 3,
                    "tag": rng.choice(TAGS),
                },
                txn.begin().tid,
            )
            for _ in range(rng.randint(0, 5)):
                iid += 1
                item.insert(
                    {
                        "iid": iid,
                        # ~1/6 NULL keys, ~1/6 dangling keys that match no
                        # header, the rest joining (often many per header).
                        "hid": rng.choice([hid, hid, hid, hid_base, None, 10**6 + hid]),
                        "tag": rng.choice(TAGS),
                        "price": rng.randrange(0, 400) / 4.0,  # 0.25 quanta
                        "qty": rng.randint(0, 9) if rng.random() < 0.9 else None,
                    },
                    txn.begin().tid,
                )

    load(rng.randint(3, 8), hid_base=0)
    merge_table(header, txn.latest_tid)
    merge_table(item, txn.latest_tid)
    if not empty_delta:
        load(rng.randint(2, 6), hid_base=100)
    return catalog, txn


def parity_query() -> AggregateQuery:
    return AggregateQuery(
        tables=[TableRef("item", "i"), TableRef("header", "h")],
        aggregates=[
            AggregateSpec(AggFunc.SUM, Col("price", "i"), "revenue"),
            AggregateSpec(AggFunc.SUM, Col("qty", "i"), "units"),
            AggregateSpec(AggFunc.AVG, Col("price", "i"), "avg_price"),
            AggregateSpec(AggFunc.COUNT, Col("qty", "i"), "n_qty"),
            AggregateSpec(AggFunc.COUNT, None, "n"),
        ],
        group_by=[Col("tag", "i"), Col("year", "h")],
        join_edges=[JoinEdge("h", "hid", "i", "hid")],
    )


def assert_bit_identical(a, b):
    """Same rows, same order, same value *types* (int stays int, etc.)."""
    assert a == b
    for row_a, row_b in zip(a, b):
        for va, vb in zip(row_a, row_b):
            assert type(va) is type(vb), (va, vb)


MODES = [
    ("serial", None),
    ("parallel-shared", ParallelConfig(n_workers=4, min_combos=2, min_rows=0, memo=MEMO_SHARED)),
    ("parallel-private", ParallelConfig(n_workers=4, min_combos=2, min_rows=0, memo=MEMO_PRIVATE)),
]


@pytest.mark.parametrize("mode,parallel", MODES, ids=[m for m, _ in MODES])
@pytest.mark.parametrize("empty_delta", [False, True], ids=["delta", "empty-delta"])
@pytest.mark.parametrize("seed", range(5))
def test_join_and_aggregation_parity(seed, empty_delta, mode, parallel):
    catalog, txn = build_catalog(seed, empty_delta=empty_delta)
    results = {}
    for kernel in (KERNEL_VECTORIZED, KERNEL_ROWLOOP):
        executor = QueryExecutor(catalog, parallel=parallel)
        try:
            with kernel_override(kernel):
                grouped = executor.execute(parity_query(), txn.latest_tid)
        finally:
            executor.close()
        results[kernel] = grouped.finalize()
    assert_bit_identical(results[KERNEL_VECTORIZED], results[KERNEL_ROWLOOP])
    assert results[KERNEL_VECTORIZED]  # non-degenerate: something joined


@pytest.mark.parametrize("seed", range(3))
def test_join_index_level_parity(seed):
    """Below aggregation: the joined index arrays themselves must match,
    combo by combo, including empty intersections."""
    from repro.query.executor import choose_join_order  # noqa: F401 (import check)
    from repro.query.operators import build_hash_table, probe_hash_join
    from repro.query.operators import JoinedProvider

    catalog, txn = build_catalog(seed)
    header = catalog.table("header")
    item = catalog.table("item")
    for hpart in ("main", "delta"):
        for ipart in ("main", "delta"):
            build_part = item.partition(ipart)
            probe_part = header.partition(hpart)
            build_rows = np.arange(build_part.row_count, dtype=np.int64)
            probe_rows = np.arange(probe_part.row_count, dtype=np.int64)
            current = JoinedProvider({"h": probe_part}, {"h": probe_rows})
            outputs = {}
            for kernel in (KERNEL_VECTORIZED, KERNEL_ROWLOOP):
                with kernel_override(kernel):
                    table = build_hash_table(build_part, build_rows, ["hid"])
                    if not table:
                        outputs[kernel] = None
                        continue
                    joined = probe_hash_join(
                        current, [("h", "hid")], "i", build_part, table
                    )
                outputs[kernel] = {
                    alias: idx.tolist() for alias, idx in joined.indices.items()
                }
            assert outputs[KERNEL_VECTORIZED] == outputs[KERNEL_ROWLOOP]


DB_SQL = (
    "SELECT i.tag AS tag, SUM(i.price) AS revenue, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.tag"
)


def _load_db(db: Database, seed: int, hid_base: int, merge: bool) -> None:
    rng = random.Random(seed)
    iid = hid_base * 100 + 1
    for hid in range(hid_base, hid_base + 5):
        items = []
        for _ in range(rng.randint(1, 4)):
            items.append(
                {
                    "iid": iid,
                    "hid": hid,
                    "tag": rng.choice(TAGS),
                    "price": rng.randrange(0, 400) / 4.0,
                    "qty": rng.randint(1, 5),
                }
            )
            iid += 1
        db.insert_business_object(
            "header", {"hid": hid, "year": 2013 + hid % 2, "tag": rng.choice(TAGS)}, "item", items
        )
    if merge:
        db.merge()


@pytest.mark.parametrize("delta_memo", [True, False], ids=["memo", "no-memo"])
def test_database_cached_strategies_parity(delta_memo):
    """End to end through the aggregate cache: cached compensation scans
    (including the incremental delta memo's RowRange scans) must agree
    between kernels and with the uncached oracle."""
    results = {}
    for kernel in (KERNEL_VECTORIZED, KERNEL_ROWLOOP):
        db = Database(cache_config=CacheConfig(delta_memo=delta_memo))
        db.create_table(
            "header",
            [("hid", "INT"), ("year", "INT"), ("tag", "TEXT")],
            primary_key="hid",
        )
        db.create_table(
            "item",
            [
                ("iid", "INT"),
                ("hid", "INT"),
                ("tag", "TEXT"),
                ("price", "FLOAT"),
                ("qty", "INT"),
            ],
            primary_key="iid",
        )
        db.add_matching_dependency("header", "hid", "item", "hid")
        with kernel_override(kernel):
            _load_db(db, seed=7, hid_base=0, merge=True)
            # Prime the cache on the mains, then grow the delta in two
            # steps so the second cached hit exercises memo advancement.
            first = db.query(DB_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
            _load_db(db, seed=8, hid_base=50, merge=False)
            second = db.query(DB_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
            _load_db(db, seed=9, hid_base=90, merge=False)
            cached = db.query(DB_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
            oracle = db.query(DB_SQL, strategy=ExecutionStrategy.UNCACHED)
        assert cached.rows == oracle.rows
        results[kernel] = (first.rows, second.rows, cached.rows)
    for got, want in zip(results[KERNEL_VECTORIZED], results[KERNEL_ROWLOOP]):
        assert_bit_identical(got, want)
