"""Behavioral tests for DATE handling and type interplay across the stack."""

import pytest

from repro import Database, ExecutionStrategy

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def make_db():
    db = Database()
    db.create_table(
        "events",
        [("eid", "INT"), ("day", "DATE"), ("kind", "TEXT"), ("value", "FLOAT")],
        primary_key="eid",
    )
    rows = [
        (1, "2013-01-15", "a", 1.0),
        (2, "2013-06-30", "a", 2.0),
        (3, "2013-12-31", "b", 3.0),
        (4, "2014-01-01", "b", 4.0),
        (5, None, "a", 5.0),
    ]
    for eid, day, kind, value in rows:
        db.insert("events", {"eid": eid, "day": day, "kind": kind, "value": value})
    db.merge()
    return db


class TestDateFilters:
    def test_date_range_filter(self):
        db = make_db()
        result = db.query(
            "SELECT kind, COUNT(*) AS n FROM events "
            "WHERE day >= '2013-06-01' AND day < '2014-01-01' GROUP BY kind"
        )
        assert dict(result.rows) == {"a": 1, "b": 1}

    def test_date_between(self):
        db = make_db()
        result = db.query(
            "SELECT COUNT(*) AS n FROM events "
            "WHERE day BETWEEN '2013-01-01' AND '2013-12-31'"
        )
        assert result.rows == [(3,)]

    def test_null_dates_excluded_from_comparisons(self):
        db = make_db()
        low = db.query("SELECT COUNT(*) AS n FROM events WHERE day < '2099-01-01'")
        assert low.rows == [(4,)]  # the NULL-day row never matches
        nulls = db.query("SELECT COUNT(*) AS n FROM events WHERE day IS NULL")
        assert nulls.rows == [(1,)]

    def test_date_group_by(self):
        db = make_db()
        result = db.query(
            "SELECT day, SUM(value) AS s FROM events WHERE day IS NOT NULL GROUP BY day"
        )
        assert result.column_values("day") == sorted(result.column_values("day"))
        assert len(result) == 4

    def test_min_max_over_dates(self):
        db = make_db()
        result = db.query("SELECT MIN(day) AS lo, MAX(day) AS hi FROM events")
        assert result.rows == [("2013-01-15", "2014-01-01")]

    def test_date_filter_with_cache(self):
        db = make_db()
        sql = (
            "SELECT kind, SUM(value) AS s FROM events "
            "WHERE day >= '2013-06-01' GROUP BY kind"
        )
        db.query(sql, strategy=FULL)
        db.insert("events", {"eid": 9, "day": "2014-06-01", "kind": "a", "value": 9.0})
        assert db.query(sql, strategy=FULL) == db.query(sql, strategy=UNCACHED)


class TestTypeCoercionAcrossStack:
    def test_int_literal_filters_float_column(self):
        db = make_db()
        result = db.query("SELECT COUNT(*) AS n FROM events WHERE value > 3")
        assert result.rows == [(2,)]

    def test_sum_of_int_column_through_cache(self):
        db = Database()
        db.create_table("t", [("k", "INT"), ("v", "INT")], primary_key="k")
        for k in range(5):
            db.insert("t", {"k": k, "v": k})
        db.merge()
        sql = "SELECT SUM(v) AS s, AVG(v) AS a FROM t"
        db.query(sql, strategy=FULL)
        db.insert("t", {"k": 10, "v": 10})
        result = db.query(sql, strategy=FULL)
        assert result.rows[0][0] == pytest.approx(20.0)
        assert result.rows[0][1] == pytest.approx(20.0 / 6)

    def test_text_group_keys_with_quotes(self):
        db = Database()
        db.create_table("t", [("k", "INT"), ("name", "TEXT")], primary_key="k")
        db.insert("t", {"k": 1, "name": "O'Brien"})
        db.insert("t", {"k": 2, "name": "O'Brien"})
        result = db.query(
            "SELECT name, COUNT(*) AS n FROM t WHERE name = 'O''Brien' GROUP BY name"
        )
        assert result.rows == [("O'Brien", 2)]

    def test_arithmetic_in_aggregate_argument(self):
        db = make_db()
        result = db.query(
            "SELECT kind, SUM(value * 2 + 1) AS s FROM events GROUP BY kind"
        )
        rows = dict(result.rows)
        assert rows["a"] == pytest.approx((1.0 + 2.0 + 5.0) * 2 + 3)
        assert rows["b"] == pytest.approx((3.0 + 4.0) * 2 + 2)
