"""Tests for code-space filter evaluation (the compressed-scan fast path)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.query import Arith, Cmp, Col, Lit
from repro.query.fastpath import fast_filter_mask
from repro.query.operators import PartitionProvider, scan_partition
from repro.storage import ColumnDef, Partition, Schema, SqlType


def make_delta(values):
    schema = Schema([ColumnDef("x", SqlType.INT), ColumnDef("y", SqlType.TEXT)])
    part = Partition("delta", "delta", schema)
    for i, v in enumerate(values):
        part.append_row(schema.validate_row({"x": v, "y": str(i)}), cts=1)
    return part

def make_main(values):
    schema = Schema([ColumnDef("x", SqlType.INT), ColumnDef("y", SqlType.TEXT)])
    rows = [{"x": v, "y": str(i)} for i, v in enumerate(values)]
    return Partition.build_main("main", schema, rows, [1] * len(rows), [0] * len(rows))


VALUES = [5, None, 3, 5, 9, 1, None, 7]


class TestShapes:
    def test_applicable_shapes(self):
        part = make_delta(VALUES)
        assert fast_filter_mask(Cmp("=", Col("x"), Lit(5)), part) is not None
        assert fast_filter_mask(Cmp("<", Lit(5), Col("x")), part) is not None

    def test_inapplicable_shapes(self):
        part = make_delta(VALUES)
        assert fast_filter_mask(Cmp("=", Col("x"), Col("y")), part) is None
        assert fast_filter_mask(Cmp("=", Arith("+", Col("x"), Lit(1)), Lit(5)), part) is None
        assert fast_filter_mask(Lit(True), part) is None
        assert fast_filter_mask(Cmp("=", Col("x"), Lit(None)), part) is None

    def test_alias_mismatch_rejected(self):
        part = make_delta(VALUES)
        expr = Cmp("=", Col("x", "other"), Lit(5))
        assert fast_filter_mask(expr, part, alias="mine") is None
        assert fast_filter_mask(expr, part, alias="other") is not None

    def test_unknown_column(self):
        part = make_delta(VALUES)
        assert fast_filter_mask(Cmp("=", Col("zzz"), Lit(5)), part) is None

    def test_incomparable_literal_falls_back(self):
        part = make_delta(VALUES)
        assert fast_filter_mask(Cmp("<", Col("x"), Lit("abc")), part) is None


@pytest.mark.parametrize("factory", [make_delta, make_main], ids=["delta", "main"])
class TestSemantics:
    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_matches_generic_evaluation(self, factory, op):
        part = factory(VALUES)
        expr = Cmp(op, Col("x"), Lit(5))
        fast = fast_filter_mask(expr, part)
        rows = np.arange(part.row_count)
        generic = expr.evaluate(PartitionProvider(None, part, rows)).astype(bool)
        assert fast.tolist() == generic.tolist()

    def test_absent_equality_all_false(self, factory):
        part = factory(VALUES)
        assert not fast_filter_mask(Cmp("=", Col("x"), Lit(12345)), part).any()

    def test_absent_inequality_matches_nonnull(self, factory):
        part = factory(VALUES)
        mask = fast_filter_mask(Cmp("!=", Col("x"), Lit(12345)), part)
        expected = [v is not None for v in VALUES]
        assert mask.tolist() == expected

    def test_empty_partition(self, factory):
        part = factory([])
        assert fast_filter_mask(Cmp("<", Col("x"), Lit(3)), part).tolist() == []


class TestScanIntegration:
    def test_scan_uses_fast_and_slow_filters_together(self):
        part = make_delta(VALUES)
        fast_expr = Cmp(">", Col("x"), Lit(2))
        slow_expr = Cmp("!=", Arith("+", Col("x"), Lit(0)), Lit(9))
        rows = scan_partition(None, part, snapshot=1, filters=[fast_expr, slow_expr])
        kept = [VALUES[i] for i in rows]
        assert kept == [5, 3, 5, 7]

    def test_scan_respects_visibility(self):
        part = make_delta(VALUES)
        part.invalidate(0, 2)
        rows = scan_partition(None, part, snapshot=2, filters=[Cmp("=", Col("x"), Lit(5))])
        assert rows.tolist() == [3]


@given(
    st.lists(st.one_of(st.none(), st.integers(-20, 20)), max_size=60),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    st.integers(-20, 20),
)
def test_property_fast_equals_generic(values, op, literal):
    for factory in (make_delta, make_main):
        part = factory(values)
        expr = Cmp(op, Col("x"), Lit(literal))
        fast = fast_filter_mask(expr, part)
        rows = np.arange(part.row_count)
        generic = expr.evaluate(PartitionProvider(None, part, rows)).astype(bool)
        assert fast.tolist() == generic.tolist()
