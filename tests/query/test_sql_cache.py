"""The bounded SQL→AST parse cache: hits, bounds, and poisoning immunity."""

import threading

import pytest

from repro.query.sql import (
    _PARSE_CACHE_CAPACITY,
    clear_parse_cache,
    parse_cache_stats,
    parse_sql,
)

SQL = (
    "SELECT i.cid AS cid, SUM(i.price) AS profit, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.cid"
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_parse_cache()
    yield
    clear_parse_cache()


class TestParseCache:
    def test_repeat_parse_hits(self):
        before = parse_cache_stats()
        parse_sql(SQL)
        parse_sql(SQL)
        parse_sql(SQL)
        after = parse_cache_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 2

    def test_distinct_texts_cache_separately(self):
        parse_sql(SQL)
        parse_sql(SQL + " ")  # byte-identity, not canonical equivalence
        assert parse_cache_stats()["entries"] == 2

    def test_capacity_is_bounded(self):
        for i in range(_PARSE_CACHE_CAPACITY + 50):
            parse_sql(
                f"SELECT i.cid AS cid, SUM(i.price) AS s FROM item i "
                f"WHERE i.iid > {i} GROUP BY i.cid"
            )
        assert parse_cache_stats()["entries"] <= _PARSE_CACHE_CAPACITY

    def test_mutating_a_returned_query_cannot_poison_the_cache(self):
        first = parse_sql(SQL)
        # Mutate every mutable part of the returned object.
        first.aggregates.clear()
        first.group_by.clear()
        first.filters.clear()
        first.join_edges.clear()
        first.tables.clear()
        second = parse_sql(SQL)
        assert second.aggregates  # untouched by the first caller's vandalism
        assert second.group_by
        assert second.tables
        assert second.join_edges

    def test_returned_queries_are_distinct_objects(self):
        a = parse_sql(SQL)
        b = parse_sql(SQL)
        assert a is not b
        assert a.tables is not b.tables
        assert a.aggregates is not b.aggregates
        assert a.canonical_key() == b.canonical_key()

    def test_binding_a_returned_query_cannot_poison_the_cache(self):
        """Binding stamps `_bound_by`; a cached template must never carry
        one caller's binding into another caller's copy."""
        from ..conftest import load_erp, make_erp_db

        db = make_erp_db()
        load_erp(db, n_headers=2, merge=True)
        q1 = parse_sql(SQL)
        bound = db.cache._binder.bind(q1)
        assert bound is not None
        q2 = parse_sql(SQL)
        assert getattr(q2, "_bound_by", None) is None

    def test_thread_safety_under_concurrent_parse(self):
        errors = []

        def worker(k: int) -> None:
            try:
                for i in range(50):
                    q = parse_sql(
                        f"SELECT i.cid AS cid, SUM(i.price) AS s FROM item i "
                        f"WHERE i.iid > {i % 7} GROUP BY i.cid"
                    )
                    assert q.tables
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
