"""Unit tests for the SQL SELECT parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.query import AggFunc, Cmp, Col, InList, IsNull, Lit, parse_sql

LISTING_1 = """
SELECT D.Name AS Category, SUM(I.Price) AS Profit
FROM Header AS H, Item AS I, ProductCategory AS D
WHERE I.HeaderID = H.HeaderID
  AND I.CategoryID = D.CategoryID
  AND D.Language = 'ENG'
  AND H.FiscalYear = 2013
GROUP BY D.Name
"""


class TestListing1:
    """The paper's sample query (Listing 1) must parse into the right shape."""

    def test_tables(self):
        query = parse_sql(LISTING_1)
        assert [(t.table, t.alias) for t in query.tables] == [
            ("Header", "H"),
            ("Item", "I"),
            ("ProductCategory", "D"),
        ]

    def test_join_edges(self):
        query = parse_sql(LISTING_1)
        canonicals = sorted(e.canonical() for e in query.join_edges)
        assert canonicals == [
            "D.CategoryID = I.CategoryID",
            "H.HeaderID = I.HeaderID",
        ]

    def test_filters(self):
        query = parse_sql(LISTING_1)
        canonicals = sorted(f.canonical() for f in query.filters)
        assert canonicals == ["(D.Language = 'ENG')", "(H.FiscalYear = 2013)"]

    def test_group_and_aggregates(self):
        query = parse_sql(LISTING_1)
        assert [c.canonical() for c in query.group_by] == ["D.Name"]
        assert [s.canonical() for s in query.aggregates] == ["SUM(I.Price)"]
        assert query.aggregates[0].output == "Profit"


class TestSelectList:
    def test_count_star(self):
        query = parse_sql("SELECT COUNT(*) AS n FROM t")
        assert query.aggregates[0].is_count_star

    def test_count_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT SUM(*) FROM t")

    def test_generated_output_names(self):
        query = parse_sql("SELECT SUM(a), COUNT(b) FROM t")
        assert query.aggregates[0].output == "sum_1"
        assert query.aggregates[1].output == "count_2"

    def test_all_agg_functions(self):
        query = parse_sql("SELECT SUM(a), COUNT(a), AVG(a), MIN(a), MAX(a) FROM t")
        assert [s.func for s in query.aggregates] == [
            AggFunc.SUM,
            AggFunc.COUNT,
            AggFunc.AVG,
            AggFunc.MIN,
            AggFunc.MAX,
        ]

    def test_arithmetic_in_aggregate(self):
        query = parse_sql("SELECT SUM(price * (1 - discount)) AS rev FROM t GROUP BY c")
        assert query.aggregates[0].canonical() == "SUM((price * (1 - discount)))"

    def test_plain_columns_default_group_by(self):
        query = parse_sql("SELECT cat, SUM(x) FROM t")
        assert [c.canonical() for c in query.group_by] == ["cat"]

    def test_plain_column_not_in_group_by_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT cat, SUM(x) FROM t GROUP BY other")

    def test_plain_column_with_alias(self):
        query = parse_sql("SELECT t.cat AS Category, SUM(x) FROM t GROUP BY t.cat")
        assert [c.canonical() for c in query.group_by] == ["t.cat"]


class TestFromClause:
    def test_alias_forms(self):
        q1 = parse_sql("SELECT COUNT(*) FROM orders AS o")
        q2 = parse_sql("SELECT COUNT(*) FROM orders o")
        q3 = parse_sql("SELECT COUNT(*) FROM orders")
        assert q1.tables[0].alias == "o"
        assert q2.tables[0].alias == "o"
        assert q3.tables[0].alias == "orders"

    def test_explicit_join_syntax(self):
        query = parse_sql(
            "SELECT COUNT(*) FROM h JOIN i ON h.id = i.hid WHERE i.x = 1"
        )
        assert len(query.join_edges) == 1
        assert query.join_edges[0].canonical() == "h.id = i.hid"
        assert len(query.filters) == 1

    def test_inner_join_syntax(self):
        query = parse_sql("SELECT COUNT(*) FROM h INNER JOIN i ON h.id = i.hid")
        assert len(query.join_edges) == 1


class TestWhere:
    def test_in_and_between_and_null(self):
        query = parse_sql(
            "SELECT COUNT(*) FROM t WHERE a IN (1, 2) AND b BETWEEN 3 AND 5 "
            "AND c IS NOT NULL AND d IS NULL"
        )
        kinds = sorted(type(f).__name__ for f in query.filters)
        # BETWEEN desugars to two comparisons, flattened with the other conjuncts.
        assert kinds == ["Cmp", "Cmp", "InList", "IsNull", "IsNull"]

    def test_or_not_precedence(self):
        query = parse_sql("SELECT COUNT(*) FROM t WHERE NOT a = 1 OR b = 2 AND c = 3")
        # OR binds loosest: (NOT (a=1)) OR ((b=2) AND (c=3))
        assert len(query.filters) == 1
        assert type(query.filters[0]).__name__ == "Or"

    def test_string_escapes(self):
        query = parse_sql("SELECT COUNT(*) FROM t WHERE name = 'O''Brien'")
        cmp_expr = query.filters[0]
        assert isinstance(cmp_expr, Cmp)
        assert cmp_expr.right.value == "O'Brien"

    def test_negative_numbers_and_floats(self):
        query = parse_sql("SELECT COUNT(*) FROM t WHERE x > -1.5")
        assert query.filters[0].canonical() == "(x > (0 - 1.5))"

    def test_not_equal_variants(self):
        q1 = parse_sql("SELECT COUNT(*) FROM t WHERE a != 1")
        q2 = parse_sql("SELECT COUNT(*) FROM t WHERE a <> 1")
        assert q1.filters[0].canonical() == q2.filters[0].canonical()

    def test_same_alias_equality_is_filter_not_join(self):
        query = parse_sql("SELECT COUNT(*) FROM t WHERE t.a = t.b")
        assert not query.join_edges
        assert len(query.filters) == 1

    def test_in_requires_literals(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT COUNT(*) FROM t WHERE a IN (b)")


class TestOrderLimit:
    def test_order_by(self):
        query = parse_sql(
            "SELECT c, SUM(x) AS s FROM t GROUP BY c ORDER BY s DESC, c ASC LIMIT 5"
        )
        assert [(o.column, o.descending) for o in query.order_by] == [
            ("s", True),
            ("c", False),
        ]
        assert query.limit == 5


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT COUNT(*)")

    def test_garbage_character(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_sql("SELECT COUNT(*) FROM t WHERE a = ;")
        assert excinfo.value.position >= 0

    def test_trailing_tokens(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT COUNT(*) FROM t garbage extra")

    def test_unclosed_paren(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT SUM(a FROM t")

    def test_keywords_case_insensitive(self):
        query = parse_sql("select count(*) from t where a = 1 group by a" )
        # 'a' appears in GROUP BY; count parsed.
        assert query.aggregates[0].is_count_star
