"""Direct tests for grouped-state internals the executor exercises only
indirectly: pre-aggregated group folding, raw state access, and result
rendering edges."""

import numpy as np
import pytest

from repro.errors import CacheError, QueryError
from repro.query import AggFunc, AggregateSpec, Col, GroupedAggregates, OrderItem
from repro.query.query import AggregateQuery, TableRef
from repro.query.result import QueryResult


def specs():
    return [
        AggregateSpec(AggFunc.SUM, Col("v", "t"), "s"),
        AggregateSpec(AggFunc.COUNT, None, "n"),
    ]


class TestAccumulateGroups:
    def test_fold_preaggregated_contributions(self):
        grouped = GroupedAggregates(specs())
        grouped.accumulate_groups(
            keys=[("a",), ("b",)],
            spec_states=[[(10.0, 2), (5.0, 1)], [2, 1]],
            count_star=[2, 1],
        )
        rows = {row[0]: row[1:] for row in grouped.finalize()}
        assert rows["a"] == (10.0, 2)
        assert rows["b"] == (5.0, 1)
        assert grouped.count_star(("a",)) == 2

    def test_subtract_retires_groups(self):
        grouped = GroupedAggregates(specs())
        grouped.accumulate_groups([("a",)], [[(10.0, 2)], [2]], [2])
        grouped.accumulate_groups([("a",)], [[(10.0, 2)], [2]], [2], sign=-1)
        assert grouped.group_count() == 0

    def test_subtract_requires_self_maintainable(self):
        bad = GroupedAggregates([AggregateSpec(AggFunc.MIN, Col("v", "t"), "m")])
        with pytest.raises(CacheError):
            bad.accumulate_groups([("a",)], [[(1, 1)]], [1], sign=-1)

    def test_raw_states_are_copies(self):
        grouped = GroupedAggregates(specs())
        grouped.accumulate_groups([("a",)], [[(10.0, 2)], [2]], [2])
        states = grouped.raw_states(("a",))
        states[0][0] = 999.0
        assert grouped.finalize()[0][1] == 10.0


class TestResultRendering:
    def query(self):
        return AggregateQuery(
            tables=[TableRef("t", "t")],
            aggregates=specs(),
            group_by=[Col("g", "t")],
        )

    def test_to_text_truncation_note(self):
        result = QueryResult(["g", "s", "n"], [(i, 1.0, 1) for i in range(30)])
        text = result.to_text(max_rows=5)
        assert "(25 more rows)" in text
        assert result.to_text(max_rows=None).count("\n") >= 31

    def test_null_rendering(self):
        result = QueryResult(["g", "s", "n"], [(None, None, 0)])
        assert "NULL" in result.to_text()

    def test_width_mismatch_rejected(self):
        with pytest.raises(QueryError):
            QueryResult(["a", "b"], [(1,)])

    def test_sort_with_nulls_first(self):
        result = QueryResult(["g", "s", "n"], [(2, 1.0, 1), (None, 2.0, 1), (1, 3.0, 1)])
        ordered = result.sorted_by([OrderItem("g")])
        assert ordered.column_values("g") == [None, 1, 2]

    def test_sort_mixed_types_stable(self):
        result = QueryResult(["g", "s", "n"], [("b", 1.0, 1), (1, 2.0, 1), ("a", 3.0, 1)])
        ordered = result.sorted_by([OrderItem("g")])
        # ints group before strings (type-name order), each group sorted.
        assert ordered.column_values("g") == [1, "a", "b"]

    def test_equality_cross_type_and_length(self):
        a = QueryResult(["x"], [(1,)])
        assert a != QueryResult(["y"], [(1,)])
        assert a != QueryResult(["x"], [(1,), (2,)])
        assert (a == object()) is NotImplemented or (a != object())

    def test_float_tolerance_in_equality(self):
        a = QueryResult(["x"], [(1.0000000000001,)])
        b = QueryResult(["x"], [(1.0,)])
        assert a == b
        c = QueryResult(["x"], [(1.1,)])
        assert a != c
