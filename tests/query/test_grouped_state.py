"""Direct tests for grouped-state internals the executor exercises only
indirectly: pre-aggregated group folding, raw state access, and result
rendering edges."""

import numpy as np
import pytest

from repro.errors import CacheError, QueryError
from repro.query import AggFunc, AggregateSpec, Col, GroupedAggregates, OrderItem
from repro.query.query import AggregateQuery, TableRef
from repro.query.result import QueryResult


def specs():
    return [
        AggregateSpec(AggFunc.SUM, Col("v", "t"), "s"),
        AggregateSpec(AggFunc.COUNT, None, "n"),
    ]


class TestAccumulateGroups:
    def test_fold_preaggregated_contributions(self):
        grouped = GroupedAggregates(specs())
        grouped.accumulate_groups(
            keys=[("a",), ("b",)],
            spec_states=[[(10.0, 2), (5.0, 1)], [2, 1]],
            count_star=[2, 1],
        )
        rows = {row[0]: row[1:] for row in grouped.finalize()}
        assert rows["a"] == (10.0, 2)
        assert rows["b"] == (5.0, 1)
        assert grouped.count_star(("a",)) == 2

    def test_subtract_retires_groups(self):
        grouped = GroupedAggregates(specs())
        grouped.accumulate_groups([("a",)], [[(10.0, 2)], [2]], [2])
        grouped.accumulate_groups([("a",)], [[(10.0, 2)], [2]], [2], sign=-1)
        assert grouped.group_count() == 0

    def test_subtract_requires_self_maintainable(self):
        bad = GroupedAggregates([AggregateSpec(AggFunc.MIN, Col("v", "t"), "m")])
        with pytest.raises(CacheError):
            bad.accumulate_groups([("a",)], [[(1, 1)]], [1], sign=-1)

    def test_raw_states_are_copies(self):
        grouped = GroupedAggregates(specs())
        grouped.accumulate_groups([("a",)], [[(10.0, 2)], [2]], [2])
        states = grouped.raw_states(("a",))
        states[0][0] = 999.0
        assert grouped.finalize()[0][1] == 10.0


class TestMergeEdgeCases:
    """The merge paths the parallel executor leans on: partial folding."""

    def test_avg_partials_combine_exactly(self):
        # AVG carries (sum, non-null count) partials; merging two partials
        # must equal aggregating all rows at once, including NULL handling.
        avg_specs = [AggregateSpec(AggFunc.AVG, Col("v", "t"), "a")]
        left = GroupedAggregates(avg_specs)
        left.accumulate([("g",), ("g",)], [np.array([2.0, None], dtype=object)])
        right = left.new_like()
        right.accumulate([("g",), ("g",)], [np.array([4.0, 6.0], dtype=object)])
        left.merge(right)
        # sum 12.0 over 3 non-null values; the NULL row counts for COUNT(*)
        # but not for the average.
        assert left.finalize() == [("g", 4.0)]
        assert left.count_star(("g",)) == 4

    def test_distinct_count_union(self):
        distinct = [AggregateSpec(AggFunc.COUNT, Col("v", "t"), "d", distinct=True)]
        left = GroupedAggregates(distinct)
        left.accumulate([("g",)] * 3, [np.array([1, 2, 2], dtype=object)])
        right = left.new_like()
        right.accumulate([("g",)] * 3, [np.array([2, 3, None], dtype=object)])
        left.merge(right)
        # {1, 2} ∪ {2, 3} = {1, 2, 3}; NULL never enters the set.
        assert left.finalize() == [("g", 3)]

    def test_min_max_merge_takes_extrema(self):
        mm = [
            AggregateSpec(AggFunc.MIN, Col("v", "t"), "lo"),
            AggregateSpec(AggFunc.MAX, Col("v", "t"), "hi"),
        ]
        left = GroupedAggregates(mm)
        left.accumulate([("g",)], [np.array([5], dtype=object)] * 2)
        right = left.new_like()
        right.accumulate([("g",), ("g",)], [np.array([1, 9], dtype=object)] * 2)
        left.merge(right)
        assert left.finalize() == [("g", 1, 9)]

    def test_sign_minus_one_rejected_for_non_self_maintainable(self):
        for spec in (
            AggregateSpec(AggFunc.MIN, Col("v", "t"), "m"),
            AggregateSpec(AggFunc.MAX, Col("v", "t"), "m"),
            AggregateSpec(AggFunc.COUNT, Col("v", "t"), "m", distinct=True),
        ):
            target = GroupedAggregates([spec])
            other = target.new_like()
            other.accumulate([("g",)], [np.array([1], dtype=object)])
            with pytest.raises(CacheError):
                target.merge(other, sign=-1)

    def test_merge_rejects_mismatched_specs(self):
        left = GroupedAggregates(specs())
        right = GroupedAggregates([AggregateSpec(AggFunc.COUNT, None, "n")])
        with pytest.raises(CacheError):
            left.merge(right)

    def test_cancelling_merges_retire_empty_groups(self):
        # A compensation sequence that nets a group to zero must retire it;
        # a group merely *passing through* a negative count must survive so
        # a later positive contribution can cancel back.
        grouped = GroupedAggregates(specs())
        positive = grouped.new_like()
        positive.accumulate(
            [("a",), ("a",), ("b",)],
            [np.array([1.0, 2.0, 9.0], dtype=object), np.array([0, 0, 0])],
        )
        negative = grouped.new_like()
        negative.accumulate(
            [("a",), ("a",)],
            [np.array([1.0, 2.0], dtype=object), np.array([0, 0])],
            sign=-1,
        )
        grouped.merge(negative)  # "a" now at count -2: retained, not retired
        assert grouped.count_star(("a",)) == -2
        assert grouped.group_count() == 1
        grouped.merge(positive)  # "a" cancels to 0 and retires; "b" stays
        assert grouped.group_count() == 1
        assert grouped.finalize() == [("b", 9.0, 1)]

    def test_new_like_shares_specs_identity(self):
        grouped = GroupedAggregates(specs())
        fresh = grouped.new_like()
        assert fresh.specs is grouped.specs
        assert fresh.group_count() == 0
        copied = grouped.copy()
        assert copied.specs is grouped.specs


class TestResultRendering:
    def query(self):
        return AggregateQuery(
            tables=[TableRef("t", "t")],
            aggregates=specs(),
            group_by=[Col("g", "t")],
        )

    def test_to_text_truncation_note(self):
        result = QueryResult(["g", "s", "n"], [(i, 1.0, 1) for i in range(30)])
        text = result.to_text(max_rows=5)
        assert "(25 more rows)" in text
        assert result.to_text(max_rows=None).count("\n") >= 31

    def test_null_rendering(self):
        result = QueryResult(["g", "s", "n"], [(None, None, 0)])
        assert "NULL" in result.to_text()

    def test_width_mismatch_rejected(self):
        with pytest.raises(QueryError):
            QueryResult(["a", "b"], [(1,)])

    def test_sort_with_nulls_first(self):
        result = QueryResult(["g", "s", "n"], [(2, 1.0, 1), (None, 2.0, 1), (1, 3.0, 1)])
        ordered = result.sorted_by([OrderItem("g")])
        assert ordered.column_values("g") == [None, 1, 2]

    def test_sort_mixed_types_stable(self):
        result = QueryResult(["g", "s", "n"], [("b", 1.0, 1), (1, 2.0, 1), ("a", 3.0, 1)])
        ordered = result.sorted_by([OrderItem("g")])
        # ints group before strings (type-name order), each group sorted.
        assert ordered.column_values("g") == [1, "a", "b"]

    def test_equality_cross_type_and_length(self):
        a = QueryResult(["x"], [(1,)])
        assert a != QueryResult(["y"], [(1,)])
        assert a != QueryResult(["x"], [(1,), (2,)])
        assert (a == object()) is NotImplemented or (a != object())

    def test_float_tolerance_in_equality(self):
        a = QueryResult(["x"], [(1.0000000000001,)])
        b = QueryResult(["x"], [(1.0,)])
        assert a == b
        c = QueryResult(["x"], [(1.1,)])
        assert a != c
