"""Tests for the summary-table-backed view extent."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, ExecutionStrategy
from repro.mv import EagerIncrementalView, LazyIncrementalView, MaterializedView

SQL = "SELECT cat, SUM(price) AS s, COUNT(*) AS n, AVG(price) AS a FROM sales GROUP BY cat"


def make_db():
    db = Database()
    db.create_table(
        "sales",
        [("sid", "INT"), ("cat", "TEXT"), ("price", "FLOAT")],
        primary_key="sid",
    )
    return db


def reference(db):
    return db.query(SQL, strategy=ExecutionStrategy.UNCACHED)


class TestSummaryTableBacking:
    def test_summary_table_created(self):
        db = make_db()
        MaterializedView(db, SQL, name="rollup", backing="table")
        assert db.catalog.has_table("_mv_rollup")

    def test_unknown_backing_rejected(self):
        db = make_db()
        with pytest.raises(Exception):
            MaterializedView(db, SQL, backing="papyrus")

    def test_initial_rows_materialized_in_table(self):
        db = make_db()
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})
        db.insert("sales", {"sid": 2, "cat": "b", "price": 3.0})
        view = MaterializedView(db, SQL, backing="table")
        assert view.read() == reference(db)
        summary = db.table("_mv_view")
        assert summary.visible_row_count(db.transactions.global_snapshot()) == 2

    def test_eager_maintenance_writes_summary_rows(self):
        db = make_db()
        view = EagerIncrementalView(db, SQL, backing="table")
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})
        db.insert("sales", {"sid": 2, "cat": "a", "price": 4.0})
        assert view.read() == reference(db)
        summary = db.table("_mv_eager_view")
        # Two maintenance writes: the second is an update (old version
        # invalidated, new version appended to the summary delta).
        assert summary.row_count() >= 2

    def test_group_retirement_deletes_summary_row(self):
        db = make_db()
        db.insert("sales", {"sid": 1, "cat": "solo", "price": 2.0})
        view = EagerIncrementalView(db, SQL, backing="table")
        db.delete("sales", 1)
        assert view.read().rows == []
        summary = db.table("_mv_eager_view")
        assert summary.visible_row_count(db.transactions.global_snapshot()) == 0

    def test_lazy_table_backed(self):
        db = make_db()
        view = LazyIncrementalView(db, SQL, backing="table")
        for sid in range(4):
            db.insert("sales", {"sid": sid, "cat": "ab"[sid % 2], "price": 1.0})
        assert view.pending_changes == 4
        assert view.read() == reference(db)

    def test_refresh_full_rebuilds_table(self):
        db = make_db()
        view = MaterializedView(db, SQL, backing="table")
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})
        view.refresh_full()
        assert view.read() == reference(db)
        db.insert("sales", {"sid": 2, "cat": "b", "price": 5.0})
        view.refresh_full()
        assert view.read() == reference(db)

    def test_survives_summary_table_merge(self):
        db = make_db()
        view = EagerIncrementalView(db, SQL, backing="table")
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})
        db.merge()  # merges the summary table too
        db.insert("sales", {"sid": 2, "cat": "a", "price": 3.0})
        assert view.read() == reference(db)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(0, 15),
            st.sampled_from(["a", "b"]),
            st.floats(0, 50),
        ),
        max_size=25,
    )
)
def test_property_table_backed_tracks_state(ops):
    db = make_db()
    view = EagerIncrementalView(db, SQL, backing="table")
    live = set()
    for op, sid, cat, price in ops:
        if op == "insert":
            if sid in live:
                continue
            db.insert("sales", {"sid": sid, "cat": cat, "price": price})
            live.add(sid)
        elif op == "update" and live:
            db.update("sales", sorted(live)[sid % len(live)], {"price": price})
        elif op == "delete" and live:
            target = sorted(live)[sid % len(live)]
            db.delete("sales", target)
            live.remove(target)
    assert view.read() == reference(db)
