"""Tests for the eager/lazy materialized-view baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, ExecutionStrategy, UnsupportedQueryError
from repro.mv import EagerIncrementalView, LazyIncrementalView, MaterializedView

SQL = "SELECT cat, SUM(price) AS s, COUNT(*) AS n, AVG(price) AS a FROM sales GROUP BY cat"
FILTERED_SQL = "SELECT cat, SUM(price) AS s FROM sales WHERE price > 5 GROUP BY cat"


def make_db():
    db = Database()
    db.create_table(
        "sales",
        [("sid", "INT"), ("cat", "TEXT"), ("price", "FLOAT")],
        primary_key="sid",
    )
    return db


def reference(db, sql=SQL):
    return db.query(sql, strategy=ExecutionStrategy.UNCACHED)


class TestViewBasics:
    def test_initial_value_covers_existing_rows(self):
        db = make_db()
        db.insert("sales", {"sid": 1, "cat": "a", "price": 3.0})
        db.merge()
        db.insert("sales", {"sid": 2, "cat": "a", "price": 4.0})
        view = MaterializedView(db, SQL)
        assert view.read() == reference(db)

    def test_join_query_rejected(self):
        db = make_db()
        db.create_table("other", [("oid", "INT")], primary_key="oid")
        with pytest.raises(UnsupportedQueryError):
            MaterializedView(
                db, "SELECT COUNT(*) AS n FROM sales s, other o WHERE s.sid = o.oid"
            )

    def test_min_max_rejected(self):
        db = make_db()
        with pytest.raises(UnsupportedQueryError):
            MaterializedView(db, "SELECT cat, MAX(price) AS m FROM sales GROUP BY cat")

    def test_refresh_full(self):
        db = make_db()
        view = MaterializedView(db, SQL)
        db.insert("sales", {"sid": 1, "cat": "a", "price": 1.0})
        view.refresh_full()
        assert view.read() == reference(db)


class TestEagerView:
    def test_maintained_on_insert(self):
        db = make_db()
        view = EagerIncrementalView(db, SQL)
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})
        db.insert("sales", {"sid": 2, "cat": "b", "price": 3.0})
        assert view.read() == reference(db)
        assert view.maintenance_operations == 2

    def test_maintained_on_update_and_delete(self):
        db = make_db()
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})
        view = EagerIncrementalView(db, SQL)
        db.update("sales", 1, {"price": 7.0})
        assert view.read() == reference(db)
        db.delete("sales", 1)
        assert view.read() == reference(db)
        assert len(view.read()) == 0

    def test_filter_respected(self):
        db = make_db()
        view = EagerIncrementalView(db, FILTERED_SQL)
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})  # filtered out
        db.insert("sales", {"sid": 2, "cat": "a", "price": 9.0})
        assert view.read() == reference(db, FILTERED_SQL)
        assert view.maintenance_operations == 1

    def test_update_crossing_filter_boundary(self):
        db = make_db()
        db.insert("sales", {"sid": 1, "cat": "a", "price": 9.0})
        view = EagerIncrementalView(db, FILTERED_SQL)
        db.update("sales", 1, {"price": 1.0})  # drops out of the view
        assert view.read() == reference(db, FILTERED_SQL)
        db.update("sales", 1, {"price": 8.0})  # re-enters
        assert view.read() == reference(db, FILTERED_SQL)

    def test_other_table_changes_ignored(self):
        db = make_db()
        db.create_table("noise", [("nid", "INT")], primary_key="nid")
        view = EagerIncrementalView(db, SQL)
        db.insert("noise", {"nid": 1})
        assert view.maintenance_operations == 0

    def test_survives_merge(self):
        db = make_db()
        view = EagerIncrementalView(db, SQL)
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})
        db.merge()
        db.insert("sales", {"sid": 2, "cat": "a", "price": 3.0})
        assert view.read() == reference(db)

    def test_close_detaches(self):
        db = make_db()
        view = EagerIncrementalView(db, SQL)
        view.close()
        db.insert("sales", {"sid": 1, "cat": "a", "price": 2.0})
        assert view.maintenance_operations == 0


class TestLazyView:
    def test_log_grows_until_read(self):
        db = make_db()
        view = LazyIncrementalView(db, SQL)
        for sid in range(5):
            db.insert("sales", {"sid": sid, "cat": "a", "price": 1.0})
        assert view.pending_changes == 5
        assert view.maintenance_operations == 0
        assert view.read() == reference(db)
        assert view.pending_changes == 0
        assert view.maintenance_operations == 5

    def test_update_logs_two_changes(self):
        db = make_db()
        db.insert("sales", {"sid": 1, "cat": "a", "price": 1.0})
        view = LazyIncrementalView(db, SQL)
        db.update("sales", 1, {"price": 4.0})
        assert view.pending_changes == 2
        assert view.read() == reference(db)

    def test_delete_logged(self):
        db = make_db()
        db.insert("sales", {"sid": 1, "cat": "a", "price": 1.0})
        view = LazyIncrementalView(db, SQL)
        db.delete("sales", 1)
        assert view.read().rows == []

    def test_apply_pending_explicit(self):
        db = make_db()
        view = LazyIncrementalView(db, SQL)
        db.insert("sales", {"sid": 1, "cat": "a", "price": 1.0})
        assert view.apply_pending() == 1
        assert view.apply_pending() == 0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(0, 30),
            st.sampled_from(["a", "b", "c"]),
            st.floats(0, 100),
        ),
        max_size=40,
    )
)
def test_property_views_track_table_state(ops):
    """Eager and lazy views both equal the uncached query after any
    insert/update/delete sequence."""
    db = make_db()
    eager = EagerIncrementalView(db, SQL)
    lazy = LazyIncrementalView(db, SQL)
    live = set()
    for op, sid, cat, price in ops:
        if op == "insert":
            if sid in live:
                continue
            db.insert("sales", {"sid": sid, "cat": cat, "price": price})
            live.add(sid)
        elif op == "update" and live:
            target = sorted(live)[sid % len(live)]
            db.update("sales", target, {"price": price})
        elif op == "delete" and live:
            target = sorted(live)[sid % len(live)]
            db.delete("sales", target)
            live.remove(target)
    expected = reference(db)
    assert eager.read() == expected
    assert lazy.read() == expected
