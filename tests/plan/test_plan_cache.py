"""Plan cache behavior: the versioned-invalidation matrix, LRU bounds,
alias slots, and safety under the reader/writer stress pattern."""

import threading
import time

import pytest

from repro import Database, ExecutionStrategy
from repro.core.strategies import CacheConfig

from ..conftest import PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING

OTHER_SQL = "SELECT o.g AS g, SUM(o.v) AS s FROM other o GROUP BY o.g"


def make_two_domain_db() -> Database:
    """ERP tables plus an unrelated table ``other`` — two plan domains."""
    db = make_erp_db()
    load_erp(db, n_headers=4, merge=True)
    load_erp(db, n_headers=1, start_hid=90, merge=False)
    db.create_table(
        "other", [("k", "INT"), ("g", "INT"), ("v", "FLOAT")], primary_key="k"
    )
    for k in range(6):
        db.insert("other", {"k": k, "g": k % 2, "v": float(k)})
    return db


def lookup_outcome(db: Database, sql: str, strategy=FULL) -> str:
    """Run one plan lookup and report which counter it moved."""
    before = db.plan_cache.stats()
    db.cache.plan_for(sql, strategy)
    after = db.plan_cache.stats()
    if after["invalidations"] > before["invalidations"]:
        return "invalidated"
    if after["hits"] > before["hits"]:
        return "hit"
    assert after["misses"] > before["misses"]
    return "miss"


def warm(db: Database, *sqls: str) -> None:
    for sql in sqls:
        assert lookup_outcome(db, sql) == "miss"
        assert lookup_outcome(db, sql) == "hit"


class TestInvalidationMatrix:
    """Every mutation bumps exactly the affected tables' versions, so it
    invalidates exactly the plans referencing them."""

    @pytest.mark.parametrize(
        "mutate",
        [
            pytest.param(
                lambda db: db.insert(
                    "item", {"iid": 7777, "hid": 0, "cid": 0, "price": 1.0}
                ),
                id="insert",
            ),
            pytest.param(
                lambda db: db.update("item", 0, {"price": 99.0}), id="update"
            ),
            pytest.param(lambda db: db.delete("item", 1), id="delete"),
            pytest.param(lambda db: db.merge("item"), id="merge"),
        ],
    )
    def test_dml_and_merge_invalidate_only_affected_plans(self, mutate):
        db = make_two_domain_db()
        warm(db, PROFIT_SQL, OTHER_SQL)
        mutate(db)
        assert lookup_outcome(db, PROFIT_SQL) == "invalidated"
        # The unrelated plan kept serving hits the whole time.
        assert lookup_outcome(db, OTHER_SQL) == "hit"
        # The rebuilt plan is hot again.
        assert lookup_outcome(db, PROFIT_SQL) == "hit"

    def test_drop_table_evicts_only_its_plans(self):
        db = make_two_domain_db()
        warm(db, PROFIT_SQL, OTHER_SQL)
        evictions_before = db.plan_cache.stats()["evictions"]
        db.drop_table("other")
        assert db.plan_cache.stats()["evictions"] > evictions_before
        assert lookup_outcome(db, PROFIT_SQL) == "hit"

    def test_dropped_and_recreated_table_never_serves_stale_plan(self):
        db = make_two_domain_db()
        warm(db, OTHER_SQL)
        db.drop_table("other")
        db.create_table(
            "other", [("k", "INT"), ("g", "INT"), ("v", "FLOAT")], primary_key="k"
        )
        db.insert("other", {"k": 1, "g": 0, "v": 5.0})
        # The eviction at drop time means this is a plain miss; either way
        # the old layout's plan must not survive.
        assert lookup_outcome(db, OTHER_SQL) in ("miss", "invalidated")
        assert db.query(OTHER_SQL).rows == [(0, 5.0)]

    def test_add_matching_dependency_invalidates_covered_plans(self):
        db = make_two_domain_db()
        db.create_table("p", [("pid", "INT"), ("tag", "INT")], primary_key="pid")
        db.create_table(
            "c", [("cid", "INT"), ("fk", "INT"), ("v", "FLOAT")], primary_key="cid"
        )
        pc_sql = (
            "SELECT x.fk AS fk, SUM(x.v) AS s, COUNT(*) AS n "
            "FROM p y, c x WHERE y.pid = x.fk GROUP BY x.fk"
        )
        warm(db, pc_sql, PROFIT_SQL)
        db.add_matching_dependency("p", "pid", "c", "fk")
        assert lookup_outcome(db, pc_sql) == "invalidated"
        # Plans not referencing p/c are untouched by the registration.
        assert lookup_outcome(db, PROFIT_SQL) == "hit"

    def test_consistent_aging_declaration_invalidates_covered_plans(self):
        db = make_two_domain_db()
        warm(db, PROFIT_SQL, OTHER_SQL)
        db.declare_consistent_aging("header", "item")
        assert lookup_outcome(db, PROFIT_SQL) == "invalidated"
        assert lookup_outcome(db, OTHER_SQL) == "hit"

    def test_invalidated_plan_produces_fresh_correct_answer(self):
        db = make_two_domain_db()
        first = db.query(PROFIT_SQL, strategy=FULL)
        db.insert("item", {"iid": 8888, "hid": 0, "cid": 0, "price": 100.0})
        second = db.query(PROFIT_SQL, strategy=FULL)
        assert first.rows != second.rows
        total_first = sum(row[1] for row in first.rows)
        total_second = sum(row[1] for row in second.rows)
        assert total_second == pytest.approx(total_first + 100.0)


class TestSlotsAndBounds:
    def test_strategies_cache_separately(self):
        db = make_two_domain_db()
        assert lookup_outcome(db, PROFIT_SQL, FULL) == "miss"
        assert (
            lookup_outcome(db, PROFIT_SQL, ExecutionStrategy.CACHED_NO_PRUNING)
            == "miss"
        )
        assert lookup_outcome(db, PROFIT_SQL, FULL) == "hit"

    def test_respelled_statement_hits_canonical_slot(self):
        db = make_two_domain_db()
        respelled = PROFIT_SQL.replace("SELECT", "SELECT  ")
        assert db.parse(PROFIT_SQL).canonical_key() == (
            db.parse(respelled).canonical_key()
        )
        warm(db, PROFIT_SQL)
        # New spelling, same canonical statement: the canonical slot hits
        # (after the raw-SQL slot misses) and gains an alias...
        assert lookup_outcome(db, respelled) == "hit"
        # ...so the repeat hits on the raw text without parse or bind.
        assert lookup_outcome(db, respelled) == "hit"
        assert len(db.plan_cache) == 1

    def test_lru_eviction_respects_capacity(self):
        db = make_erp_db(cache_config=CacheConfig(plan_cache_size=2))
        load_erp(db, n_headers=2, merge=True)
        sqls = [
            PROFIT_SQL,
            "SELECT i.cid AS cid, SUM(i.price) AS s FROM item i GROUP BY i.cid",
            "SELECT h.year AS y, COUNT(*) AS n FROM header h GROUP BY h.year",
        ]
        for sql in sqls:
            db.query(sql)
        assert len(db.plan_cache) <= 2
        assert db.plan_cache.stats()["evictions"] >= 1
        # The oldest plan is gone; re-asking is a miss, not a crash.
        assert lookup_outcome(db, sqls[0]) == "miss"

    def test_zero_capacity_disables_the_cache(self):
        db = make_erp_db(cache_config=CacheConfig(plan_cache_size=0))
        load_erp(db, n_headers=2, merge=True)
        r1 = db.query(PROFIT_SQL)
        r2 = db.query(PROFIT_SQL)
        assert r1.rows == r2.rows
        assert len(db.plan_cache) == 0
        assert db.plan_cache.stats()["hits"] == 0

    def test_plan_cache_metrics_exported(self):
        db = make_two_domain_db()
        db.query(PROFIT_SQL)
        db.query(PROFIT_SQL)
        snap = db.metrics_snapshot()
        assert snap['repro_plan_cache_lookups_total{outcome="miss"}'] >= 1
        assert snap['repro_plan_cache_lookups_total{outcome="hit"}'] >= 1
        assert snap["repro_plan_cache_entries"] == len(db.plan_cache)


class TestConcurrentInvalidation:
    def test_reader_writer_stress_never_serves_stale_plans(self):
        """Query threads race DML and merges; every answer must reflect a
        consistent snapshot and the run must not deadlock or raise."""
        db = make_two_domain_db()
        stop = threading.Event()
        errors: list = []

        def reader(index: int) -> None:
            sql = PROFIT_SQL if index % 2 == 0 else OTHER_SQL
            strategy = list(ExecutionStrategy)[index % len(list(ExecutionStrategy))]
            try:
                while not stop.is_set():
                    result = db.query(sql, strategy=strategy)
                    assert result.rows  # data never disappears
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        def writer() -> None:
            iid = 10_000
            try:
                while not stop.is_set():
                    db.insert(
                        "item",
                        {"iid": iid, "hid": 0, "cid": 0, "price": 1.0},
                    )
                    db.insert("other", {"k": iid, "g": iid % 2, "v": 1.0})
                    iid += 1
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        def merger() -> None:
            try:
                while not stop.wait(timeout=0.05):
                    db.merge("item")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        threads.append(threading.Thread(target=writer))
        threads.append(threading.Thread(target=merger))
        for t in threads:
            t.start()
        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        if errors:
            raise errors[0]
        # Post-condition: whatever survived in the cache validates against
        # the final catalog state (a fresh lookup is a hit, not stale).
        stats = db.plan_cache.stats()
        assert stats["hits"] > 0
        final = db.query(PROFIT_SQL)
        again = db.query(PROFIT_SQL)
        assert final.rows == again.rows
