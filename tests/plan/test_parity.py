"""Plan/trace parity, property-style: over randomized database states the
dry-run EXPLAIN (rendered from the physical plan) must agree subjoin-by-
subjoin with what EXPLAIN ANALYZE actually executed — serially and in
parallel.  Any drift between the planner and the interpreter shows up here.
"""

import random

import pytest

from repro import Database, ExecutionStrategy, ParallelConfig
from repro.core.explain import explain_query

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, make_erp_db

STRATEGIES = [
    ExecutionStrategy.CACHED_NO_PRUNING,
    ExecutionStrategy.CACHED_EMPTY_DELTA,
    ExecutionStrategy.CACHED_FULL_PRUNING,
]


def random_state(seed: int, **db_kwargs) -> Database:
    """A CH-benCHmark-ish state: random order/line volumes, a random mix of
    merged and delta-resident data, random updates and deletes."""
    rng = random.Random(seed)
    db = make_erp_db(**db_kwargs)
    n_categories = rng.randint(1, 4)
    for cid in range(n_categories):
        db.insert("category", {"cid": cid, "name": f"cat{cid}", "lang": "ENG"})
    iid = 0
    inserted_items = []
    for hid in range(rng.randint(1, 10)):
        items = []
        for _ in range(rng.randint(1, 4)):
            items.append(
                {
                    "iid": iid,
                    "hid": hid,
                    "cid": rng.randrange(n_categories),
                    "price": round(rng.uniform(1, 100), 2),
                }
            )
            iid += 1
        db.insert_business_object(
            "header", {"hid": hid, "year": 2013 + hid % 3}, "item", items
        )
        inserted_items.extend(items)
        if rng.random() < 0.4:
            db.merge()
    for item in inserted_items:
        if rng.random() < 0.15:
            db.update("item", item["iid"], {"price": round(rng.uniform(1, 100), 2)})
        elif rng.random() < 0.1:
            db.delete("item", item["iid"])
    if rng.random() < 0.3:
        db.merge()
    return db


def combo_label(partitions: dict) -> str:
    inner = ", ".join(f"{a}:{p}" for a, p in sorted(partitions.items()))
    return f"({inner})"


def planned_fates(plan) -> list:
    """(combo, fate) pairs from the dry-run plan, sorted."""
    fates = []
    for sub in plan.subjoins:
        fate = f"pruned:{sub.reason}" if sub.action == "pruned" else "evaluate"
        fates.append((combo_label(sub.partitions), fate))
    return sorted(fates)


def traced_fates(trace) -> list:
    """(combo, fate) pairs from the executed trace's subjoin spans, sorted.

    Evaluated spans may carry status "evaluated" or "empty" (an evaluated
    subjoin that produced nothing) — both are the "evaluate" fate.
    """
    fates = []
    for span in trace.subjoin_spans():
        if span.attrs["status"] == "pruned":
            fate = f"pruned:{span.attrs['prune_reason']}"
        else:
            fate = "evaluate"
        fates.append((span.attrs["combo"], fate))
    return sorted(fates)


@pytest.mark.parametrize("seed", range(12))
def test_explain_matches_explain_analyze_serial(seed):
    db = random_state(seed)
    for sql in (PROFIT_SQL, HEADER_ITEM_SQL):
        for strategy in STRATEGIES:
            plan = explain_query(db.cache, sql, strategy)
            trace = db.explain_analyze(sql, strategy=strategy)
            assert planned_fates(plan) == traced_fates(trace), (
                f"seed={seed} sql={sql!r} strategy={strategy}"
            )
            # The executed report agrees with the plan's counters too.
            report = trace.report
            assert report.prune.combos_total == len(plan.subjoins)
            assert report.prune.evaluated == sum(
                1 for s in plan.subjoins if s.action == "evaluate"
            )


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_explain_matches_explain_analyze_parallel(seed):
    serial = random_state(seed)
    parallel = random_state(
        seed, parallel=ParallelConfig(n_workers=4, min_combos=1, min_rows=1)
    )
    try:
        for strategy in STRATEGIES:
            plan_s = explain_query(serial.cache, PROFIT_SQL, strategy)
            plan_p = explain_query(parallel.cache, PROFIT_SQL, strategy)
            assert planned_fates(plan_s) == planned_fates(plan_p)
            trace_s = serial.explain_analyze(PROFIT_SQL, strategy=strategy)
            trace_p = parallel.explain_analyze(PROFIT_SQL, strategy=strategy)
            assert traced_fates(trace_p) == planned_fates(plan_p)
            # Serial and parallel execution are bit-identical: same span
            # identity set, same result rows.
            assert trace_s.identity() == trace_p.identity()
            assert trace_s.result == trace_p.result
    finally:
        parallel.close()


@pytest.mark.parametrize("seed", [1, 5])
def test_parity_survives_plan_cache_hits(seed):
    """The second run answers from the cached plan; its trace must still
    agree with the dry-run EXPLAIN."""
    db = random_state(seed)
    for strategy in STRATEGIES:
        db.query(PROFIT_SQL, strategy=strategy)  # warm plan + entry
        plan = explain_query(db.cache, PROFIT_SQL, strategy)
        trace = db.explain_analyze(PROFIT_SQL, strategy=strategy)
        assert planned_fates(plan) == traced_fates(trace)
