"""Planner and cost-model unit tests: one plan object carries the full
subjoin list with fates, pushdown, and cost-seeded join orders."""

import pytest

from repro import ExecutionStrategy
from repro.plan import estimate_scan_rows
from repro.plan.physical import plan_signature

from ..conftest import PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING


def loaded_db(**kwargs):
    db = make_erp_db(**kwargs)
    load_erp(db, n_headers=4, merge=True)
    load_erp(db, n_headers=1, start_hid=90, merge=False)
    return db


class TestCostModel:
    def test_estimate_halves_per_filter_with_floor_one(self):
        assert estimate_scan_rows(100, 0) == 100
        assert estimate_scan_rows(100, 1) == 50
        assert estimate_scan_rows(100, 2) == 25
        assert estimate_scan_rows(3, 5) == 1  # floor: never rounds to zero
        assert estimate_scan_rows(0, 2) == 0  # empty stays empty


class TestPlannerOutput:
    def test_full_plan_shape(self):
        db = loaded_db()
        plan = db.cache.plan_for(PROFIT_SQL, FULL)
        assert plan.cacheable
        assert plan.strategy is FULL
        assert len(plan.cached_combos) == len(plan.cache_keys) == 1
        # category's delta is empty -> star-join reduction excludes it:
        # 2^2 - 1 enumerated subjoins with d pinned to main in each.
        assert [e.describe() for e in plan.excluded] == ["d:empty_delta"]
        assert len(plan.subjoins) == 3
        assert plan.prune.combos_total == 3
        assert plan.prune.excluded_tables == 1
        assert plan.prune.combos_excluded == 4
        assert all(
            s.partitions["d"].name == "main" for s in plan.subjoins
        )
        assert all(s.action in ("evaluate", "pruned") for s in plan.subjoins)
        pruned = [s for s in plan.subjoins if s.action == "pruned"]
        assert all(s.reason in ("empty", "logical", "dynamic") for s in pruned)
        assert plan.prune.pruned_total == len(pruned)

    def test_full_plan_shape_exhaustive_override(self):
        db = loaded_db()
        plan = db.cache.plan_for(PROFIT_SQL, FULL, star_join_tables=())
        # 3 tables -> 2^3 - 1 compensation subjoins, every fate decided.
        assert plan.excluded == ()
        assert plan.star_override == ()
        assert len(plan.subjoins) == 7
        assert plan.prune.combos_total == 7
        assert plan.prune.combos_excluded == 0

    def test_evaluated_subjoins_carry_join_order(self):
        db = loaded_db()
        plan = db.cache.plan_for(PROFIT_SQL, FULL)
        aliases = {"h", "i", "d"}
        for sub in plan.subjoins:
            if sub.action != "evaluate":
                assert sub.probe_side is None
                continue
            assert set(sub.join_order) == aliases
            assert sub.join_order[0] == sub.probe_side
            assert set(sub.estimated_rows) == aliases
            # Probe side = the largest estimated input.
            largest = max(sub.estimated_rows.values())
            assert sub.estimated_rows[sub.probe_side] == largest

    def test_uncached_plan_covers_full_product(self):
        db = loaded_db()
        plan = db.cache.plan_for(PROFIT_SQL, ExecutionStrategy.UNCACHED)
        assert len(plan.subjoins) == 8  # 2^3, nothing cached or pruned
        assert all(s.action == "evaluate" for s in plan.subjoins)
        assert plan.cached_combos == []
        assert plan.prune.combos_total == 0  # matches legacy reporting

    def test_non_cacheable_statement(self):
        db = loaded_db()
        plan = db.cache.plan_for(
            "SELECT i.cid AS cid, MAX(i.price) AS m FROM item i GROUP BY i.cid",
            FULL,
        )
        assert not plan.cacheable
        assert plan.cached_combos == []
        assert all(s.action == "evaluate" for s in plan.subjoins)

    def test_to_spec_returns_fresh_objects(self):
        db = loaded_db()
        plan = db.cache.plan_for(PROFIT_SQL, FULL)
        sub = next(s for s in plan.subjoins if s.action == "evaluate")
        spec1, spec2 = sub.to_spec(), sub.to_spec()
        assert spec1 is not spec2
        spec1.partitions.clear()
        spec1.extra_filters.clear()
        assert sub.partitions  # the plan is untouched
        assert sub.to_spec().partitions == spec2.partitions


class TestSignature:
    def test_signature_changes_with_dml(self):
        db = loaded_db()
        names = ["category", "header", "item"]
        before = plan_signature(db.catalog, db.cache.config, names)
        db.insert("item", {"iid": 5555, "hid": 0, "cid": 0, "price": 2.0})
        after = plan_signature(db.catalog, db.cache.config, names)
        assert before != after

    def test_signature_stable_across_reads(self):
        db = loaded_db()
        names = ["category", "header", "item"]
        before = plan_signature(db.catalog, db.cache.config, names)
        db.query(PROFIT_SQL)
        db.explain(PROFIT_SQL)
        assert plan_signature(db.catalog, db.cache.config, names) == before

    def test_signature_raises_for_missing_table(self):
        db = loaded_db()
        with pytest.raises(Exception):
            plan_signature(db.catalog, db.cache.config, ["nonexistent"])


class TestExplainFromPlan:
    def test_explain_shows_join_order(self):
        db = loaded_db()
        text = db.explain(PROFIT_SQL, strategy=FULL)
        assert "probe=" in text
        assert "order=" in text

    def test_explain_and_execute_share_the_cached_plan(self):
        db = loaded_db()
        db.explain(PROFIT_SQL, strategy=FULL)  # builds and caches the plan
        before = db.plan_cache.stats()
        db.query(PROFIT_SQL, strategy=FULL)  # must reuse, not rebuild
        after = db.plan_cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
