"""Star-join exclusion detection, the soundness gate, and overrides.

The reduction replaces 2^t - 1 compensation variants with 2^k - 1 over
the k tables that can still contribute delta rows; everything here pins
the *decision* layer: which tables get excluded, why, when the gate
vetoes a candidate, and how the override and plan cache interact.
"""

import pytest

from repro import CacheConfig, Database, ExecutionStrategy
from repro.plan import detect_star_join_tables, normalize_star_join_override
from repro.plan.star_join import alias_is_filtering, exclusion_is_sound
from repro.storage import threshold_aging

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
NO_PRUNE = ExecutionStrategy.CACHED_NO_PRUNING


def merged_db(**kwargs):
    """ERP db with everything in the mains — every table gate-eligible."""
    db = make_erp_db(**kwargs)
    load_erp(db, n_headers=4, merge=True)
    return db


class TestNormalizeOverride:
    def test_none_means_automatic(self):
        assert normalize_star_join_override(None) is None

    def test_empty_is_distinct_from_none(self):
        assert normalize_star_join_override(()) == ()
        assert normalize_star_join_override("") == ()

    def test_comma_string_and_iterable_agree(self):
        assert normalize_star_join_override("d, h") == ("d", "h")
        assert normalize_star_join_override(["h", "d"]) == ("d", "h")

    def test_sorted_and_deduplicated(self):
        assert normalize_star_join_override("h,d,h, d") == ("d", "h")


class TestDetectionTiers:
    def test_empty_delta_reason_for_filtering_table(self, erp_db):
        # category groups the result (filtering) but its delta is empty.
        plan = erp_db.cache.plan_for(PROFIT_SQL, FULL)
        assert [e.describe() for e in plan.excluded] == ["d:empty_delta"]

    def test_non_filtering_reason_for_join_only_table(self):
        # header contributes only its join key to HEADER_ITEM_SQL; with
        # the deltas merged both tables pass the gate, and the tier
        # records *why* each one was excluded.
        db = merged_db()
        plan = db.cache.plan_for(HEADER_ITEM_SQL, FULL)
        reasons = {e.alias: e.reason for e in plan.excluded}
        assert reasons == {"h": "non_filtering", "i": "empty_delta"}
        assert plan.prune.combos_total == 0  # k = 0: nothing to enumerate

    def test_delta_rows_block_exclusion(self, erp_db):
        # header and item hold fresh delta objects: neither may be pinned
        # to main, whatever tier would otherwise claim them.
        plan = erp_db.cache.plan_for(HEADER_ITEM_SQL, FULL)
        assert plan.excluded == ()
        assert plan.prune.combos_total == 3

    def test_detection_sorted_by_alias(self):
        db = merged_db()
        query = db.parse(PROFIT_SQL)
        excluded = detect_star_join_tables(query, db.catalog)
        assert [e.alias for e in excluded] == sorted(e.alias for e in excluded)
        assert {e.alias for e in excluded} == {"d", "h", "i"}


class TestSoundnessGate:
    def test_gate_requires_physically_empty_deltas(self, erp_db):
        assert exclusion_is_sound(erp_db.table("category"))
        assert not exclusion_is_sound(erp_db.table("header"))
        assert not exclusion_is_sound(erp_db.table("item"))

    def test_invalidated_but_unmerged_rows_still_block(self):
        # A deleted delta row keeps row_count > 0 until the merge garbage
        # collects it; the gate must stay conservative (snapshot-free).
        db = merged_db()
        db.insert("category", {"cid": 9, "name": "late", "lang": "ENG"})
        db.delete("category", 9)
        assert not exclusion_is_sound(db.table("category"))
        db.merge()
        assert exclusion_is_sound(db.table("category"))

    def test_aged_table_is_never_excluded(self):
        db = Database()
        db.create_table(
            "header",
            [("hid", "INT"), ("year", "INT")],
            primary_key="hid",
            aging_rule=threshold_aging("year", 2014),
        )
        db.create_table(
            "item",
            [("iid", "INT"), ("hid", "INT"), ("year", "INT"), ("price", "FLOAT")],
            primary_key="iid",
            aging_rule=threshold_aging("year", 2014),
        )
        db.add_matching_dependency("header", "hid", "item", "hid")
        db.declare_consistent_aging("header", "item")
        for hid, year in [(1, 2013), (2, 2015)]:
            db.insert_business_object(
                "header",
                {"hid": hid, "year": year},
                "item",
                [{"iid": hid * 10, "hid": hid, "year": year, "price": 1.0}],
            )
        db.merge()  # splits the mains into current/passive by year
        assert db.table("header").is_aged()
        assert not exclusion_is_sound(db.table("header"))
        sql = (
            "SELECT i.year AS y, SUM(i.price) AS s FROM header h, item i "
            "WHERE h.hid = i.hid GROUP BY i.year"
        )
        plan = db.cache.plan_for(sql, FULL)
        assert plan.excluded == ()

    def test_alias_is_filtering_classification(self, erp_db):
        query = erp_db.parse(PROFIT_SQL)
        assert alias_is_filtering(query, "d")  # GROUP BY d.name
        assert alias_is_filtering(query, "i")  # SUM(i.price)
        assert not alias_is_filtering(query, "h")  # join key only
        filtered = PROFIT_SQL.replace(
            "WHERE h.hid = i.hid", "WHERE h.hid = i.hid AND h.year = 2013"
        )
        assert alias_is_filtering(erp_db.parse(filtered), "h")


class TestOverride:
    def test_override_replaces_detection(self):
        db = merged_db()
        # Only the named table is excluded, with the override reason,
        # even though detection would have claimed all three.
        plan = db.cache.plan_for(PROFIT_SQL, FULL, star_join_tables=("d",))
        assert [e.describe() for e in plan.excluded] == ["d:override"]
        assert plan.prune.combos_total == 3

    def test_override_accepts_table_names(self):
        db = merged_db()
        plan = db.cache.plan_for(
            PROFIT_SQL, FULL, star_join_tables="category,header"
        )
        assert {e.alias for e in plan.excluded} == {"d", "h"}
        assert all(e.reason == "override" for e in plan.excluded)

    def test_empty_override_disables_reduction(self):
        db = merged_db()
        plan = db.cache.plan_for(PROFIT_SQL, FULL, star_join_tables=())
        assert plan.excluded == ()
        assert plan.prune.combos_total == 7

    def test_override_cannot_defeat_the_gate(self, erp_db):
        # header has delta rows: naming it is a no-op, not an unsound pin.
        plan = erp_db.cache.plan_for(PROFIT_SQL, FULL, star_join_tables=("h",))
        assert plan.excluded == ()
        assert plan.prune.combos_total == 7
        result = erp_db.query(PROFIT_SQL, strategy=FULL, star_join_tables=("h",))
        assert result == erp_db.query(
            PROFIT_SQL, strategy=ExecutionStrategy.UNCACHED
        )

    def test_config_override_applies_and_per_query_wins(self):
        db = merged_db(cache_config=CacheConfig(star_join_tables=("d",)))
        plan = db.cache.plan_for(PROFIT_SQL, FULL)
        assert [e.describe() for e in plan.excluded] == ["d:override"]
        # The per-query override replaces the config's.
        plan = db.cache.plan_for(PROFIT_SQL, FULL, star_join_tables=())
        assert plan.excluded == ()

    def test_config_flag_disables_reduction_entirely(self):
        db = merged_db(cache_config=CacheConfig(star_join_reduction=False))
        plan = db.cache.plan_for(PROFIT_SQL, FULL)
        assert plan.excluded == ()
        assert plan.prune.combos_total == 7


class TestStrategyGating:
    def test_no_pruning_stays_exhaustive(self):
        db = merged_db()
        plan = db.cache.plan_for(PROFIT_SQL, NO_PRUNE)
        assert plan.excluded == ()
        assert plan.prune.combos_total == 7

    def test_uncached_stays_exhaustive(self):
        db = merged_db()
        plan = db.cache.plan_for(PROFIT_SQL, ExecutionStrategy.UNCACHED)
        assert plan.excluded == ()


class TestPlanCacheKeying:
    def test_override_values_get_distinct_plans(self):
        db = merged_db()
        db.query(PROFIT_SQL, strategy=FULL)
        stats = db.plan_cache.stats()
        db.query(PROFIT_SQL, strategy=FULL, star_join_tables=())
        after = db.plan_cache.stats()
        # Different override -> different keys (sql + canon probes both
        # miss) -> a rebuild, not a stale hit.
        assert after["misses"] == stats["misses"] + 2
        assert after["hits"] == stats["hits"]
        db.query(PROFIT_SQL, strategy=FULL)
        db.query(PROFIT_SQL, strategy=FULL, star_join_tables=())
        final = db.plan_cache.stats()
        assert final["hits"] == after["hits"] + 2

    def test_equivalent_override_spellings_share_a_plan(self):
        db = merged_db()
        db.query(PROFIT_SQL, strategy=FULL, star_join_tables="h,d")
        before = db.plan_cache.stats()
        db.query(PROFIT_SQL, strategy=FULL, star_join_tables=["d", "h", "d"])
        after = db.plan_cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]


class TestSpanRendering:
    def test_delta_compensation_span_reports_exclusions(self, erp_db):
        trace = erp_db.explain_analyze(PROFIT_SQL)
        span = trace.span_named("delta_compensation")
        assert span.attrs["excluded"] == ["d:empty_delta"]
        assert span.attrs["subjoins_excluded"] == 4
        # One span per *enumerated* subjoin only.
        assert len(trace.subjoin_spans()) == trace.report.prune.combos_total

    def test_span_attrs_absent_without_exclusions(self, erp_db):
        trace = erp_db.explain_analyze(PROFIT_SQL, star_join_tables=())
        span = trace.span_named("delta_compensation")
        assert "excluded" not in span.attrs
