"""Unit tests for the benchmark harness utilities."""

import pytest

from repro import Database, ExecutionStrategy
from repro.bench import (
    STRATEGY_LABELS,
    FigureCollector,
    normalize,
    strategy_sweep,
    time_call,
    time_query,
)


def make_db():
    db = Database()
    db.create_table("t", [("k", "INT"), ("v", "FLOAT")], primary_key="k")
    for k in range(50):
        db.insert("t", {"k": k, "v": float(k)})
    db.merge()
    return db


class TestTiming:
    def test_time_call_positive_and_best_of_n(self):
        calls = []
        elapsed = time_call(lambda: calls.append(1), repeats=3)
        assert elapsed >= 0.0
        assert len(calls) == 3

    def test_time_call_at_least_one_repeat(self):
        calls = []
        time_call(lambda: calls.append(1), repeats=0)
        assert len(calls) == 1

    def test_time_query_runs_warmup(self):
        db = make_db()
        sql = "SELECT k, SUM(v) AS s FROM t GROUP BY k"
        time_query(db, sql, ExecutionStrategy.CACHED_FULL_PRUNING, repeats=1)
        assert db.cache.entry_count() == 1

    def test_strategy_sweep_covers_all(self):
        db = make_db()
        sql = "SELECT COUNT(*) AS n FROM t"
        sweep = strategy_sweep(
            db, sql, list(ExecutionStrategy), repeats=1
        )
        assert set(sweep) == set(ExecutionStrategy)
        assert all(v > 0 for v in sweep.values())


class TestNormalize:
    def test_by_max(self):
        assert normalize([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]

    def test_by_reference(self):
        assert normalize([1.0, 2.0], reference=2.0) == [0.5, 1.0]

    def test_zero_reference(self):
        assert normalize([0.0, 0.0]) == [0.0, 0.0]


class TestFigureCollector:
    def test_report_accumulates_and_renders(self):
        collector = FigureCollector()
        report = collector.report("Fig. X", "demo", "claim", ["a", "b"])
        report.add_row("x", 1.234567)
        report.note("scaled down")
        same = collector.report("Fig. X", "demo", "claim", ["a", "b"])
        assert same is report
        rendered = collector.render_all()
        assert "Fig. X" in rendered
        assert "1.235" in rendered
        assert "note: scaled down" in rendered

    def test_empty_collector_renders_nothing(self):
        assert FigureCollector().render_all() == ""

    def test_empty_reports_skipped(self):
        collector = FigureCollector()
        collector.report("Fig. Y", "empty", "claim", ["a"])
        assert collector.render_all() == ""

    def test_strategy_labels_cover_all(self):
        assert set(STRATEGY_LABELS) == set(ExecutionStrategy)
