"""Unit tests for transactions and the consistent view manager."""

import pytest

from repro.errors import TransactionError
from repro.storage import ColumnDef, Schema, SqlType, Table
from repro.txn import ConsistentViewManager, Transaction, TransactionManager


def make_table():
    return Table(
        "t",
        Schema([ColumnDef("id", SqlType.INT, nullable=False)], primary_key="id"),
    )


class TestTransactionManager:
    def test_monotonic_tids(self):
        mgr = TransactionManager()
        tids = [mgr.begin().tid for _ in range(5)]
        assert tids == [1, 2, 3, 4, 5]
        assert mgr.latest_tid == 5
        assert mgr.global_snapshot() == 5

    def test_initial_snapshot_is_zero(self):
        assert TransactionManager().global_snapshot() == 0

    def test_commit_and_abort_state(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        assert txn.is_active
        txn.commit()
        assert not txn.is_active
        with pytest.raises(TransactionError):
            txn.commit()
        txn2 = mgr.begin()
        txn2.abort()
        with pytest.raises(TransactionError):
            txn2.abort()

    def test_require_active(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        txn.require_active()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.require_active()

    def test_context_manager_commits(self):
        mgr = TransactionManager()
        with mgr.begin() as txn:
            pass
        assert not txn.is_active

    def test_context_manager_aborts_on_error(self):
        mgr = TransactionManager()
        with pytest.raises(RuntimeError):
            with mgr.begin() as txn:
                raise RuntimeError("boom")
        assert not txn.is_active

    def test_snapshot_equals_tid(self):
        mgr = TransactionManager()
        txn = mgr.begin()
        assert txn.snapshot == txn.tid


class TestConsistentViewManager:
    def test_global_visibility_tracks_latest_tid(self):
        mgr = TransactionManager()
        cvm = ConsistentViewManager(mgr)
        table = make_table()
        t1 = mgr.begin()
        table.insert({"id": 1}, t1.tid)
        t1.commit()
        delta = table.partition("delta")
        assert cvm.global_visibility(delta).set_indices() == [0]
        t2 = mgr.begin()
        table.insert({"id": 2}, t2.tid)
        t2.commit()
        assert cvm.global_visibility(delta).set_indices() == [0, 1]

    def test_txn_visibility_is_snapshot_bound(self):
        mgr = TransactionManager()
        cvm = ConsistentViewManager(mgr)
        table = make_table()
        t1 = mgr.begin()
        table.insert({"id": 1}, t1.tid)
        # A snapshot taken now should not see a later insert.
        reader = mgr.begin()
        t3 = mgr.begin()
        table.insert({"id": 2}, t3.tid)
        delta = table.partition("delta")
        assert cvm.txn_visibility(delta, reader).set_indices() == [0]
        assert cvm.txn_visible_rows(delta, reader).tolist() == [0]
        assert cvm.txn_visible_mask(delta, reader).tolist() == [True, False]

    def test_txn_sees_own_writes(self):
        mgr = TransactionManager()
        cvm = ConsistentViewManager(mgr)
        table = make_table()
        txn = mgr.begin()
        table.insert({"id": 1}, txn.tid)
        delta = table.partition("delta")
        assert cvm.txn_visibility(delta, txn).set_indices() == [0]
