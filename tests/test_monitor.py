"""Tests for the monitoring/statistics views."""

import io

import pytest

from repro import Database, ExecutionStrategy
from repro.monitor import collect_statistics
from repro.shell import Shell

from .conftest import HEADER_ITEM_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING


def make_db():
    db = make_erp_db()
    load_erp(db, n_headers=4, merge=True)
    load_erp(db, n_headers=1, start_hid=50, merge=False)
    return db


class TestTableStats:
    def test_partition_breakdown(self):
        db = make_db()
        stats = db.statistics()
        item = stats.table("item")
        names = {p.name for p in item.partitions}
        assert names == {"main", "delta"}
        assert item.total_rows == 15
        assert item.total_bytes > 0

    def test_delta_fill(self):
        db = make_db()
        item = db.statistics().table("item")
        assert item.delta_fill == pytest.approx(3 / 15)
        db.merge()
        assert db.statistics().table("item").delta_fill == 0.0

    def test_visible_vs_physical(self):
        db = make_db()
        db.delete("item", 0)
        item = db.statistics().table("item")
        main = next(p for p in item.partitions if p.name == "main")
        assert main.rows == main.visible_rows + 1
        assert main.invalidation_epoch == 1

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            make_db().statistics().table("nope")


class TestCacheStats:
    def test_hit_miss_counters(self):
        db = make_db()
        stats = db.statistics()
        assert stats.cache.entries == 0
        assert stats.cache.hit_rate == 0.0
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        stats = db.statistics()
        assert stats.cache.entries == 1
        assert stats.cache.total_misses == 1
        assert stats.cache.total_hits == 2
        assert stats.cache.hit_rate == pytest.approx(2 / 3)

    def test_maintenance_counter(self):
        db = make_db()
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        db.merge()
        assert db.statistics().cache.total_maintenance_runs >= 1

    def test_eviction_counter(self):
        from repro import CacheConfig

        db = make_erp_db(cache_config=CacheConfig(max_entries=1))
        load_erp(db, n_headers=3, merge=True)
        db.query("SELECT cid, COUNT(*) AS n FROM item GROUP BY cid", strategy=FULL)
        db.query("SELECT cid, SUM(price) AS s FROM item GROUP BY cid", strategy=FULL)
        assert db.statistics().cache.total_evictions >= 1


class TestEnforcementStats:
    def test_counts_exposed(self):
        db = make_db()
        stats = db.statistics().enforcement
        assert stats.matching_dependencies == 2
        assert stats.parent_stamps > 0
        assert stats.child_lookups > 0
        assert stats.lookups_failed == 0


class TestRendering:
    def test_render_mentions_everything(self):
        db = make_db()
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        text = db.statistics().render()
        assert "tables:" in text
        assert "item" in text
        assert "aggregate cache:" in text
        assert "matching dependencies:" in text

    def test_shell_stats_command(self):
        db = make_db()
        stdin = io.StringIO("\\stats\n\\quit\n")
        stdout = io.StringIO()
        Shell(db=db, stdin=stdin, stdout=stdout).run()
        assert "aggregate cache:" in stdout.getvalue()


class TestSnapshotCoherence:
    def test_tracked_bytes_comes_from_the_counters_snapshot(self):
        # Regression: the collector used to call ``manager.tracked_bytes()``
        # *outside* the single-lock ``counters_snapshot()``, so a concurrent
        # query could evict or create state between the two reads and the
        # report would disagree with itself.  Raising from the standalone
        # method proves the collector no longer touches it.
        db = make_db()
        db.query(HEADER_ITEM_SQL, strategy=FULL)

        def boom():
            raise AssertionError("tracked_bytes() read outside the snapshot")

        db.cache.tracked_bytes = boom
        stats = collect_statistics(db)
        assert stats.cache.tracked_bytes > 0

    def test_tracked_bytes_matches_manager_when_quiescent(self):
        db = make_db()
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.statistics().cache.tracked_bytes == db.cache.tracked_bytes()


class TestRecyclerStats:
    def test_recycler_counters_surface(self):
        overlapping = (
            "SELECT i.cid AS cid, COUNT(*) AS n "
            "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.cid"
        )
        db = make_db()
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        db.query(overlapping, strategy=FULL)
        cache = db.statistics().cache
        assert cache.recycler_entries > 0
        assert cache.recycler_bytes > 0
        assert cache.recycler_hits > 0
        assert 0.0 < cache.recycler_hit_rate <= 1.0

    def test_render_mentions_recycler_and_refresh(self):
        db = make_db()
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        text = db.statistics().render()
        assert "recycler:" in text
        assert "refresh:" in text

    def test_shell_recycler_command(self):
        db = make_db()
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        stdin = io.StringIO("\\recycler\n\\quit\n")
        stdout = io.StringIO()
        Shell(db=db, stdin=stdin, stdout=stdout).run()
        out = stdout.getvalue()
        assert "subjoin recycler:" in out
        assert "hit-rate=" in out

    def test_shell_recycler_command_when_disabled(self):
        from repro import CacheConfig

        db = make_erp_db(cache_config=CacheConfig(subjoin_recycler=False))
        stdin = io.StringIO("\\recycler\n\\quit\n")
        stdout = io.StringIO()
        Shell(db=db, stdin=stdin, stdout=stdout).run()
        assert "disabled" in stdout.getvalue()
