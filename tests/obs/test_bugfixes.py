"""Regression tests for the torn-stats bugfix sweep.

1. ``collect_statistics`` used to compute ``total_value_bytes`` from a
   second, separately-locked ``manager.entries()`` walk — torn against the
   ``counters_snapshot()`` it had already taken.
2. ``Database.last_report`` was one shared attribute — concurrent queries
   overwrote each other's reports.
3. ``default_workers()`` silently swallowed a malformed
   ``REPRO_N_WORKERS`` and quietly clamped 0/negatives to 1.
"""

import threading
import warnings

import pytest

from repro import Database
from repro import envutil
from repro.query.parallel import ParallelConfig, default_workers

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db


class TestTornValueBytes:
    def test_value_bytes_in_counters_snapshot(self, erp_db):
        erp_db.query(PROFIT_SQL)
        counters = erp_db.cache.counters_snapshot()
        assert counters["value_bytes"] == sum(
            e.metrics.size_bytes for e in erp_db.cache.entries()
        )
        assert counters["entries"] == len(erp_db.cache.entries())

    def test_statistics_uses_the_single_snapshot(self, erp_db):
        """The byte total must come from counters_snapshot(), not from a
        second entries() walk: patch entries() to fail and statistics()
        must still produce a consistent cache view."""
        erp_db.query(PROFIT_SQL)
        expected = erp_db.cache.counters_snapshot()

        def boom():
            raise AssertionError(
                "collect_statistics must not re-read manager.entries()"
            )

        original = erp_db.cache.entries
        erp_db.cache.entries = boom
        try:
            stats = erp_db.statistics()
        finally:
            erp_db.cache.entries = original
        assert stats.cache.total_value_bytes == expected["value_bytes"]
        assert stats.cache.entries == expected["entries"]

    def test_byte_total_never_tears_under_concurrent_eviction(self):
        """entries and value_bytes are read under one lock acquisition, so
        they always describe the same instant even while another thread
        creates and evicts entries."""
        db = make_erp_db()
        load_erp(db, n_headers=6, merge=True)
        stop = threading.Event()
        errors = []

        def churn():
            try:
                while not stop.is_set():
                    db.query(PROFIT_SQL)
                    db.query(HEADER_ITEM_SQL)
                    db.cache.clear()
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for _ in range(200):
                counters = db.cache.counters_snapshot()
                if counters["entries"] == 0:
                    assert counters["value_bytes"] == 0
                else:
                    assert counters["value_bytes"] > 0
        finally:
            stop.set()
            thread.join()
        assert not errors


class TestLastReportRaces:
    def test_report_travels_with_the_result(self, erp_db):
        result = erp_db.query(PROFIT_SQL)
        assert result.report is not None
        assert result.report.prune.combos_total > 0
        assert erp_db.last_report is result.report

    def test_last_report_is_thread_local(self):
        """Each thread sees its own last_report, never another thread's."""
        db = make_erp_db()
        load_erp(db, n_headers=6, merge=True)
        db.query(PROFIT_SQL)  # warm the cache entry
        barrier = threading.Barrier(4)
        mismatches = []

        def worker():
            barrier.wait()
            for _ in range(30):
                result = db.query(PROFIT_SQL)
                if db.last_report is not result.report:
                    mismatches.append(threading.get_ident())
                    return

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not mismatches

    def test_fresh_thread_has_no_last_report(self, erp_db):
        erp_db.query(PROFIT_SQL)
        seen = {}

        def probe():
            seen["report"] = erp_db.last_report

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen["report"] is None


class TestWorkerEnvValidation:
    def test_valid_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_WORKERS", "3")
        assert default_workers() == 3
        assert ParallelConfig.auto().n_workers == 3

    def test_malformed_value_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_WORKERS", "fuor")
        envutil._reset_warnings()
        with pytest.warns(RuntimeWarning, match="malformed REPRO_N_WORKERS"):
            assert default_workers() >= 1
        # Second call: warn-once, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_workers() >= 1

    def test_zero_is_rejected_with_clear_message(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_WORKERS", "0")
        with pytest.raises(ValueError, match="must be >= 1"):
            default_workers()

    def test_negative_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_WORKERS", "-2")
        with pytest.raises(ValueError, match="REPRO_N_WORKERS"):
            default_workers()

    def test_unset_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_WORKERS", raising=False)
        assert default_workers() >= 1
