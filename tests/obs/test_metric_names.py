"""Lint: every obs metric name is canonical and registered exactly once."""

from pathlib import Path

from repro.obs import EngineMetrics, names

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestNameCatalog:
    def test_all_names_unique(self):
        assert len(names.ALL_NAMES) == len(set(names.ALL_NAMES))

    def test_all_names_follow_prometheus_conventions(self):
        for name in names.ALL_NAMES:
            assert name.startswith("repro_"), name
            assert name == name.lower(), name
            # Counters end in _total, histogram families in _seconds;
            # gauges are bare nouns — nothing else is allowed.
            assert not name.endswith("_bucket"), name
            assert not name.endswith("_sum"), name
            assert not name.endswith("_count"), name

    def test_engine_metrics_registers_exactly_the_catalog(self):
        """EngineMetrics creates one instrument per canonical name — no
        name missing, none invented, none registered twice (a duplicate
        would raise inside the registry)."""
        bundle = EngineMetrics()
        assert bundle.registry.names() == sorted(names.ALL_NAMES)

    def test_no_metric_name_literals_outside_the_catalog(self):
        """Engine code must reference metrics via ``names.*`` constants
        (through EngineMetrics attributes); a ``"repro_..."`` string
        literal anywhere else would bypass the registered-exactly-once
        invariant."""
        offenders = []
        for path in SRC_ROOT.rglob("*.py"):
            if path.name == "names.py" and path.parent.name == "obs":
                continue
            text = path.read_text()
            if '"repro_' in text or "'repro_" in text:
                offenders.append(str(path.relative_to(SRC_ROOT)))
        assert not offenders, (
            f"metric name literals outside obs/names.py: {offenders}"
        )
