"""MetricsRegistry: instruments, thread safety, exporter roundtrip."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    parse_prometheus,
)


class TestCounter:
    def test_inc_accumulates(self):
        r = MetricsRegistry()
        c = r.counter("repro_test_total", "help")
        c.inc()
        c.inc(4)
        assert r.snapshot()["repro_test_total"] == 5

    def test_negative_increment_rejected(self):
        r = MetricsRegistry()
        c = r.counter("repro_test_total", "help")
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_labeled_family(self):
        r = MetricsRegistry()
        c = r.counter("repro_test_total", "help", labels=("outcome",))
        c.labels("hit").inc(2)
        c.labels("miss").inc()
        snap = r.snapshot()
        assert snap['repro_test_total{outcome="hit"}'] == 2
        assert snap['repro_test_total{outcome="miss"}'] == 1

    def test_concurrent_increments_lose_nothing(self):
        r = MetricsRegistry()
        c = r.counter("repro_test_total", "help", labels=("who",))
        plain = r.counter("repro_plain_total", "help")
        n_threads, per_thread = 8, 2000

        def worker(i):
            child = c.labels(f"t{i % 2}")
            for _ in range(per_thread):
                child.inc()
                plain.inc()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = r.snapshot()
        assert snap["repro_plain_total"] == n_threads * per_thread
        assert (
            snap['repro_test_total{who="t0"}'] + snap['repro_test_total{who="t1"}']
            == n_threads * per_thread
        )


class TestGauge:
    def test_set_and_inc(self):
        r = MetricsRegistry()
        g = r.gauge("repro_test_gauge", "help")
        g.set(10)
        g.inc(-3)
        assert r.snapshot()["repro_test_gauge"] == 7

    def test_callback_gauge(self):
        r = MetricsRegistry()
        state = {"v": 0}
        r.gauge("repro_cb_gauge", "help", fn=lambda: state["v"])
        state["v"] = 42
        assert r.snapshot()["repro_cb_gauge"] == 42


class TestHistogram:
    def test_bucket_edges_value_equal_to_bound(self):
        """A value exactly on a bucket bound lands in that bucket
        (Prometheus ``le`` semantics are inclusive)."""
        r = MetricsRegistry()
        h = r.histogram("repro_test_seconds", "help", (0.1, 0.5, 1.0))
        h.observe(0.1)  # == first bound -> le="0.1"
        h.observe(0.5)  # == second bound
        h.observe(2.0)  # above all bounds -> +Inf only
        counts = h.bucket_counts()
        # Cumulative: le=0.1 has 1, le=0.5 has 2, le=1.0 has 2, +Inf has 3.
        assert list(counts.keys()) == [0.1, 0.5, 1.0, float("inf")]
        assert list(counts.values()) == [1, 2, 2, 3]
        snap = r.snapshot()
        assert snap['repro_test_seconds_bucket{le="0.1"}'] == 1
        assert snap['repro_test_seconds_bucket{le="+Inf"}'] == 3
        assert snap["repro_test_seconds_count"] == 3
        assert snap["repro_test_seconds_sum"] == pytest.approx(2.6)

    def test_below_first_bound(self):
        r = MetricsRegistry()
        h = r.histogram("repro_test_seconds", "help", (0.1, 0.5))
        h.observe(0.0001)
        assert list(h.bucket_counts().values()) == [1, 1, 1]

    def test_default_latency_buckets_are_ascending(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)


class TestRegistry:
    def test_duplicate_name_rejected(self):
        r = MetricsRegistry()
        r.counter("repro_dup_total", "help")
        with pytest.raises(ObservabilityError):
            r.counter("repro_dup_total", "help")
        with pytest.raises(ObservabilityError):
            r.gauge("repro_dup_total", "help")

    def test_null_registry_is_inert(self):
        c = NULL_REGISTRY.counter("repro_x_total", "help")
        c.inc()
        c.labels("a").inc(10)
        h = NULL_REGISTRY.histogram("repro_x_seconds", "help", (1.0,))
        h.observe(0.5)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.render_prometheus() == ""
        assert NULL_REGISTRY.enabled is False


class TestExporter:
    def _populated(self) -> MetricsRegistry:
        r = MetricsRegistry()
        c = r.counter("repro_queries_total", "Queries.", labels=("strategy",))
        c.labels("uncached").inc(3)
        c.labels('we"ird\\label').inc()  # exercises label escaping
        r.gauge("repro_entries", "Entries.").set(7)
        h = r.histogram("repro_lat_seconds", "Latency.", (0.001, 0.1, 1.0))
        for v in (0.0005, 0.05, 0.5, 5.0):
            h.observe(v)
        return r

    def test_roundtrip_through_parser(self):
        """render -> parse reproduces snapshot() exactly (the acceptance
        criterion: Prometheus output round-trips through a parser)."""
        r = self._populated()
        text = r.render_prometheus()
        assert parse_prometheus(text) == r.snapshot()

    def test_format_shape(self):
        text = self._populated().render_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_queries_total Queries." in lines
        assert "# TYPE repro_queries_total counter" in lines
        assert "# TYPE repro_lat_seconds histogram" in lines
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_lat_seconds_count 4" in lines
        # Buckets are cumulative and ascending in the output.
        bucket_lines = [l for l in lines if l.startswith("repro_lat_seconds_bucket")]
        values = [float(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert values == sorted(values)

    def test_parser_rejects_garbage(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus("repro_thing 1 2 3 extra tokens here\n")
