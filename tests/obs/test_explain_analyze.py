"""EXPLAIN ANALYZE: trace structure, span timing, prune attribution."""

import pytest

from repro import Database, ExecutionStrategy, ParallelConfig

from ..conftest import PROFIT_SQL, load_erp, make_erp_db


class TestTraceStructure:
    def test_result_and_report_attached(self, erp_db):
        trace = erp_db.explain_analyze(PROFIT_SQL)
        assert trace.result is not None
        assert trace.report is trace.result.report
        assert trace.result.trace is trace
        assert trace.sql == PROFIT_SQL
        # The trace's result equals a plain query's result.
        assert trace.result == erp_db.query(PROFIT_SQL)

    def test_span_tree_shape(self, erp_db):
        trace = erp_db.explain_analyze(PROFIT_SQL)
        assert trace.root.name == "query"
        names = [s.name for s in trace.root.children]
        assert names[0] == "bind"
        assert "cache_lookup" in names
        assert "delta_compensation" in names

    def test_subjoin_spans_cover_every_compensation_subjoin(self, erp_db):
        """One span per compensation subjoin, pruned or evaluated, and the
        prune reasons on the spans agree with the PruneReport."""
        trace = erp_db.explain_analyze(PROFIT_SQL)
        report = trace.report
        spans = trace.subjoin_spans()
        assert len(spans) == report.prune.combos_total
        pruned = [s for s in spans if s.attrs["status"] == "pruned"]
        assert len(pruned) == report.prune.pruned_total
        reasons = [s.attrs["prune_reason"] for s in pruned]
        assert reasons.count("empty") == report.prune.pruned_empty
        assert reasons.count("logical") == report.prune.pruned_logical
        assert reasons.count("dynamic") == report.prune.pruned_dynamic
        evaluated = [s for s in spans if s.attrs["status"] != "pruned"]
        assert len(evaluated) == report.prune.evaluated
        for span in evaluated:
            assert "combo" in span.attrs
            assert "rows_scanned" in span.attrs
            assert "worker" in span.attrs

    def test_spans_sum_to_total_within_overhead(self, erp_db):
        """Acceptance: the per-stage spans of a 3-table query sum (within
        instrumentation overhead) to the total latency."""
        trace = erp_db.explain_analyze(PROFIT_SQL)
        total = trace.total_seconds
        assert total > 0
        child_sum = sum(s.duration for s in trace.root.children)
        # Children cannot exceed the root (they are nested in its window)...
        assert child_sum <= total + 1e-9
        # ...and they account for most of it: the gaps are only the
        # manager's own bookkeeping between stages.  Generous absolute
        # slack keeps the assertion robust on loaded CI machines.
        assert child_sum >= total - max(0.01, 0.9 * total)
        # Subjoin spans nest inside the delta_compensation span the same way.
        comp = trace.span_named("delta_compensation")
        sub_sum = sum(s.duration for s in comp.children)
        assert sub_sum <= comp.duration + 1e-9

    def test_uncached_strategy_traces_the_direct_scan(self, erp_db):
        trace = erp_db.explain_analyze(
            PROFIT_SQL, strategy=ExecutionStrategy.UNCACHED
        )
        assert trace.span_named("uncached_scan") is not None
        assert trace.span_named("cache_lookup") is None

    def test_miss_then_hit_lookup_outcomes(self):
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=True)
        first = db.explain_analyze(PROFIT_SQL)
        second = db.explain_analyze(PROFIT_SQL)
        lookup_first = first.span_named("cache_lookup")
        lookup_second = second.span_named("cache_lookup")
        assert lookup_first.attrs["outcome"] == "miss"
        assert [c.name for c in lookup_first.children] == ["build_entry"]
        assert lookup_second.attrs["outcome"] == "hit"

    def test_trace_serializes_and_renders(self, erp_db):
        trace = erp_db.explain_analyze(PROFIT_SQL)
        payload = trace.to_dict()
        assert payload["sql"] == PROFIT_SQL
        assert payload["trace"]["name"] == "query"
        text = trace.render()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "compensation subjoins" in text
        assert "subjoin" in text


class TestSerialParallelEquivalence:
    def _loaded(self, **kwargs) -> Database:
        db = make_erp_db(**kwargs)
        load_erp(db, n_headers=8, merge=True)
        load_erp(db, n_headers=3, start_hid=50, merge=False)
        return db

    def test_same_span_set_serial_vs_parallel(self):
        """Serial and parallel runs produce equivalent subjoin span sets —
        only timings and worker names may differ."""
        serial = self._loaded()
        parallel = self._loaded(
            parallel=ParallelConfig(n_workers=4, min_combos=1, min_rows=1)
        )
        try:
            trace_serial = serial.explain_analyze(PROFIT_SQL)
            trace_parallel = parallel.explain_analyze(PROFIT_SQL)
            assert trace_serial.identity() == trace_parallel.identity()
            assert trace_serial.result == trace_parallel.result
        finally:
            parallel.close()

    def test_parallel_spans_carry_worker_names(self):
        db = self._loaded(
            parallel=ParallelConfig(n_workers=4, min_combos=1, min_rows=1)
        )
        try:
            trace = db.explain_analyze(PROFIT_SQL)
            workers = {
                s.attrs["worker"]
                for s in trace.subjoin_spans()
                if s.attrs["status"] != "pruned"
            }
            assert workers  # at least one evaluated subjoin went somewhere
        finally:
            db.close()


class TestMetricsFromQueries:
    def test_counters_line_up_with_report(self, erp_db):
        before = erp_db.metrics_snapshot()
        trace = erp_db.explain_analyze(PROFIT_SQL)
        after = erp_db.metrics_snapshot()
        report = trace.report

        def delta(key):
            return after.get(key, 0) - before.get(key, 0)

        pruned_delta = sum(
            delta(f'repro_subjoins_pruned_total{{reason="{r}"}}')
            for r in ("empty", "logical", "dynamic")
        )
        assert pruned_delta == report.prune.pruned_total
        assert delta("repro_subjoins_evaluated_total") == (
            report.executor_stats.combos_evaluated
        )
        strategy = report.strategy.name.lower()
        assert delta(f'repro_queries_total{{strategy="{strategy}"}}') == 1

    def test_gauges_refresh_on_export(self, erp_db):
        erp_db.query(PROFIT_SQL)
        snap = erp_db.metrics_snapshot()
        assert snap["repro_cache_entries"] == erp_db.cache.entry_count()
        assert snap["repro_cache_value_bytes"] == (
            erp_db.cache.counters_snapshot()["value_bytes"]
        )

    def test_observability_disabled_still_answers(self):
        db = make_erp_db(observability=False)
        load_erp(db, n_headers=4, merge=True)
        result = db.query(PROFIT_SQL)
        assert result.report is not None
        assert db.export_metrics() == ""
        assert db.metrics_snapshot() == {}
        # explain_analyze still traces: spans are per-query state, not
        # registry state.  (star_join_tables=() keeps subjoins enumerated
        # on this fully merged database so there are spans to see.)
        trace = db.explain_analyze(PROFIT_SQL, star_join_tables=())
        assert trace.subjoin_spans()
