"""Metrics-overhead smoke check: the no-op registry must be ~free.

Timing-sensitive, so the assertion only arms under ``REPRO_OBS_SMOKE=1``
(the CI obs job sets it); a plain test run still executes both loops as a
functional smoke test but skips the ratio assertion.  The threshold is
overridable via ``REPRO_OBS_SMOKE_MAX_OVERHEAD`` (default 5, i.e. +5%).
"""

import os
import time

from repro.core.strategies import ExecutionStrategy

from ..conftest import load_erp, make_erp_db

# CH-benCHmark Q3 shape: revenue per order, newest first (adapted to the
# engine's header/item schema — Q3 joins the order hierarchy and
# aggregates line revenue per order).
Q3_SQL = (
    "SELECT h.hid AS o_id, SUM(i.price) AS revenue, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid "
    "GROUP BY h.hid ORDER BY revenue DESC LIMIT 10"
)

LOOPS = 60
REPEATS = 3


def _q3_loop_seconds(observability: bool) -> float:
    db = make_erp_db(observability=observability)
    load_erp(db, n_headers=40, items_per_header=4, merge=True)
    load_erp(db, n_headers=4, start_hid=500, merge=False)
    db.query(Q3_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)  # warmup
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(LOOPS):
            db.query(Q3_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
        best = min(best, time.perf_counter() - started)
    return best


def test_disabled_observability_overhead_on_q3_loop():
    enabled = _q3_loop_seconds(observability=True)
    disabled = _q3_loop_seconds(observability=False)
    assert enabled > 0 and disabled > 0
    if os.environ.get("REPRO_OBS_SMOKE") != "1":
        return  # functional smoke only; timing assertion needs a quiet box
    max_overhead_pct = float(os.environ.get("REPRO_OBS_SMOKE_MAX_OVERHEAD", "5"))
    # The acceptance criterion compares *disabled* observability against
    # the seed baseline; the no-op hooks are the only delta between the
    # two databases here, so disabled must not be slower than enabled by
    # more than the budget (noise aside, it should be marginally faster).
    overhead = (disabled - enabled) / enabled * 100.0
    assert overhead <= max_overhead_pct, (
        f"observability=False Q3 loop is {overhead:.1f}% slower than "
        f"observability=True (budget {max_overhead_pct}%)"
    )
