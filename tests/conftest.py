"""Shared fixtures: a miniature ERP database in the paper's schema shape."""

import pytest

from repro import Database, ExecutionStrategy


PROFIT_SQL = (
    "SELECT d.name AS category, SUM(i.price) AS profit, COUNT(*) AS n "
    "FROM header h, item i, category d "
    "WHERE h.hid = i.hid AND i.cid = d.cid "
    "GROUP BY d.name"
)

HEADER_ITEM_SQL = (
    "SELECT i.cid AS cid, SUM(i.price) AS profit, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.cid"
)


def make_erp_db(separate_update_delta: bool = False, **db_kwargs) -> Database:
    """Empty header/item/category schema with both MDs installed."""
    db = Database(**db_kwargs)
    db.create_table(
        "category",
        [("cid", "INT"), ("name", "TEXT"), ("lang", "TEXT")],
        primary_key="cid",
        separate_update_delta=separate_update_delta,
    )
    db.create_table(
        "header",
        [("hid", "INT"), ("year", "INT")],
        primary_key="hid",
        separate_update_delta=separate_update_delta,
    )
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("cid", "INT"), ("price", "FLOAT")],
        primary_key="iid",
        separate_update_delta=separate_update_delta,
    )
    db.add_matching_dependency("header", "hid", "item", "hid")
    db.add_matching_dependency("category", "cid", "item", "cid")
    return db


def load_erp(
    db: Database,
    n_headers: int = 6,
    items_per_header: int = 3,
    n_categories: int = 2,
    merge: bool = True,
    start_hid: int = 0,
) -> None:
    """Insert business objects; optionally merge them into the mains."""
    for cid in range(n_categories):
        if db.table("category").get_row(cid) is None:
            db.insert("category", {"cid": cid, "name": f"cat{cid}", "lang": "ENG"})
    iid = start_hid * 100
    for hid in range(start_hid, start_hid + n_headers):
        items = []
        for k in range(items_per_header):
            items.append(
                {
                    "iid": iid,
                    "hid": hid,
                    "cid": (hid + k) % n_categories,
                    "price": float((hid % 5) + k + 1),
                }
            )
            iid += 1
        db.insert_business_object(
            "header", {"hid": hid, "year": 2013 + hid % 2}, "item", items
        )
    if merge:
        db.merge()


@pytest.fixture
def erp_db() -> Database:
    """ERP db with 6 objects in the mains and 2 fresh objects in the deltas."""
    db = make_erp_db()
    load_erp(db, n_headers=6, merge=True)
    load_erp(db, n_headers=2, start_hid=100, merge=False)
    return db


def all_strategies():
    return list(ExecutionStrategy)
