"""Query deadlines and cooperative cancellation.

The acceptance property: a query aborted by an expired deadline raises
``QueryTimeout`` and leaves the engine in a state where re-running the
same query without a deadline is *bit-identical* to never having timed
out — under serial, parallel, and delta-memo execution, against
randomized writer histories.
"""

import random
import threading

import pytest

from repro import (
    CancelToken,
    Database,
    Deadline,
    ExecutionStrategy,
    GovernorConfig,
    QueryCancelled,
    QueryTimeout,
)

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after_ms(-1.0)

    def test_expiry_on_a_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(50.0, clock=clock)
        assert not deadline.expired(clock=clock)
        assert deadline.remaining_ms(clock=clock) == pytest.approx(50.0)
        clock.now += 0.049
        assert not deadline.expired(clock=clock)
        clock.now += 0.002
        assert deadline.expired(clock=clock)
        assert deadline.remaining_ms(clock=clock) == 0.0


class TestCancelToken:
    def test_check_is_a_noop_while_healthy(self):
        token = CancelToken(Deadline.after_ms(60_000.0))
        token.check()  # must not raise

    def test_cancel_raises_with_the_given_reason(self):
        token = CancelToken()
        token.cancel("user hit ctrl-c")
        with pytest.raises(QueryCancelled, match="user hit ctrl-c"):
            token.check()

    def test_expired_deadline_raises_typed_timeout(self):
        token = CancelToken(Deadline.after_ms(0.0))
        with pytest.raises(QueryTimeout) as excinfo:
            token.check()
        assert excinfo.value.timeout_ms == 0.0

    def test_cancel_wins_over_expiry(self):
        token = CancelToken(Deadline.after_ms(0.0))
        token.cancel()
        with pytest.raises(QueryCancelled):
            token.check()

    def test_cancel_from_another_thread(self):
        token = CancelToken()
        worker = threading.Thread(target=token.cancel, args=("remote",))
        worker.start()
        worker.join()
        assert token.cancelled


def _randomized_writer_history(db: Database, seed: int) -> None:
    """Apply a seeded random mix of inserts/updates/deletes/merges."""
    rng = random.Random(seed)
    next_hid = 1000 + seed * 100  # disjoint hid ranges per history
    for _ in range(rng.randint(3, 6)):
        action = rng.choice(["insert", "update", "delete", "merge"])
        if action == "insert":
            load_erp(
                db,
                n_headers=rng.randint(1, 3),
                start_hid=next_hid,
                merge=False,
            )
            next_hid += 10
        elif action == "update":
            iid = rng.choice([0, 1, 2, 100, 101])
            if db.table("item").get_row(iid) is not None:
                db.update("item", iid, {"price": float(rng.randint(1, 50))})
        elif action == "delete":
            iid = rng.choice([3, 4, 102])
            if db.table("item").get_row(iid) is not None:
                db.delete("item", iid)
        else:
            db.merge()


def _db_for_mode(mode: str) -> Database:
    if mode == "parallel":
        return make_erp_db(n_workers=2)
    return make_erp_db()


@pytest.mark.parametrize("mode", ["serial", "parallel", "memo"])
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_timeout_then_rerun_is_bit_identical(mode, seed):
    db = _db_for_mode(mode)
    load_erp(db, n_headers=6, merge=True)
    load_erp(db, n_headers=2, start_hid=100, merge=False)
    if mode == "memo":
        # Prime the entry and its delta memo so the timed-out run would
        # have gone down the incremental-compensation path.
        db.query(PROFIT_SQL, strategy=FULL)
        db.query(PROFIT_SQL, strategy=FULL)
        assert db.last_report.delta_memo_mode == "incremental"
    _randomized_writer_history(db, seed)

    expected = db.query(PROFIT_SQL, strategy=UNCACHED).rows
    with pytest.raises(QueryTimeout):
        # An already-expired deadline: the first cooperative check aborts.
        db.query(PROFIT_SQL, strategy=FULL, timeout_ms=0.0)
    rerun = db.query(PROFIT_SQL, strategy=FULL).rows
    assert rerun == expected
    # And the abort left the engine fully writable and re-queryable.
    _randomized_writer_history(db, seed + 1000)
    assert (
        db.query(PROFIT_SQL, strategy=FULL).rows
        == db.query(PROFIT_SQL, strategy=UNCACHED).rows
    )


def test_timeout_leaves_no_active_transaction_or_read_lock(erp_db):
    finished = []
    erp_db.transactions.finish_hooks.append(finished.append)
    with pytest.raises(QueryTimeout):
        erp_db.query(PROFIT_SQL, strategy=FULL, timeout_ms=0.0)
    # The auto-begun transaction was aborted (its finish hooks ran), not
    # leaked in the active state forever ...
    assert [txn.state for txn in finished] == ["aborted"]
    # ... and the read lock was released: a writer can proceed at once.
    erp_db.insert("category", {"cid": 77, "name": "late", "lang": "ENG"})


def test_timeout_installs_no_partial_memo(erp_db):
    erp_db.query(PROFIT_SQL, strategy=FULL)  # build the entry
    load_erp(erp_db, n_headers=2, start_hid=300, merge=False)
    entries_before = {
        e.key: e.delta_memo for e in erp_db.cache.entries()
    }
    with pytest.raises(QueryTimeout):
        erp_db.query(PROFIT_SQL, strategy=FULL, timeout_ms=0.0)
    for entry in erp_db.cache.entries():
        assert entries_before.get(entry.key) is entry.delta_memo


def test_pre_cancelled_token_aborts_with_query_cancelled(erp_db):
    token = CancelToken()
    token.cancel("shutting down")
    with pytest.raises(QueryCancelled, match="shutting down"):
        erp_db.query(PROFIT_SQL, cancel=token)


def test_config_default_timeout_applies_and_explicit_wins():
    db = make_erp_db(governor=GovernorConfig(query_timeout_ms=0.0001))
    load_erp(db, n_headers=4, merge=True)
    with pytest.raises(QueryTimeout):
        db.query(HEADER_ITEM_SQL)
    # An explicit generous timeout overrides the impossible default.
    result = db.query(HEADER_ITEM_SQL, timeout_ms=60_000.0)
    assert result.rows


def test_timeouts_are_counted_in_health(erp_db):
    with pytest.raises(QueryTimeout):
        erp_db.query(PROFIT_SQL, timeout_ms=0.0)
    report = erp_db.health()
    assert report.timeouts == 1
    assert report.state == "healthy"  # a timeout is not a degraded mode


def test_explain_analyze_honors_the_deadline(erp_db):
    with pytest.raises(QueryTimeout):
        erp_db.explain_analyze(PROFIT_SQL, timeout_ms=0.0)
