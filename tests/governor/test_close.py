"""Database.close(): idempotent, thread-safe, drains concurrent readers."""

import threading

import pytest

from repro import Database, ExecutionStrategy

from ..conftest import PROFIT_SQL, load_erp, make_erp_db


class TestCloseIdempotency:
    def test_double_close_in_memory(self):
        db = make_erp_db()
        db.close()
        db.close()  # second call is a no-op, not an error

    def test_double_close_durable(self, tmp_path):
        db = Database(path=tmp_path / "db")
        db.create_table("t", [("k", "INT")], primary_key="k")
        db.insert("t", {"k": 1})
        db.close()
        db.close()
        assert db.wal is not None and not db.wal.is_open

    def test_context_manager_after_explicit_close(self):
        db = make_erp_db()
        with db:
            db.close()
        # __exit__ closed again; no error either way.

    def test_concurrent_close_calls_race_cleanly(self, tmp_path):
        db = Database(path=tmp_path / "db")
        db.create_table("t", [("k", "INT")], primary_key="k")
        barrier = threading.Barrier(4)
        errors = []

        def closer():
            try:
                barrier.wait()
                db.close()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert not db.wal.is_open


class TestCloseUnderConcurrentReaders:
    def test_close_waits_for_in_flight_queries(self):
        db = make_erp_db(n_workers=2)
        load_erp(db, n_headers=6, merge=True)
        load_erp(db, n_headers=2, start_hid=100, merge=False)
        expected = db.query(
            PROFIT_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING
        ).rows
        started = threading.Event()
        results = []

        def reader():
            started.set()
            for _ in range(5):
                try:
                    results.append(
                        db.query(
                            PROFIT_SQL,
                            strategy=ExecutionStrategy.CACHED_FULL_PRUNING,
                        ).rows
                    )
                except Exception:
                    # A query that raced past close may fail cleanly; it
                    # must never return from a torn engine.
                    return

        worker = threading.Thread(target=reader)
        worker.start()
        started.wait()
        db.close()  # takes the write lock: drains any in-flight reader
        worker.join()
        # Every query that completed saw a consistent engine.
        for rows in results:
            assert rows == expected
