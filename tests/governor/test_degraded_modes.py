"""Degraded serving modes: WAL-degraded and cache-degraded episodes.

A WAL fault episode must trip the durability breaker (typed write
rejection while reads keep serving), recover through a half-open probe,
and be visible in ``db.health()``, the shell's ``\\health``, and the
``repro_governor_*`` metrics.  A failing cache path must fall back to
base-table execution with correct results and eventually bypass the
cache entirely while its breaker is open.
"""

import io
import time

import pytest

from repro import (
    Database,
    ExecutionStrategy,
    FaultInjector,
    GovernorConfig,
    WriteRejectedError,
    parse_prometheus,
)
from repro.errors import DurabilityError
from repro.shell import Shell

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

FAST_BREAKER = GovernorConfig(
    breaker_threshold=2,
    breaker_reset_ms=40.0,
    wal_retries=2,
    retry_backoff_ms=0.01,
)


class TestWalDegraded:
    def test_episode_trips_recovers_and_is_observable(self, tmp_path):
        faults = FaultInjector()
        db = Database(
            path=tmp_path / "db",
            fault_injector=faults,
            governor=FAST_BREAKER,
        )
        db.create_table("t", [("k", "INT"), ("v", "INT")], primary_key="k")
        db.insert("t", {"k": 1, "v": 10})

        faults.arm("wal.append", mode="io_error", times=None)
        # Each failing append exhausts its retries and feeds the breaker;
        # after `threshold` episodes the breaker opens and writes are
        # rejected with the typed error instead of failing slowly.
        failures = 0
        rejections = 0
        for k in range(2, 10):
            try:
                db.insert("t", {"k": k, "v": k})
            except DurabilityError:
                failures += 1
            except WriteRejectedError:
                rejections += 1
        assert failures == FAST_BREAKER.breaker_threshold
        assert rejections > 0

        health = db.health()
        assert health.state == "degraded"
        assert health.modes == ["wal_degraded"]
        assert health.breakers["wal"].state == "open"
        assert health.writes_rejected == rejections
        assert health.retries.get("wal.append", 0) > 0

        # Reads are still served while WAL-degraded.
        assert db.query("SELECT SUM(v) AS s FROM t", strategy=UNCACHED).rows

        # The shell surfaces the same picture.
        out = io.StringIO()
        shell = Shell(db=db, stdin=io.StringIO("\\health\n"), stdout=out)
        shell.run()
        assert "wal_degraded" in out.getvalue()
        assert "breaker[wal]: open" in out.getvalue()

        # And so do the metrics.
        samples = parse_prometheus(db.export_metrics())
        assert samples['repro_governor_breaker_state{breaker="wal"}'] == 1.0
        assert samples["repro_governor_writes_rejected_total"] == rejections

        # Fault clears; after the cooldown the next write is the half-open
        # probe, it succeeds, and the breaker closes.
        faults.disarm("wal.append")
        time.sleep(FAST_BREAKER.breaker_reset_ms / 1000.0 + 0.02)
        db.insert("t", {"k": 99, "v": 99})
        health = db.health()
        assert health.state == "healthy"
        assert health.modes == []
        assert health.breakers["wal"].state == "closed"
        samples = parse_prometheus(db.export_metrics())
        assert samples['repro_governor_breaker_state{breaker="wal"}'] == 0.0
        db.close()

    def test_failed_probe_reopens(self, tmp_path):
        faults = FaultInjector()
        db = Database(
            path=tmp_path / "db",
            fault_injector=faults,
            governor=FAST_BREAKER,
        )
        db.create_table("t", [("k", "INT")], primary_key="k")
        faults.arm("wal.append", mode="io_error", times=None)
        for k in range(5):
            with pytest.raises((DurabilityError, WriteRejectedError)):
                db.insert("t", {"k": k})
        assert db.health().breakers["wal"].state == "open"
        time.sleep(FAST_BREAKER.breaker_reset_ms / 1000.0 + 0.02)
        # Probe admitted but the fault is still live: back to open.
        with pytest.raises(DurabilityError):
            db.insert("t", {"k": 50})
        assert db.health().breakers["wal"].state == "open"
        db.close()

    def test_in_memory_database_never_wal_degrades(self):
        db = make_erp_db(governor=FAST_BREAKER)
        load_erp(db, n_headers=3)
        assert db.health().modes == []


class TestCacheDegraded:
    def _failing_cache_db(self, times=None):
        faults = FaultInjector()
        db = make_erp_db(fault_injector=faults, governor=FAST_BREAKER)
        load_erp(db, n_headers=6, merge=True)
        load_erp(db, n_headers=2, start_hid=100, merge=False)
        expected = db.query(PROFIT_SQL, strategy=UNCACHED).rows
        faults.arm("cache.compensation", mode="raise", times=times)
        return db, faults, expected

    def test_cache_failure_falls_back_to_base_tables(self):
        db, faults, expected = self._failing_cache_db(times=1)
        result = db.query(PROFIT_SQL, strategy=FULL)
        assert result.rows == expected
        assert result.report.fallback_uncached
        assert result.report.degraded_reason == "fallback"

    def test_repeated_failures_open_the_breaker_and_bypass(self):
        db, faults, expected = self._failing_cache_db(times=None)
        for _ in range(FAST_BREAKER.breaker_threshold):
            assert db.query(PROFIT_SQL, strategy=FULL).rows == expected
        health = db.health()
        assert "cache_degraded" in health.modes
        assert health.breakers["cache"].state == "open"
        # While open, queries never enter the cache path: the armed fault
        # no longer fires because compensation is never attempted.
        hits_before = faults.hits.get("cache.compensation", 0)
        result = db.query(PROFIT_SQL, strategy=FULL)
        assert result.rows == expected
        assert result.report.degraded_reason == "breaker_open"
        assert faults.hits.get("cache.compensation", 0) == hits_before
        assert db.health().degraded_queries >= FAST_BREAKER.breaker_threshold + 1

    def test_probe_query_closes_the_breaker_after_recovery(self):
        db, faults, expected = self._failing_cache_db(times=None)
        for _ in range(FAST_BREAKER.breaker_threshold):
            db.query(PROFIT_SQL, strategy=FULL)
        assert db.health().breakers["cache"].state == "open"
        faults.disarm("cache.compensation")
        time.sleep(FAST_BREAKER.breaker_reset_ms / 1000.0 + 0.02)
        # The next cached query is the probe; it succeeds and heals.
        assert db.query(PROFIT_SQL, strategy=FULL).rows == expected
        health = db.health()
        assert health.breakers["cache"].state == "closed"
        assert health.modes == []
        # Fully healed: the cache path serves again.
        result = db.query(PROFIT_SQL, strategy=FULL)
        assert result.report.degraded_reason == ""
        assert not result.report.fallback_uncached

    def test_degraded_queries_metric_labelled_by_reason(self):
        db, faults, expected = self._failing_cache_db(times=None)
        for _ in range(FAST_BREAKER.breaker_threshold + 1):
            db.query(PROFIT_SQL, strategy=FULL)
        samples = parse_prometheus(db.export_metrics())
        assert (
            samples['repro_governor_degraded_queries_total{reason="fallback"}']
            >= FAST_BREAKER.breaker_threshold
        )
        assert (
            samples['repro_governor_degraded_queries_total{reason="breaker_open"}']
            >= 1
        )

    def test_timeouts_do_not_feed_the_cache_breaker(self, erp_db):
        """A deadline abort is the *governor's* doing, not a cache fault."""
        from repro import QueryTimeout

        for _ in range(10):
            with pytest.raises(QueryTimeout):
                erp_db.query(PROFIT_SQL, strategy=FULL, timeout_ms=0.0)
        assert erp_db.health().breakers["cache"].state == "closed"
