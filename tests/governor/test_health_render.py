"""HealthReport rendering: "no reading yet" is not the same as "0 bytes".

Regression: the budget line used ``{tracked_bytes or 0}B``, which collapses
``None`` (the budget exists but nothing has measured against it) into a
genuine 0-byte measurement — an operator reading ``tracked=0B`` would
conclude the tracker ran and found nothing, when in fact it never ran.
"""

from repro import GovernorConfig
from repro.governor import HealthReport, ResourceGovernor


def _report(tracked_bytes, memory_budget_bytes):
    return HealthReport(
        state="healthy",
        modes=[],
        breakers={},
        timeouts=0,
        cancellations=0,
        writes_rejected=0,
        degraded_queries=0,
        retries={},
        sheds={},
        shed_bytes=0,
        tracked_bytes=tracked_bytes,
        memory_budget_bytes=memory_budget_bytes,
    )


def test_untracked_renders_distinct_from_zero_bytes():
    untracked = _report(None, 1024).render()
    zero = _report(0, 1024).render()
    assert "tracked=untracked" in untracked
    assert "tracked=0B" in zero
    assert "tracked=0B" not in untracked


def test_zero_budget_line_still_prints_budget_and_sheds():
    line = [
        l for l in _report(0, 1024).render().splitlines() if "memory:" in l
    ][0]
    assert "budget=1024B" in line
    assert "shed_bytes=0" in line


def test_governor_health_without_reading_reports_untracked():
    governor = ResourceGovernor(GovernorConfig(memory_budget_mb=1.0))
    report = governor.health()  # nothing has measured yet
    assert report.tracked_bytes is None
    assert "tracked=untracked" in report.render()
    after = governor.health(tracked_bytes=0)
    assert "tracked=0B" in after.render()
