"""Circuit breaker and retry policy units (fake clocks, seeded RNGs)."""

import random

import pytest

from repro.governor.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    STATE_CODES,
)
from repro.governor.retry import RetryPolicy


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=3, reset_after_s=10.0, transitions=None):
    clock = FakeClock()
    breaker = CircuitBreaker(
        "test",
        threshold=threshold,
        reset_after_s=reset_after_s,
        clock=clock,
        on_transition=(
            (lambda name, state: transitions.append((name, state)))
            if transitions is not None
            else None
        ),
    )
    return breaker, clock


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_threshold_consecutive_failures_open(self):
        breaker, _ = make_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure(OSError("disk full"))
        assert breaker.state == OPEN
        assert not breaker.allow()
        snap = breaker.snapshot()
        assert snap.opened_total == 1
        assert snap.last_error == "OSError: disk full"

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_admits_a_single_probe(self):
        breaker, clock = make_breaker(threshold=1, reset_after_s=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # probe outstanding: everyone else waits

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset_after_s=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset_after_s=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.snapshot().opened_total == 2

    def test_stale_probe_is_replaced_after_a_full_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset_after_s=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # probe claims the slot, then dies silently
        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()  # replacement probe admitted

    def test_transition_callback_sequence(self):
        transitions = []
        breaker, clock = make_breaker(
            threshold=2, reset_after_s=5.0, transitions=transitions
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        assert transitions == [
            ("test", OPEN),
            ("test", HALF_OPEN),
            ("test", CLOSED),
        ]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("bad", threshold=0)

    def test_state_codes_cover_all_states(self):
        assert set(STATE_CODES) == {CLOSED, OPEN, HALF_OPEN}
        assert sorted(STATE_CODES.values()) == [0, 1, 2]


class TestRetryPolicy:
    def test_succeeds_first_try_without_sleeping(self):
        sleeps = []
        policy = RetryPolicy(attempts=3)
        result = policy.call(lambda: "ok", sleep=sleeps.append)
        assert result == "ok"
        assert sleeps == []

    def test_retries_transient_oserror_then_succeeds(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "recovered"

        policy = RetryPolicy(attempts=3, backoff_ms=1.0, jitter=0.0)
        assert policy.call(flaky, sleep=sleeps.append) == "recovered"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_exhausted_attempts_reraise_the_last_error(self):
        policy = RetryPolicy(attempts=2, backoff_ms=0.1)

        def always_fails():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            policy.call(always_fails, sleep=lambda s: None)

    def test_non_retryable_exceptions_propagate_immediately(self):
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise ValueError("logic bug")

        policy = RetryPolicy(attempts=5)
        with pytest.raises(ValueError):
            policy.call(fails, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_on_retry_called_per_retry_with_attempt_and_error(self):
        seen = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("nope")
            return None

        policy = RetryPolicy(attempts=3)
        policy.call(
            flaky,
            on_retry=lambda attempt, err: seen.append((attempt, str(err))),
            sleep=lambda s: None,
        )
        assert [a for a, _ in seen] == [0, 1]
        assert all(msg == "nope" for _, msg in seen)

    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            attempts=10, backoff_ms=1.0, cap_ms=4.0, jitter=0.0
        )
        delays_ms = [policy.delay_s(n) * 1000.0 for n in range(5)]
        assert delays_ms == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(
            attempts=3, backoff_ms=8.0, cap_ms=1000.0, jitter=0.5
        )
        rng = random.Random(7)
        for _ in range(200):
            delay_ms = policy.delay_s(0, rng=rng) * 1000.0
            assert 4.0 <= delay_ms <= 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
