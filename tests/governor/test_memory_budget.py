"""Memory budgets: tracked bytes, shedding order, and budget enforcement.

Acceptance: with a budget of roughly half the unbudgeted footprint, the
shedder keeps tracked bytes under the budget across a query workload, and
query results remain correct throughout.
"""

import time

import pytest

from repro import Database, ExecutionStrategy, GovernorConfig

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

# Distinct statements so the workload populates several cache entries,
# delta memos, plans, and parse-cache slots.
WORKLOAD_SQL = [
    PROFIT_SQL,
    HEADER_ITEM_SQL,
    (
        "SELECT h.year AS year, SUM(i.price) AS profit "
        "FROM header h, item i WHERE h.hid = i.hid GROUP BY h.year"
    ),
    (
        "SELECT d.lang AS lang, COUNT(*) AS n "
        "FROM header h, item i, category d "
        "WHERE h.hid = i.hid AND i.cid = d.cid GROUP BY d.lang"
    ),
]


def _populated_db(**kwargs) -> Database:
    db = make_erp_db(**kwargs)
    load_erp(db, n_headers=8, merge=True)
    load_erp(db, n_headers=3, start_hid=100, merge=False)
    return db


def _run_workload(db: Database, repeats: int = 2):
    rows = {}
    for _ in range(repeats):
        for sql in WORKLOAD_SQL:
            rows[sql] = db.query(sql, strategy=FULL).rows
    return rows


class TestTrackedBytes:
    def test_accounts_entries_memos_and_caches(self):
        db = _populated_db()
        # The parse cache is process-global, so a fresh database may
        # already track a few KB from earlier tests: measure growth.
        baseline = db.cache.tracked_bytes()
        _run_workload(db)
        tracked = db.cache.tracked_bytes()
        assert tracked > baseline
        # Dropping everything brings the tracked footprint to (near) zero.
        shed = db.cache.shed_to_budget(0)
        assert sum(shed.values()) > 0
        assert db.cache.tracked_bytes() == 0


class TestSheddingOrder:
    def test_recycled_subjoins_shed_before_memos_and_entries(self):
        db = _populated_db()
        _run_workload(db)
        assert db.cache.recycler.entry_count() > 0
        entries_before = db.cache.entry_count()
        memos_before = sum(
            1 for e in db.cache.entries() if e.delta_memo is not None
        )
        # A budget just below the full footprint: the recycled subjoins
        # (cheapest-to-rebuild derived state) cover it alone.
        shed = db.cache.shed_to_budget(db.cache.tracked_bytes() - 1)
        assert shed["recycler"] >= 1
        assert shed["memo"] == 0
        assert shed["entry"] == 0
        assert db.cache.recycler.entry_count() == 0
        assert db.cache.entry_count() == entries_before
        assert (
            sum(1 for e in db.cache.entries() if e.delta_memo is not None)
            == memos_before
        )

    def test_memos_shed_before_entries(self):
        db = _populated_db()
        _run_workload(db)
        with_memos = [
            e for e in db.cache.entries() if e.delta_memo is not None
        ]
        assert with_memos, "workload should have built delta memos"
        entries_before = db.cache.entry_count()
        # Squeeze past the recycler stage: budget below the footprint minus
        # everything the recycler can free, so at least one memo must go.
        recycler_bytes = db.cache.recycler.nbytes()
        shed = db.cache.shed_to_budget(
            db.cache.tracked_bytes() - recycler_bytes - 1
        )
        assert shed["memo"] >= 1
        assert shed["entry"] == 0
        assert db.cache.entry_count() == entries_before

    def test_entries_shed_when_memos_are_not_enough(self):
        db = _populated_db()
        _run_workload(db)
        # Budget far below the memo savings: entries must go too.
        shed = db.cache.shed_to_budget(1)
        assert shed["entry"] >= 1
        assert shed["plan"] >= 1
        assert db.cache.tracked_bytes() <= 1

    def test_shedding_is_recorded_on_the_governor(self):
        db = _populated_db(governor=GovernorConfig())
        _run_workload(db)
        db.cache.shed_to_budget(0)
        health = db.health()
        assert sum(health.sheds.values()) > 0
        assert health.shed_bytes > 0


class TestBudgetEnforcement:
    def test_half_footprint_budget_is_kept_across_the_workload(self):
        # Measure the unbudgeted footprint of the workload first.
        free_db = _populated_db()
        expected = _run_workload(free_db)
        footprint = free_db.cache.tracked_bytes()
        assert footprint > 0

        budget_bytes = footprint // 2
        db = _populated_db(
            governor=GovernorConfig(
                memory_budget_mb=budget_bytes / (1024.0 * 1024.0)
            )
        )
        for _ in range(3):
            for sql in WORKLOAD_SQL:
                assert db.query(sql, strategy=FULL).rows == expected[sql]
                assert db.cache.tracked_bytes() <= budget_bytes
        health = db.health()
        assert health.memory_budget_bytes == budget_bytes
        assert sum(health.sheds.values()) > 0

    def test_budgeted_hit_latency_within_2x_of_unbudgeted(self):
        free_db = _populated_db()
        _run_workload(free_db)
        footprint = free_db.cache.tracked_bytes()
        db = _populated_db(
            governor=GovernorConfig(
                memory_budget_mb=(footprint // 2) / (1024.0 * 1024.0)
            )
        )
        _run_workload(db)

        def best_hit_seconds(target):
            best = float("inf")
            for _ in range(30):
                started = time.perf_counter()
                target.query(PROFIT_SQL, strategy=FULL)
                best = min(best, time.perf_counter() - started)
            return best

        base = best_hit_seconds(free_db)
        budgeted = best_hit_seconds(db)
        # Half-footprint shedding drops memos/plan slots, not the hot
        # entries, so a steady-state hit stays within 2x (small absolute
        # slack absorbs scheduler noise at sub-millisecond latencies).
        assert budgeted <= base * 2 + 0.002

    def test_no_budget_means_no_shedding(self):
        db = _populated_db(governor=GovernorConfig())
        _run_workload(db)
        assert db.health().sheds == {}

    def test_results_stay_correct_under_extreme_pressure(self):
        db = _populated_db(
            governor=GovernorConfig(memory_budget_mb=0.001)  # ~1 KB
        )
        for sql in WORKLOAD_SQL:
            budgeted = db.query(sql, strategy=FULL).rows
            assert budgeted == db.query(sql, strategy=UNCACHED).rows
