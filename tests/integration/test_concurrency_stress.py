"""Multi-threaded stress test: concurrent queries, inserts, and merges.

Hammers one shared :class:`Database` with parallel query threads while a
writer inserts business objects and a maintenance thread runs periodic
delta merges.  The run asserts three things:

* **liveness/safety** — no thread raises, no deadlock (the run completes);
* **monotonicity** — the workload is insert-only, so every query thread
  must observe non-decreasing COUNT(*) over time (a dip would mean a torn
  read of partially applied state);
* **no lost updates** — the final aggregates equal a serial reference
  computed from the recorded inserts, in cached and uncached mode alike.

``STRESS_SECONDS`` scales the duration: the default keeps the tier-1 suite
fast, CI runs the full 30-second soak (see .github/workflows/ci.yml).
"""

import os
import threading
import time
from collections import defaultdict

import pytest

from repro import Database, ExecutionStrategy, ParallelConfig

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, make_erp_db

STRESS_SECONDS = float(os.environ.get("STRESS_SECONDS", "2.5"))
N_QUERY_THREADS = 4
N_CATEGORIES = 3
ITEMS_PER_OBJECT = 4


def _insert_object(db: Database, hid: int, log: list) -> None:
    items = [
        {
            "iid": hid * ITEMS_PER_OBJECT + k,
            "hid": hid,
            "cid": (hid + k) % N_CATEGORIES,
            "price": float((hid % 7) + k + 1),
        }
        for k in range(ITEMS_PER_OBJECT)
    ]
    db.insert_business_object(
        "header", {"hid": hid, "year": 2013 + hid % 3}, "item", items
    )
    log.extend(items)


def test_queries_inserts_merges_concurrently():
    db = make_erp_db(
        parallel=ParallelConfig(n_workers=2, min_combos=2, min_rows=64)
    )
    for cid in range(N_CATEGORIES):
        db.insert("category", {"cid": cid, "name": f"cat{cid}", "lang": "ENG"})
    inserted_items: list = []
    _insert_object(db, 0, inserted_items)  # never-empty starting point
    db.merge()

    stop = threading.Event()
    errors: list = []
    strategies = [
        ExecutionStrategy.UNCACHED,
        ExecutionStrategy.CACHED_NO_PRUNING,
        ExecutionStrategy.CACHED_EMPTY_DELTA,
        ExecutionStrategy.CACHED_FULL_PRUNING,
    ]

    def query_worker(index: int) -> None:
        sql = PROFIT_SQL if index % 2 == 0 else HEADER_ITEM_SQL
        strategy = strategies[index % len(strategies)]
        last_count = 0
        try:
            while not stop.is_set():
                result = db.query(sql, strategy=strategy)
                total = sum(row[2] for row in result.rows)
                # Insert-only workload: COUNT(*) can never go backwards.
                if total < last_count:
                    raise AssertionError(
                        f"query thread {index} saw count drop "
                        f"{last_count} -> {total}"
                    )
                last_count = total
        except BaseException as exc:  # noqa: BLE001 - surfaced in main thread
            errors.append(exc)
            stop.set()

    def writer_worker() -> None:
        hid = 1
        try:
            while not stop.is_set():
                _insert_object(db, hid, inserted_items)
                hid += 1
                if hid % 50 == 0:
                    time.sleep(0)  # yield so query threads interleave
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
            stop.set()

    def merge_worker() -> None:
        try:
            while not stop.wait(timeout=max(STRESS_SECONDS / 15, 0.1)):
                db.merge()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
            stop.set()

    threads = [
        threading.Thread(target=query_worker, args=(i,), name=f"query-{i}")
        for i in range(N_QUERY_THREADS)
    ]
    threads.append(threading.Thread(target=writer_worker, name="writer"))
    threads.append(threading.Thread(target=merge_worker, name="merger"))
    for t in threads:
        t.start()
    time.sleep(STRESS_SECONDS)
    stop.set()
    for t in threads:
        t.join(timeout=30)
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"threads did not finish: {hung}"
    if errors:
        raise errors[0]

    # ------------------------------------------------------------------
    # Serial reference: ground-truth aggregates from the recorded inserts.
    # ------------------------------------------------------------------
    expected = defaultdict(lambda: [0.0, 0])
    for item in inserted_items:
        bucket = expected[item["cid"]]
        bucket[0] += item["price"]
        bucket[1] += 1
    total_items = len(inserted_items)
    assert total_items >= ITEMS_PER_OBJECT  # writer made progress

    db.merge()  # drain the deltas one last time
    for strategy in strategies:
        result = db.query(HEADER_ITEM_SQL, strategy=strategy)
        observed = {row[0]: (row[1], row[2]) for row in result.rows}
        assert observed == {
            cid: (pytest.approx(v[0]), v[1]) for cid, v in expected.items()
        }, f"strategy {strategy} diverged from the serial reference"
        assert sum(row[2] for row in result.rows) == total_items  # no lost updates

    # A second, freshly built database replaying the same rows serially
    # must agree with the concurrently grown one — full-system check that
    # locking preserved every write, not just the aggregate invariants.
    reference = make_erp_db()
    for cid in range(N_CATEGORIES):
        reference.insert("category", {"cid": cid, "name": f"cat{cid}", "lang": "ENG"})
    headers_seen = set()
    for item in inserted_items:
        if item["hid"] not in headers_seen:
            headers_seen.add(item["hid"])
            reference.insert(
                "header", {"hid": item["hid"], "year": 2013 + item["hid"] % 3}
            )
        reference.insert("item", dict(item))
    reference.merge()
    ref_result = reference.query(HEADER_ITEM_SQL)
    live_result = db.query(HEADER_ITEM_SQL)
    assert sorted(live_result.rows) == sorted(ref_result.rows)
    db.close()
