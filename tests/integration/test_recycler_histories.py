"""Randomized overlapping-query histories: bit-identity across engines.

One seeded history — interleaved overlapping queries, business-object
inserts, and merges — replayed on every engine configuration in
{serial, parallel} x {memo on, memo off} x {recycler on, recycler off}.
Every configuration must produce byte-for-byte identical result streams
(values, Python types, row order), and each matches the uncached truth
computed on the same database state.  A second test aims concurrent
overlapping readers at one shared database while a writer inserts, then
asserts cached/uncached convergence.
"""

import random
import threading

import pytest

from repro import CacheConfig, Database, ExecutionStrategy, ParallelConfig

from ..conftest import load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

#: Overlapping shapes: the first four share one 3-table join core, the last
#: two share the header/item core — different group-bys and aggregates.
QUERY_POOL = [
    "SELECT d.name AS category, SUM(i.price) AS profit, COUNT(*) AS n "
    "FROM header h, item i, category d "
    "WHERE h.hid = i.hid AND i.cid = d.cid GROUP BY d.name",
    "SELECT d.lang AS lang, COUNT(*) AS n "
    "FROM header h, item i, category d "
    "WHERE h.hid = i.hid AND i.cid = d.cid GROUP BY d.lang",
    "SELECT h.year AS year, SUM(i.price) AS profit "
    "FROM header h, item i, category d "
    "WHERE h.hid = i.hid AND i.cid = d.cid GROUP BY h.year",
    "SELECT d.name AS category, COUNT(*) AS n "
    "FROM header h, item i, category d "
    "WHERE h.hid = i.hid AND i.cid = d.cid AND h.year = 2013 "
    "GROUP BY d.name",
    "SELECT i.cid AS cid, SUM(i.price) AS profit, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.cid",
    "SELECT h.year AS year, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY h.year",
]

CONFIGS = {
    "serial": dict(),
    "serial-no-recycler": dict(
        cache_config=CacheConfig(subjoin_recycler=False)
    ),
    "serial-no-memo": dict(cache_config=CacheConfig(delta_memo=False)),
    "serial-no-memo-no-recycler": dict(
        cache_config=CacheConfig(delta_memo=False, subjoin_recycler=False)
    ),
    "parallel": dict(
        parallel=ParallelConfig(n_workers=2, min_combos=2, min_rows=1)
    ),
    "parallel-no-recycler": dict(
        cache_config=CacheConfig(subjoin_recycler=False),
        parallel=ParallelConfig(n_workers=2, min_combos=2, min_rows=1),
    ),
}


def _typed(rows):
    return [tuple((type(v).__name__, v) for v in row) for row in rows]


def _history(seed: int, length: int = 36):
    """The seeded event stream: (kind, payload) tuples."""
    rng = random.Random(seed)
    events = []
    hid = 1000
    for _ in range(length):
        roll = rng.random()
        if roll < 0.55:
            events.append(("query", rng.choice(QUERY_POOL)))
        elif roll < 0.9:
            events.append(("insert", (hid, rng.randint(1, 3))))
            hid += 10
        else:
            events.append(("merge", None))
    # Always end with a write and then every query: the final sweep runs
    # against a guaranteed non-empty delta with no interleaved DML, so the
    # overlapping shapes deterministically recycle each other's subjoins
    # (and the final-state comparison is total).
    events.append(("insert", (hid, 2)))
    for sql in QUERY_POOL:
        events.append(("query", sql))
    return events


def _replay(events, check_uncached: bool, **db_kwargs):
    """Run the history; returns the stream of typed query results."""
    db = make_erp_db(**db_kwargs)
    load_erp(db, n_headers=6, merge=True)
    load_erp(db, n_headers=2, start_hid=100, merge=False)
    stream = []
    for kind, payload in events:
        if kind == "query":
            result = db.query(payload, strategy=FULL)
            stream.append(_typed(result.rows))
            if check_uncached:
                truth = db.query(payload, strategy=UNCACHED)
                assert _typed(result.rows) == _typed(truth.rows), payload
        elif kind == "insert":
            start_hid, n = payload
            load_erp(db, n_headers=n, start_hid=start_hid, merge=False)
        else:
            db.merge()
    recycler = db.cache.counters_snapshot()
    db.close()
    return stream, recycler


@pytest.mark.parametrize("seed", [3, 21])
def test_history_bit_identical_across_configurations(seed):
    events = _history(seed)
    reference, counters = _replay(events, check_uncached=True)
    # The reference run (recycler on) actually exercised cross-query reuse.
    assert counters["recycler_hits"] > 0
    for name, kwargs in CONFIGS.items():
        stream, _counters = _replay(events, check_uncached=False, **kwargs)
        assert stream == reference, f"configuration {name} diverged"


def test_concurrent_overlapping_readers_with_writer():
    db = make_erp_db(
        parallel=ParallelConfig(n_workers=2, min_combos=2, min_rows=1)
    )
    load_erp(db, n_headers=6, merge=True)
    load_erp(db, n_headers=2, start_hid=100, merge=False)

    stop = threading.Event()
    errors = []

    def writer():
        hid = 5000
        while not stop.is_set():
            try:
                load_erp(db, n_headers=1, start_hid=hid, merge=False)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return
            hid += 10

    def reader(seed: int):
        rng = random.Random(seed)
        while not stop.is_set():
            sql = rng.choice(QUERY_POOL)
            try:
                # Snapshot isolation pins both runs of one loop iteration
                # to whatever state the writer has committed; each must
                # agree with the uncached truth *at its own snapshot*, so
                # comparing aggregate totals monotonically suffices here.
                rows = db.query(sql, strategy=FULL).rows
                assert rows, sql
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    threads = [threading.Thread(target=writer)]
    threads += [threading.Thread(target=reader, args=(k,)) for k in range(3)]
    for t in threads:
        t.start()
    stop_timer = threading.Timer(1.5, stop.set)
    stop_timer.start()
    for t in threads:
        t.join(timeout=30)
    stop_timer.cancel()
    stop.set()
    assert not errors

    # Quiescent convergence: the cached answers equal the uncached truth
    # bit-for-bit on the final state, for every overlapping shape.
    for sql in QUERY_POOL:
        cached = db.query(sql, strategy=FULL)
        truth = db.query(sql, strategy=UNCACHED)
        assert _typed(cached.rows) == _typed(truth.rows), sql
    assert db.cache.counters_snapshot()["recycler_stored"] > 0
