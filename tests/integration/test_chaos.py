"""Chaos smoke: a fault matrix under a threaded mixed workload.

Each scenario arms one fault point with one failure shape (a small
injected delay, or seeded probabilistic transient I/O errors) and runs a
short concurrent read/write workload against it.  The contract:

* only *typed* errors surface (``DurabilityError`` once retries are
  exhausted, ``WriteRejectedError`` while the WAL breaker is open,
  ``FaultError`` from a raising cache path) — never a torn engine, a
  deadlock, or an anonymous crash;
* reads keep returning correct results throughout;
* after the fault is disarmed, the final cached results match an
  uncached oracle, and a durable database reopens with no committed row
  lost.

``CHAOS_SECONDS`` scales the soak; CI's chaos job runs it longer than
the tier-1 default (see .github/workflows/ci.yml).
"""

import os
import threading

import pytest

from repro import (
    Database,
    ExecutionStrategy,
    FaultInjector,
    GovernorConfig,
    WriteRejectedError,
)
from repro.errors import DurabilityError, FaultError, ReproError

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

CHAOS_SECONDS = float(os.environ.get("CHAOS_SECONDS", "1.0"))

CHAOS_GOVERNOR = GovernorConfig(
    breaker_threshold=3,
    breaker_reset_ms=50.0,
    wal_retries=2,
    retry_backoff_ms=0.01,
)

# (fault point, arm kwargs) — each entry is one chaos scenario.  Delays
# perturb schedules; probabilistic io_error exercises retry + breaker.
FAULT_MATRIX = [
    ("wal.append", dict(mode="delay", delay=0.002, times=None)),
    ("wal.append", dict(mode="io_error", probability=0.3, times=None)),
    ("checkpoint.write", dict(mode="io_error", probability=0.3, times=None)),
    ("cache.compensation", dict(mode="raise", probability=0.3, times=None)),
    ("merge.stage", dict(mode="delay", delay=0.002, times=None)),
]

# Errors a chaos run is allowed to surface.  Anything else is a bug.
TYPED_ERRORS = (DurabilityError, WriteRejectedError, FaultError)


def _writer(db, stop, errors, next_hid):
    hid = next_hid
    while not stop.is_set():
        try:
            load_erp(db, n_headers=1, start_hid=hid, merge=False)
        except TYPED_ERRORS:
            pass  # typed rejection/exhaustion is within contract
        except ReproError as exc:  # pragma: no cover - contract violation
            errors.append(exc)
        hid += 1


def _merger(db, stop, errors):
    while not stop.is_set():
        try:
            db.merge()
        except TYPED_ERRORS:
            pass
        except ReproError as exc:  # pragma: no cover - contract violation
            errors.append(exc)
        stop.wait(0.02)


def _reader(db, stop, errors):
    # Cached-vs-uncached equality is only checked in the quiescent phase:
    # under live writers two queries legitimately see different commits.
    while not stop.is_set():
        for sql in (PROFIT_SQL, HEADER_ITEM_SQL):
            for strategy in (FULL, UNCACHED):
                try:
                    db.query(sql, strategy=strategy)
                except TYPED_ERRORS:
                    pass
                except ReproError as exc:  # pragma: no cover
                    errors.append(exc)


def _run_chaos(db, faults, point, arm_kwargs):
    load_erp(db, n_headers=4, merge=True)
    faults.arm(point, **arm_kwargs)

    stop = threading.Event()
    errors = []
    threads = [
        threading.Thread(target=_writer, args=(db, stop, errors, 1000)),
        threading.Thread(target=_merger, args=(db, stop, errors)),
        threading.Thread(target=_reader, args=(db, stop, errors)),
        threading.Thread(target=_reader, args=(db, stop, errors)),
    ]
    for t in threads:
        t.start()
    stop.wait(CHAOS_SECONDS)
    stop.set()
    for t in threads:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "workload thread hung"
    assert errors == [], f"untyped errors escaped: {errors!r}"

    # Fault clears; after the breaker cooldown the engine must fully heal.
    faults.disarm(point)
    stop2 = threading.Event()
    stop2.wait(CHAOS_GOVERNOR.breaker_reset_ms / 1000.0 + 0.05)
    db.insert("category", {"cid": 900, "name": "probe", "lang": "ENG"})
    for sql in (PROFIT_SQL, HEADER_ITEM_SQL):
        assert (
            db.query(sql, strategy=FULL).rows
            == db.query(sql, strategy=UNCACHED).rows
        )
    assert db.health().modes == []


@pytest.mark.parametrize(
    "point,arm_kwargs",
    FAULT_MATRIX,
    ids=[f"{p}-{k['mode']}" for p, k in FAULT_MATRIX],
)
def test_chaos_in_memory(point, arm_kwargs):
    faults = FaultInjector(seed=1234)
    db = make_erp_db(
        fault_injector=faults, governor=CHAOS_GOVERNOR, n_workers=2
    )
    _run_chaos(db, faults, point, arm_kwargs)


def test_chaos_durable_database_reopens_cleanly(tmp_path):
    """A WAL-fault soak on disk: whatever committed must survive reopen."""
    faults = FaultInjector(seed=99)
    db = make_erp_db(
        path=tmp_path / "db", fault_injector=faults, governor=CHAOS_GOVERNOR
    )
    _run_chaos(
        db, faults, "wal.append", dict(mode="io_error", probability=0.3, times=None)
    )
    expected = db.query(PROFIT_SQL, strategy=UNCACHED).rows
    db.close()
    recovered = Database.open(tmp_path / "db")
    try:
        assert recovered.query(PROFIT_SQL, strategy=UNCACHED).rows == expected
    finally:
        recovered.close()
