"""End-to-end lifecycle scenarios exercising many subsystems together."""

import pytest

from repro import CacheConfig, Database, ExecutionStrategy, MaintenanceMode
from repro.storage import threshold_aging
from repro.workloads import CH_QUERIES, ChBenchmark, ChConfig, ErpConfig, ErpWorkload

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED
ALL = list(ExecutionStrategy)


class TestQuarterCloseScenario:
    """A fiscal-quarter lifecycle: daily business, corrections, nightly
    merges, recurring profit-and-loss analysis — everything stays exact
    and the cache entry survives the whole quarter."""

    def test_quarter(self):
        db = Database()
        workload = ErpWorkload(db, ErpConfig(seed=99, n_categories=8))
        sql = workload.profit_and_loss_sql(year=2013)
        workload.insert_objects(50, year=2013, merge_after=True)
        db.query(sql, strategy=FULL)
        entry_before = db.cache.entries()[0]
        for day in range(6):
            workload.insert_objects(10, year=2013)  # the day's business
            if day % 2 == 0:
                # a correction: reprice one existing item
                db.update("Item", day * 3 + 1, {"Price": 1.0})
            assert db.query(sql, strategy=FULL) == db.query(sql, strategy=UNCACHED)
            if day % 3 == 2:
                db.merge()  # nightly merge
        assert db.cache.entries()[0] is entry_before  # never rebuilt
        stats = db.statistics()
        assert stats.cache.total_maintenance_runs > 0
        assert stats.cache.hit_rate > 0.5

    def test_quarter_with_update_delta_layout(self):
        db = Database()
        db.create_table(
            "Header",
            [("HeaderID", "INT"), ("FiscalYear", "INT")],
            primary_key="HeaderID",
            separate_update_delta=True,
        )
        db.create_table(
            "Item",
            [("ItemID", "INT"), ("HeaderID", "INT"), ("Price", "FLOAT")],
            primary_key="ItemID",
            separate_update_delta=True,
        )
        db.add_matching_dependency("Header", "HeaderID", "Item", "HeaderID")
        sql = (
            "SELECT h.FiscalYear AS y, SUM(i.Price) AS s "
            "FROM Header h, Item i WHERE h.HeaderID = i.HeaderID GROUP BY h.FiscalYear"
        )
        iid = 0
        for hid in range(30):
            db.insert_business_object(
                "Header",
                {"HeaderID": hid, "FiscalYear": 2013},
                "Item",
                [{"ItemID": iid + k, "HeaderID": hid, "Price": float(k)} for k in range(3)],
            )
            iid += 3
        db.merge()
        db.query(sql, strategy=FULL)
        for round_no in range(4):
            db.insert_business_object(
                "Header",
                {"HeaderID": 100 + round_no, "FiscalYear": 2014},
                "Item",
                [{"ItemID": iid, "HeaderID": 100 + round_no, "Price": 2.0}],
            )
            iid += 1
            db.update("Item", round_no * 3, {"Price": 0.0})
            for strategy in ALL:
                assert db.query(sql, strategy=strategy) == db.query(
                    sql, strategy=UNCACHED
                )
            db.merge()


class TestChBenchWithModifications:
    """The CH-benCHmark dataset under deliveries (updates) and cancellations
    (deletes) — all four queries stay strategy-equivalent."""

    @pytest.fixture(scope="class")
    def ch_db(self):
        db = Database()
        ChBenchmark(db, ChConfig(seed=5)).load()
        for name in CH_QUERIES:
            db.query(CH_QUERIES[name], strategy=FULL)  # warm entries
        # deliveries: set carrier on some orders (update)
        for o_key in range(1, 20, 3):
            db.update("orders", o_key, {"o_carrier_id": 99})
        # cancellations: drop a few neworder rows (delete)
        neworder = db.table("neworder")
        for no_key in range(1, 10):
            if neworder.get_row(no_key) is not None:
                db.delete("neworder", no_key)
        return db

    @pytest.mark.parametrize("name", list(CH_QUERIES))
    def test_queries_exact_after_modifications(self, ch_db, name):
        reference = ch_db.query(CH_QUERIES[name], strategy=UNCACHED)
        for strategy in ALL:
            assert ch_db.query(CH_QUERIES[name], strategy=strategy) == reference

    def test_merge_after_modifications(self, ch_db):
        ch_db.merge()
        for name in CH_QUERIES:
            assert ch_db.query(CH_QUERIES[name], strategy=FULL) == ch_db.query(
                CH_QUERIES[name], strategy=UNCACHED
            )


class TestAgedDropModeScenario:
    """Hot/cold partitioning combined with DROP-mode maintenance."""

    def test_lifecycle(self):
        db = Database(
            cache_config=CacheConfig(maintenance_mode=MaintenanceMode.DROP)
        )
        workload = ErpWorkload(
            db,
            ErpConfig(seed=17, n_categories=5, years=(2012, 2013, 2014)),
            header_aging=threshold_aging("FiscalYear", 2014),
            item_aging=threshold_aging("FiscalYear", 2014),
        )
        sql = workload.header_item_sql()
        workload.insert_objects(40, merge_after=True)
        db.query(sql, strategy=FULL)
        assert db.cache.entry_count() == 4  # 2x2 temperature combinations
        workload.insert_objects(5, year=2014)
        db.merge("Item", group_name="hot")
        # DROP mode removed the entries whose Item hot main was rebuilt.
        assert db.cache.entry_count() == 2
        result = db.query(sql, strategy=FULL)
        assert db.cache.entry_count() == 4  # recreated on demand
        assert result == db.query(sql, strategy=UNCACHED)


class TestLongRunningReader:
    def test_reader_spanning_merge_sees_its_snapshot(self):
        db = Database()
        db.create_table("t", [("k", "INT"), ("v", "FLOAT")], primary_key="k")
        for k in range(10):
            db.insert("t", {"k": k, "v": 1.0})
        sql = "SELECT SUM(v) AS s, COUNT(*) AS n FROM t"
        db.query(sql, strategy=FULL)
        reader = db.begin()  # long-running analytical transaction
        for k in range(10, 20):
            db.insert("t", {"k": k, "v": 1.0})
        db.merge()
        # After the merge the entry is anchored past the reader's snapshot.
        result = db.query(sql, strategy=FULL, txn=reader)
        assert result.rows == [(10.0, 10)]
        fresh = db.query(sql, strategy=FULL)
        assert fresh.rows == [(20.0, 20)]
