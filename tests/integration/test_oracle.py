"""Oracle tests: the engine against a brute-force reference implementation.

The reference decodes every visible row into plain dicts, joins with nested
loops, filters and groups in pure Python — no dictionaries, no partitions,
no cache.  Hypothesis generates datasets and query parameters; every
execution strategy must match the oracle exactly.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, ExecutionStrategy

STRATEGIES = list(ExecutionStrategy)


def visible_rows(db, table_name):
    table = db.table(table_name)
    snapshot = db.transactions.global_snapshot()
    rows = []
    for partition in table.partitions():
        for idx in partition.visible_rows(snapshot):
            rows.append(partition.get_row(int(idx)))
    return rows


def oracle_join_aggregate(db, year_filter, min_price):
    """Reference result for the parametrized header/item query."""
    headers = {row["hid"]: row for row in visible_rows(db, "header")}
    groups = {}
    for item in visible_rows(db, "item"):
        header = headers.get(item["hid"])
        if header is None or item["hid"] is None:
            continue
        if year_filter is not None and header["year"] != year_filter:
            continue
        if min_price is not None and not (
            item["price"] is not None and item["price"] > min_price
        ):
            continue
        key = item["cid"]
        entry = groups.setdefault(key, [0.0, 0, 0])  # sum, nonnull, count(*)
        if item["price"] is not None:
            entry[0] += item["price"]
            entry[1] += 1
        entry[2] += 1
    out = {}
    for key, (total, nonnull, count) in groups.items():
        out[key] = (total if nonnull else None, count)
    return out


def build_sql(year_filter, min_price):
    where = ["h.hid = i.hid"]
    if year_filter is not None:
        where.append(f"h.year = {year_filter}")
    if min_price is not None:
        where.append(f"i.price > {min_price}")
    return (
        "SELECT i.cid AS cid, SUM(i.price) AS s, COUNT(*) AS n "
        f"FROM header h, item i WHERE {' AND '.join(where)} GROUP BY i.cid"
    )


row_strategy = st.tuples(
    st.integers(0, 8),                       # header selector
    st.one_of(st.none(), st.integers(0, 3)), # cid (None allowed)
    st.one_of(st.none(), st.floats(0, 100, allow_nan=False)),  # price
)


@settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    items=st.lists(row_strategy, max_size=50),
    merge_at=st.integers(0, 50),
    year_filter=st.one_of(st.none(), st.sampled_from([2012, 2013])),
    min_price=st.one_of(st.none(), st.floats(0, 50, allow_nan=False)),
)
def test_strategies_match_bruteforce_oracle(items, merge_at, year_filter, min_price):
    db = Database()
    db.create_table("header", [("hid", "INT"), ("year", "INT")], primary_key="hid")
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("cid", "INT"), ("price", "FLOAT")],
        primary_key="iid",
    )
    db.add_matching_dependency("header", "hid", "item", "hid")
    for hid in range(9):
        db.insert("header", {"hid": hid, "year": 2012 + hid % 2})
    for iid, (hid, cid, price) in enumerate(items):
        db.insert("item", {"iid": iid, "hid": hid, "cid": cid, "price": price})
        if iid + 1 == merge_at:
            db.merge()
    expected = oracle_join_aggregate(db, year_filter, min_price)
    sql = build_sql(year_filter, min_price)
    for strategy in STRATEGIES:
        result = db.query(sql, strategy=strategy)
        got = {row[0]: (row[1], row[2]) for row in result.rows}
        assert set(got) == set(expected), strategy
        for key in expected:
            exp_sum, exp_n = expected[key]
            got_sum, got_n = got[key]
            assert got_n == exp_n, (strategy, key)
            if exp_sum is None:
                assert got_sum is None
            else:
                assert math.isclose(got_sum, exp_sum, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    values=st.lists(
        st.tuples(st.sampled_from("abc"), st.one_of(st.none(), st.integers(-50, 50))),
        max_size=40,
    ),
    merge=st.booleans(),
)
def test_single_table_min_max_avg_oracle(values, merge):
    db = Database()
    db.create_table("t", [("k", "INT"), ("g", "TEXT"), ("v", "INT")], primary_key="k")
    for k, (g, v) in enumerate(values):
        db.insert("t", {"k": k, "g": g, "v": v})
    if merge:
        db.merge()
    result = db.query(
        "SELECT g, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS mean FROM t GROUP BY g"
    )
    expected = {}
    for g, v in values:
        expected.setdefault(g, []).append(v)
    assert len(result) == len(expected)
    for g, lo, hi, mean in result.rows:
        non_null = [v for v in expected[g] if v is not None]
        if non_null:
            assert lo == min(non_null)
            assert hi == max(non_null)
            assert math.isclose(mean, sum(non_null) / len(non_null))
        else:
            assert lo is None and hi is None and mean is None
