"""Database lifecycle: close() tears everything down, no thread leaks."""

import threading

import pytest

from repro import Database, ParallelConfig

from .conftest import HEADER_ITEM_SQL, load_erp, make_erp_db


def live_thread_count() -> int:
    return sum(1 for t in threading.enumerate() if t.is_alive())


class TestClose:
    def test_close_is_idempotent(self):
        db = make_erp_db()
        db.close()
        db.close()

    def test_context_manager_closes(self):
        with make_erp_db(n_workers=2) as db:
            load_erp(db, n_headers=2, merge=True)
            assert db.query(HEADER_ITEM_SQL).rows
        # Pool is down; a serial query still works (executor falls back).
        assert db.query(HEADER_ITEM_SQL).rows

    def test_no_thread_leak_across_open_close_cycles(self):
        """Opening and closing parallel databases repeatedly must not
        accumulate worker threads."""
        baseline = live_thread_count()
        for _ in range(5):
            db = make_erp_db(
                parallel=ParallelConfig(n_workers=4, min_combos=1, min_rows=1)
            )
            load_erp(db, n_headers=3, merge=True)
            load_erp(db, n_headers=1, start_hid=50, merge=False)
            assert db.query(HEADER_ITEM_SQL).rows  # pool actually spun up
            db.close()
        assert live_thread_count() <= baseline + 1  # tolerate unrelated noise

    def test_no_thread_leak_for_durable_databases(self, tmp_path):
        baseline = live_thread_count()
        for i in range(3):
            db = Database.open(tmp_path / "db", n_workers=2)
            db.close()
        assert live_thread_count() <= baseline + 1

    def test_queries_after_close_still_answer(self):
        db = make_erp_db(n_workers=4)
        load_erp(db, n_headers=4, merge=True)
        before = db.query(HEADER_ITEM_SQL).rows
        db.close()
        assert db.query(HEADER_ITEM_SQL).rows == before
