"""Transient I/O faults: retries absorb them, recovery loses nothing.

Property under test: a transient ``OSError`` raised mid-durability-write
is either absorbed by the retry/backoff machinery (bounded ``times``) or
escalated as a typed ``DurabilityError`` (unlimited ``times``) — and in
*both* cases the database directory remains re-openable with every
committed row intact.
"""

import random

import pytest

from repro import (
    Database,
    DurabilityError,
    FaultInjector,
    GovernorConfig,
)

FAST_RETRY = GovernorConfig(wal_retries=3, retry_backoff_ms=0.01)


def _commit_random_rows(db: Database, rng: random.Random, start: int, n: int):
    """Insert ``n`` committed rows with seeded random values; return them."""
    rows = {}
    for k in range(start, start + n):
        v = rng.randint(0, 10_000)
        db.insert("t", {"k": k, "v": v})
        rows[k] = v
    return rows


def _fresh_db(tmp_path, faults):
    db = Database(
        path=tmp_path / "db", fault_injector=faults, governor=FAST_RETRY
    )
    db.create_table("t", [("k", "INT"), ("v", "INT")], primary_key="k")
    return db


def _assert_recovers_with(tmp_path, committed):
    recovered = Database.open(tmp_path / "db")
    try:
        rows = recovered.query(
            "SELECT k AS k, SUM(v) AS v FROM t GROUP BY k"
        ).rows
        assert {k: int(v) for k, v in rows} == committed
    finally:
        recovered.close()


@pytest.mark.parametrize("seed", [2, 11, 29])
def test_single_transient_wal_error_is_absorbed_by_retry(tmp_path, seed):
    rng = random.Random(seed)
    faults = FaultInjector()
    db = _fresh_db(tmp_path, faults)
    committed = _commit_random_rows(db, rng, start=0, n=rng.randint(3, 8))

    # One transient kernel error on the next append: the retry loop must
    # absorb it without surfacing anything to the caller.
    faults.arm("wal.append", mode="io_error", times=1)
    committed.update(_commit_random_rows(db, rng, start=100, n=1))
    assert faults.hits["wal.append"] >= 2  # the failed try plus the retry

    committed.update(_commit_random_rows(db, rng, start=200, n=3))
    db.close()
    _assert_recovers_with(tmp_path, committed)


@pytest.mark.parametrize("seed", [5, 17])
def test_exhausted_wal_retries_lose_no_committed_data(tmp_path, seed):
    rng = random.Random(seed)
    faults = FaultInjector()
    db = _fresh_db(tmp_path, faults)
    committed = _commit_random_rows(db, rng, start=0, n=rng.randint(3, 8))

    # A persistent fault outlasts the whole retry budget: the write fails
    # with the typed durability error.  Row visibility is stamp-based and
    # the engine has no undo, so the row is already live in memory —
    # queries serve it despite the failed append.
    faults.arm("wal.append", mode="io_error", times=None)
    with pytest.raises(DurabilityError):
        db.insert("t", {"k": 500, "v": 1})
    committed[500] = 1
    live = db.query("SELECT k AS k, SUM(v) AS v FROM t GROUP BY k").rows
    assert {k: int(v) for k, v in live} == committed

    # Fault clears; the next successful commit redelivers the queued
    # record first, so recovery reproduces exactly what the live
    # database served — the unlogged-but-visible row is not lost.
    faults.disarm("wal.append")
    committed.update(_commit_random_rows(db, rng, start=600, n=2))
    db.close()
    _assert_recovers_with(tmp_path, committed)


def test_unlogged_transaction_is_redelivered_at_close(tmp_path):
    rng = random.Random(7)
    faults = FaultInjector()
    db = _fresh_db(tmp_path, faults)
    committed = _commit_random_rows(db, rng, start=0, n=4)

    faults.arm("wal.append", mode="io_error", times=None)
    with pytest.raises(DurabilityError):
        db.insert("t", {"k": 500, "v": 1})
    committed[500] = 1

    # No further writes ride by; the clean close is the last chance to
    # flush the backlog, and it must take it.
    faults.disarm("wal.append")
    db.close()
    _assert_recovers_with(tmp_path, committed)


def test_transient_checkpoint_error_is_absorbed(tmp_path):
    rng = random.Random(3)
    faults = FaultInjector()
    db = _fresh_db(tmp_path, faults)
    committed = _commit_random_rows(db, rng, start=0, n=6)

    faults.arm("checkpoint.write", mode="io_error", times=1)
    db.checkpoint()  # retried internally; must not raise
    assert faults.hits["checkpoint.write"] >= 2

    committed.update(_commit_random_rows(db, rng, start=50, n=2))
    db.close()
    _assert_recovers_with(tmp_path, committed)


def test_failed_checkpoint_leaves_wal_recovery_intact(tmp_path):
    rng = random.Random(9)
    faults = FaultInjector()
    db = _fresh_db(tmp_path, faults)
    committed = _commit_random_rows(db, rng, start=0, n=6)

    faults.arm("checkpoint.write", mode="io_error", times=None)
    with pytest.raises(DurabilityError):
        db.checkpoint()
    faults.disarm("checkpoint.write")

    # The atomic tmp+rename discipline means a failed checkpoint leaves
    # no torn snapshot behind: replaying the WAL still rebuilds it all.
    db.close()
    _assert_recovers_with(tmp_path, committed)
