"""Unit tests for the fault-injection harness."""

import time

import pytest

from repro.errors import DurabilityError, FaultError
from repro.reliability.faults import (
    KNOWN_FAULT_POINTS,
    FaultInjector,
    SimulatedCrash,
    register_fault_point,
)


class TestArming:
    def test_unknown_point_rejected(self):
        with pytest.raises(DurabilityError):
            FaultInjector().arm("not.a.point")

    def test_unknown_mode_rejected(self):
        with pytest.raises(DurabilityError):
            FaultInjector().arm("wal.append", mode="explode")

    def test_armed_points_listing_and_disarm(self):
        injector = FaultInjector()
        injector.arm("wal.append")
        injector.arm("merge.before_swap")
        assert injector.armed_points() == ["merge.before_swap", "wal.append"]
        injector.disarm("wal.append")
        assert injector.armed_points() == ["merge.before_swap"]
        injector.disarm()
        assert injector.armed_points() == []

    def test_register_custom_point(self):
        register_fault_point("test.custom", "only used by this test")
        assert "test.custom" in KNOWN_FAULT_POINTS
        injector = FaultInjector()
        injector.arm("test.custom")
        with pytest.raises(FaultError):
            injector.fire("test.custom")


class TestFiring:
    def test_unarmed_fire_is_a_noop_but_counts(self):
        injector = FaultInjector()
        injector.fire("wal.append")
        injector.fire("wal.append")
        assert injector.hits["wal.append"] == 2

    def test_raise_mode_trips_exactly_times(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="raise", times=2)
        for _ in range(2):
            with pytest.raises(FaultError):
                injector.fire("wal.append")
        injector.fire("wal.append")  # exhausted: no longer trips

    def test_after_skips_initial_hits(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="raise", after=2)
        injector.fire("wal.append")
        injector.fire("wal.append")
        with pytest.raises(FaultError):
            injector.fire("wal.append")

    def test_crash_mode_is_not_an_ordinary_exception(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="crash")
        with pytest.raises(SimulatedCrash) as excinfo:
            try:
                injector.fire("wal.append")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must not be caught by 'except Exception'")
        assert excinfo.value.point == "wal.append"

    def test_delay_mode_sleeps(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="delay", delay=0.01)
        start = time.monotonic()
        injector.fire("wal.append")
        assert time.monotonic() - start >= 0.01

    def test_custom_message(self):
        injector = FaultInjector()
        injector.arm("wal.append", message="disk full")
        with pytest.raises(FaultError, match="disk full"):
            injector.fire("wal.append")
