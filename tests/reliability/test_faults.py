"""Unit tests for the fault-injection harness."""

import time

import pytest

from repro.errors import DurabilityError, FaultError
from repro.reliability.faults import (
    KNOWN_FAULT_POINTS,
    FaultInjector,
    SimulatedCrash,
    TransientIOError,
    register_fault_point,
)


class TestArming:
    def test_unknown_point_rejected(self):
        with pytest.raises(DurabilityError):
            FaultInjector().arm("not.a.point")

    def test_unknown_mode_rejected(self):
        with pytest.raises(DurabilityError):
            FaultInjector().arm("wal.append", mode="explode")

    def test_armed_points_listing_and_disarm(self):
        injector = FaultInjector()
        injector.arm("wal.append")
        injector.arm("merge.before_swap")
        assert injector.armed_points() == ["merge.before_swap", "wal.append"]
        injector.disarm("wal.append")
        assert injector.armed_points() == ["merge.before_swap"]
        injector.disarm()
        assert injector.armed_points() == []

    def test_register_custom_point(self):
        register_fault_point("test.custom", "only used by this test")
        assert "test.custom" in KNOWN_FAULT_POINTS
        injector = FaultInjector()
        injector.arm("test.custom")
        with pytest.raises(FaultError):
            injector.fire("test.custom")


class TestFiring:
    def test_unarmed_fire_is_a_noop_but_counts(self):
        injector = FaultInjector()
        injector.fire("wal.append")
        injector.fire("wal.append")
        assert injector.hits["wal.append"] == 2

    def test_raise_mode_trips_exactly_times(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="raise", times=2)
        for _ in range(2):
            with pytest.raises(FaultError):
                injector.fire("wal.append")
        injector.fire("wal.append")  # exhausted: no longer trips

    def test_after_skips_initial_hits(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="raise", after=2)
        injector.fire("wal.append")
        injector.fire("wal.append")
        with pytest.raises(FaultError):
            injector.fire("wal.append")

    def test_crash_mode_is_not_an_ordinary_exception(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="crash")
        with pytest.raises(SimulatedCrash) as excinfo:
            try:
                injector.fire("wal.append")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must not be caught by 'except Exception'")
        assert excinfo.value.point == "wal.append"

    def test_delay_mode_sleeps(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="delay", delay=0.01)
        start = time.monotonic()
        injector.fire("wal.append")
        assert time.monotonic() - start >= 0.01

    def test_custom_message(self):
        injector = FaultInjector()
        injector.arm("wal.append", message="disk full")
        with pytest.raises(FaultError, match="disk full"):
            injector.fire("wal.append")


class TestUnlimitedFiring:
    def test_times_none_never_self_disarms(self):
        injector = FaultInjector()
        injector.arm("wal.append", times=None)
        for _ in range(50):
            with pytest.raises(FaultError):
                injector.fire("wal.append")
        assert injector.armed_points() == ["wal.append"]

    def test_times_none_composes_with_after(self):
        injector = FaultInjector()
        injector.arm("wal.append", times=None, after=3)
        for _ in range(3):
            injector.fire("wal.append")
        for _ in range(10):
            with pytest.raises(FaultError):
                injector.fire("wal.append")


class TestIOErrorMode:
    def test_raises_a_real_oserror(self):
        injector = FaultInjector()
        injector.arm("checkpoint.write", mode="io_error")
        with pytest.raises(OSError) as excinfo:
            injector.fire("checkpoint.write")
        err = excinfo.value
        assert isinstance(err, TransientIOError)
        assert err.point == "checkpoint.write"
        assert "checkpoint.write" in str(err)

    def test_io_error_is_not_a_fault_error(self):
        # Retry wrappers catch OSError; they must not accidentally catch
        # the permanent-failure FaultError, and vice versa.
        injector = FaultInjector()
        injector.arm("wal.append", mode="io_error")
        with pytest.raises(TransientIOError):
            try:
                injector.fire("wal.append")
            except FaultError:  # pragma: no cover - the point of the test
                pytest.fail("io_error mode must not raise FaultError")

    def test_custom_message(self):
        injector = FaultInjector()
        injector.arm("wal.append", mode="io_error", message="EINTR")
        with pytest.raises(TransientIOError, match="EINTR"):
            injector.fire("wal.append")


class TestProbabilisticFiring:
    def test_invalid_probability_rejected(self):
        with pytest.raises(DurabilityError):
            FaultInjector().arm("wal.append", probability=1.5)
        with pytest.raises(DurabilityError):
            FaultInjector().arm("wal.append", probability=-0.1)

    def test_probability_zero_never_trips(self):
        injector = FaultInjector(seed=1)
        injector.arm("wal.append", times=None, probability=0.0)
        for _ in range(100):
            injector.fire("wal.append")

    def test_probability_one_always_trips(self):
        injector = FaultInjector(seed=1)
        injector.arm("wal.append", times=None, probability=1.0)
        for _ in range(20):
            with pytest.raises(FaultError):
                injector.fire("wal.append")

    @staticmethod
    def _trip_count(seed, fires=400, p=0.3):
        injector = FaultInjector(seed=seed)
        injector.arm("wal.append", times=None, probability=p)
        trips = 0
        for _ in range(fires):
            try:
                injector.fire("wal.append")
            except FaultError:
                trips += 1
        return trips

    def test_trip_rate_roughly_matches_probability(self):
        trips = self._trip_count(seed=42)
        # p=0.3 over 400 fires: expect ~120; bounds are ~6 sigma wide.
        assert 60 <= trips <= 180

    def test_same_seed_reproduces_the_same_run(self):
        assert self._trip_count(seed=7) == self._trip_count(seed=7)

    def test_probability_composes_with_times_and_after(self):
        injector = FaultInjector(seed=3)
        injector.arm(
            "wal.append", times=2, after=5, probability=0.5
        )
        trips = 0
        for _ in range(200):
            try:
                injector.fire("wal.append")
            except FaultError:
                trips += 1
        # `after` shields the first 5 hits, `times` caps total trips at 2
        # no matter how many eligible hits the coin flip selects.
        assert trips == 2
        assert injector.hits["wal.append"] == 200
