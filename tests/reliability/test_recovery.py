"""Crash-recovery tests: checkpoint + WAL replay rebuild the exact state."""

import pytest

from repro import (
    CatalogError,
    Database,
    DurabilityError,
    ExecutionStrategy,
)
from repro.reliability.checkpoint import list_checkpoints
from repro.storage import threshold_aging

from ..conftest import PROFIT_SQL, load_erp, make_erp_db


def reopen(db: Database) -> Database:
    """Close ``db`` and recover a fresh instance from the same directory."""
    path = db.path
    db.close()
    return Database.open(path)


class TestRoundtrip:
    def test_wal_only_recovery(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=4, merge=False)  # no merge => no checkpoint
        expected = db.query(PROFIT_SQL)
        recovered = reopen(db)
        assert recovered.query(PROFIT_SQL) == expected
        assert recovered.recovery_stats.checkpoint_lsn is None
        assert recovered.recovery_stats.transactions_replayed > 0

    def test_checkpoint_plus_wal_suffix(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=4, merge=True)  # merge writes a checkpoint
        load_erp(db, n_headers=2, start_hid=100, merge=False)  # WAL suffix
        expected = db.query(PROFIT_SQL)
        recovered = reopen(db)
        assert recovered.query(PROFIT_SQL) == expected
        assert recovered.recovery_stats.checkpoint_lsn is not None
        # Only the post-checkpoint suffix is replayed, not the whole history.
        assert (
            recovered.recovery_stats.records_replayed
            < recovered.recovery_stats.records_scanned
        )

    def test_update_and_delete_replay(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=3, merge=False)
        db.update("item", 1, {"price": 99.0})
        db.delete("item", 2)
        expected = db.query(PROFIT_SQL)
        recovered = reopen(db)
        assert recovered.query(PROFIT_SQL) == expected
        assert recovered.table("item").get_row(1)["price"] == 99.0
        assert recovered.table("item").get_row(2) is None

    def test_tid_sequence_continues_after_recovery(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=False)
        before = db.transactions.latest_tid
        recovered = reopen(db)
        assert recovered.transactions.latest_tid == before
        recovered.insert("header", {"hid": 500, "year": 2014})
        stamped = recovered.table("header").get_row(500)["tid_header"]
        assert stamped > before

    def test_writes_after_recovery_are_md_stamped(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=True)
        recovered = reopen(db)
        recovered.insert_business_object(
            "header",
            {"hid": 700, "year": 2013},
            "item",
            [{"iid": 700, "hid": 700, "cid": 0, "price": 5.0}],
        )
        header_tid = recovered.table("header").get_row(700)["tid_header"]
        item_tid = recovered.table("item").get_row(700)["tid_header"]
        assert header_tid == item_tid  # enforcer active post-recovery

    def test_recover_method_rebuilds_from_disk(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=False)
        expected = db.query(PROFIT_SQL)
        recovered = db.recover()
        assert recovered is not db
        assert recovered.query(PROFIT_SQL) == expected
        with pytest.raises(DurabilityError):
            Database().recover()  # in-memory: nothing to recover from

    def test_second_generation_recovery(self, tmp_path):
        """Recover, write more, crash again, recover again."""
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=True)
        second = reopen(db)
        load_erp(second, n_headers=2, start_hid=50, merge=False)
        expected = second.query(PROFIT_SQL)
        third = reopen(second)
        assert third.query(PROFIT_SQL) == expected


class TestTornTail:
    def test_torn_final_record_is_dropped_and_truncated(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=3, merge=False)
        expected = db.query(PROFIT_SQL)
        db.close()
        with (tmp_path / "db" / "wal.jsonl").open("ab") as fh:
            fh.write(b'{"crc": 1, "lsn": 9999, "type": "t')
        recovered = Database.open(tmp_path / "db")
        assert recovered.query(PROFIT_SQL) == expected
        assert recovered.recovery_stats.torn_records_dropped == 1
        # The tail was truncated: a third open sees a clean log.
        third = reopen(recovered)
        assert third.recovery_stats.torn_records_dropped == 0
        assert third.query(PROFIT_SQL) == expected


class TestCheckpointFallback:
    def test_corrupt_newest_checkpoint_falls_back(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=True)   # checkpoint 1
        load_erp(db, n_headers=2, start_hid=10, merge=True)  # checkpoint 2
        expected = db.query(PROFIT_SQL)
        db.close()
        checkpoints = list_checkpoints(tmp_path / "db" / "checkpoints")
        assert len(checkpoints) >= 2
        newest = checkpoints[0][1]
        newest.write_bytes(b"this is not a checkpoint")
        recovered = Database.open(tmp_path / "db")
        assert recovered.query(PROFIT_SQL) == expected
        # It anchored on the older checkpoint and replayed a longer suffix.
        assert recovered.recovery_stats.checkpoint_lsn == checkpoints[1][0]

    def test_all_checkpoints_corrupt_replays_full_wal(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=True)
        expected = db.query(PROFIT_SQL)
        db.close()
        for _, path in list_checkpoints(tmp_path / "db" / "checkpoints"):
            path.write_bytes(b"junk")
        recovered = Database.open(tmp_path / "db")
        assert recovered.query(PROFIT_SQL) == expected
        assert recovered.recovery_stats.checkpoint_lsn is None


class TestDdlReplay:
    def test_drop_table_survives_recovery(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=False)
        db.drop_table("category")
        recovered = reopen(db)
        with pytest.raises(CatalogError):
            recovered.table("category")
        assert recovered.table("header").get_row(0) is not None

    def test_keep_history_merge_supports_time_travel_after_recovery(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=False)
        as_of = db.transactions.latest_tid
        old = db.query(PROFIT_SQL, as_of=as_of)
        db.update("item", 0, {"price": 1000.0})
        db.merge(keep_history=True)
        recovered = reopen(db)
        assert recovered.query(PROFIT_SQL, as_of=as_of) == old


class TestDurabilityLimits:
    def test_callable_aging_rules_refused_in_durable_mode(self, tmp_path):
        db = Database.open(tmp_path / "db")
        with pytest.raises(DurabilityError):
            db.create_table(
                "t",
                [("id", "INT"), ("year", "INT")],
                primary_key="id",
                aging_rule=lambda row: "hot" if row["year"] >= 2014 else "cold",
            )

    def test_threshold_aging_survives_recovery(self, tmp_path):
        db = Database.open(tmp_path / "db")
        db.create_table(
            "t",
            [("id", "INT"), ("year", "INT")],
            primary_key="id",
            aging_rule=threshold_aging("year", hot_if_at_least=2014),
        )
        db.insert_many(
            "t",
            [
                {"id": 1, "year": 2012},
                {"id": 2, "year": 2014},
                {"id": 3, "year": 2015},
            ],
        )
        db.merge()
        db.insert("t", {"id": 4, "year": 2013})
        recovered = reopen(db)
        table = recovered.table("t")
        assert table.is_aged()
        assert table.aging_rule == threshold_aging("year", hot_if_at_least=2014)
        by_partition = {
            p.name: p.row_count for p in table.partitions() if p.row_count
        }
        assert by_partition == {"hot_main": 2, "cold_main": 1, "cold_delta": 1}

    def test_in_memory_database_has_no_durability(self):
        db = Database()
        assert not db.is_durable
        assert db.wal is None
        assert db.checkpoint() is None
        db.close()  # no-op
        assert db.statistics().durability is None


class TestCacheAcrossRecovery:
    def test_entries_dropped_then_readmitted(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=4, merge=True)
        expected = db.query(PROFIT_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
        assert db.cache.entry_count() == 1
        recovered = reopen(db)
        # Cached aggregates are not persisted; the entry is gone...
        assert recovered.cache.entry_count() == 0
        # ...but the cache re-admits on first use with identical results.
        result = recovered.query(
            PROFIT_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING
        )
        assert result == expected
        assert recovered.cache.entry_count() == 1
        again = recovered.query(
            PROFIT_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING
        )
        assert again == expected
        assert recovered.last_report.cache_hits >= 1


class TestStatisticsSurface:
    def test_durability_counters_reported(self, tmp_path):
        db = make_erp_db(path=tmp_path / "db")
        load_erp(db, n_headers=2, merge=True)
        stats = db.statistics()
        assert stats.durability is not None
        assert stats.durability.wal_records_appended > 0
        assert stats.durability.wal_transactions_logged > 0
        assert stats.durability.wal_merges_logged == 3  # one per table
        assert stats.durability.checkpoints_written == 1
        assert not stats.durability.recovered
        assert "durability:" in stats.render()
        recovered = reopen(db)
        rstats = recovered.statistics().durability
        assert rstats.recovered
        assert rstats.recovery_transactions_replayed >= 0
        assert rstats.recovered_tid == db.transactions.latest_tid
        assert "recovered:" in recovered.statistics().render()
