"""The kill-point property: crash anywhere, reopen, observe a consistent state.

For every registered fault point a crash is injected into a mixed workload
(inserts, an update, a delete, merges, a cached query).  Reopening the
database directory must yield query results identical to an uncrashed
reference run of the workload prefix — either up to and including the step
that crashed, or up to the step before it (a crash may legitimately lose
the in-flight step, never more, never a torn half-step).  Delta merges
never change query results, so the two references coincide whenever the
ambiguity actually matters.
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.reliability.faults import KNOWN_FAULT_POINTS, SimulatedCrash

from ..conftest import PROFIT_SQL, make_erp_db


def _categories(db):
    db.insert_many(
        "category",
        [
            {"cid": 0, "name": "cat0", "lang": "ENG"},
            {"cid": 1, "name": "cat1", "lang": "ENG"},
        ],
    )


STEPS = [
    _categories,
    lambda db: db.insert_business_object(
        "header",
        {"hid": 1, "year": 2013},
        "item",
        [
            {"iid": 10, "hid": 1, "cid": 0, "price": 5.0},
            {"iid": 11, "hid": 1, "cid": 1, "price": 7.5},
        ],
    ),
    lambda db: db.insert_business_object(
        "header",
        {"hid": 2, "year": 2014},
        "item",
        [{"iid": 20, "hid": 2, "cid": 1, "price": 2.0}],
    ),
    lambda db: db.query(PROFIT_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING),
    lambda db: db.update("item", 10, {"price": 6.0}),
    lambda db: db.merge(),
    lambda db: db.insert_business_object(
        "header",
        {"hid": 3, "year": 2013},
        "item",
        [{"iid": 30, "hid": 3, "cid": 0, "price": 9.0}],
    ),
    lambda db: db.delete("item", 11),
    lambda db: db.merge(),
]


def reference(n_steps: int):
    """Query result of an uncrashed in-memory run of the first ``n_steps``."""
    db = make_erp_db()
    for step in STEPS[:n_steps]:
        step(db)
    return db.query(PROFIT_SQL)


def run_until_crash(db) -> int:
    """Run the workload; returns the 1-based step the crash hit (0 = none)."""
    for index, step in enumerate(STEPS):
        try:
            step(db)
        except SimulatedCrash:
            return index + 1
    return 0


def crashable_points():
    # The coldstore points need an aged table plus an age_out() call and
    # get their own kill-point sweep in test_cold_demotion.py.
    return sorted(
        p
        for p in KNOWN_FAULT_POINTS
        if not p.startswith("test.") and not p.startswith("coldstore.")
    )


@pytest.mark.parametrize("point", crashable_points())
def test_crash_at_every_fault_point_recovers_consistently(tmp_path, point):
    db = make_erp_db(path=tmp_path / "db")
    db.faults.arm(point, mode="crash")
    crashed_at = run_until_crash(db)
    assert crashed_at > 0, f"fault point {point!r} never fired during the workload"
    db.close()  # abandon the killed instance

    recovered = Database.open(tmp_path / "db")
    result = recovered.query(PROFIT_SQL)
    acceptable = [reference(crashed_at - 1), reference(crashed_at)]
    assert result in acceptable, (
        f"state recovered after a crash at {point!r} (step {crashed_at}) "
        f"matches neither the pre-step nor the post-step reference"
    )
    if point == "wal.append":
        # The crash emulated a torn write: half a record reached the file.
        assert recovered.recovery_stats.torn_records_dropped == 1

    # The recovered database is fully operational.
    recovered.insert("header", {"hid": 99, "year": 2015})
    assert recovered.table("header").get_row(99) is not None
    cached = recovered.query(
        PROFIT_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING
    )
    assert cached in acceptable  # the extra header has no items

    stats = recovered.statistics()
    assert stats.durability is not None
    assert stats.durability.recovered
    assert "durability:" in stats.render()


@pytest.mark.parametrize("after", [3, 5, 8])
def test_late_torn_writes_recover_consistently(tmp_path, after):
    """Crash deeper into the workload: the Nth WAL append tears instead of
    the first (``after=5`` lands between two tables of one merge call)."""
    db = make_erp_db(path=tmp_path / "db")
    db.faults.arm("wal.append", mode="crash", after=after)
    crashed_at = run_until_crash(db)
    assert crashed_at > 0
    db.close()

    recovered = Database.open(tmp_path / "db")
    assert recovered.recovery_stats.torn_records_dropped == 1
    result = recovered.query(PROFIT_SQL)
    assert result in [reference(crashed_at - 1), reference(crashed_at)]


def test_uncrashed_workload_counts_every_fault_point(tmp_path):
    """Every registered fault point is actually exercised by the workload —
    otherwise the kill-point sweep silently proves nothing for it."""
    db = make_erp_db(path=tmp_path / "db")
    assert run_until_crash(db) == 0
    for point in crashable_points():
        assert db.faults.hits.get(point, 0) > 0, f"{point!r} never fired"
    assert db.query(PROFIT_SQL) == reference(len(STEPS))
