"""Kill points inside cold-tier demotion: crash, reopen, never a torn hybrid.

``demote_partition`` follows the manifest-as-commit-point protocol: data
files first, CRC-carrying manifest last via tmp + ``os.replace``.  A crash
at any point must recover to one of exactly two states — the old resident
main (cold files absent or discarded) or a complete, CRC-valid mapped cold
partition.  Query results must be unaffected either way: demotion changes
the physical layout, never the data.
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.reliability.faults import KNOWN_FAULT_POINTS, SimulatedCrash
from repro.storage import threshold_aging
from repro.storage.coldstore import partition_dir, read_manifest

UNCACHED = ExecutionStrategy.UNCACHED

SPAN_SQL = (
    "SELECT h.year AS year, SUM(i.price) AS total, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY h.year"
)


def make_aged_db(path) -> Database:
    db = Database.open(path)
    db.create_table(
        "header",
        [("hid", "INT"), ("year", "INT")],
        primary_key="hid",
        aging_rule=threshold_aging("year", 2014),
    )
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("year", "INT"), ("price", "FLOAT")],
        primary_key="iid",
        aging_rule=threshold_aging("year", 2014),
    )
    db.add_matching_dependency("header", "hid", "item", "hid")
    db.declare_consistent_aging("header", "item")
    for hid in range(8):
        year = 2012 + hid % 4
        db.insert_business_object(
            "header",
            {"hid": hid, "year": year},
            "item",
            [
                {"iid": hid * 10 + k, "hid": hid, "year": year, "price": float(k + 1)}
                for k in range(3)
            ],
        )
    db.merge()
    return db


def coldstore_points():
    return sorted(p for p in KNOWN_FAULT_POINTS if p.startswith("coldstore."))


def test_coldstore_points_registered():
    assert coldstore_points() == ["coldstore.commit", "coldstore.write"]


def assert_never_torn(db: Database) -> None:
    """Every cold main is either fully resident or a CRC-valid mapped set."""
    for name in ("header", "item"):
        partition = db.table(name).group("cold").main
        fragments_mapped = [
            partition.column(c).is_mapped for c in partition.column_names()
        ]
        if partition.storage_tier == "mapped":
            assert all(fragments_mapped), f"{name}: half-mapped partition"
            manifest = read_manifest(
                partition_dir(db.cold_dir, name, partition.name)
            )
            assert manifest is not None, f"{name}: mapped without a valid manifest"
        else:
            assert not any(fragments_mapped), f"{name}: half-mapped partition"


@pytest.mark.parametrize(
    "point,after",
    [
        ("coldstore.write", 0),
        ("coldstore.write", 3),
        ("coldstore.commit", 0),
        ("coldstore.commit", 1),
    ],
)
def test_crash_during_demotion_recovers_consistently(tmp_path, point, after):
    """Crash on the first and on a later firing of each demotion kill point
    (the later firings land mid-call: header already demoted, item in
    flight — ``commit`` fires once per partition, ``write`` once per file)."""
    db = make_aged_db(tmp_path / "db")
    expected = db.query(SPAN_SQL, strategy=UNCACHED)
    db.faults.arm(point, mode="crash", after=after)
    with pytest.raises(SimulatedCrash):
        db.age_out()
    db.close()

    recovered = Database.open(tmp_path / "db")
    assert_never_torn(recovered)
    assert recovered.query(SPAN_SQL, strategy=UNCACHED).rows == expected.rows

    # The recovered database demotes cleanly and keeps answering right.
    demoted = recovered.age_out()
    assert {t for t, _ in demoted} | {
        t
        for t in ("header", "item")
        if recovered.table(t).group("cold").main.storage_tier == "mapped"
    } == {"header", "item"}
    assert_never_torn(recovered)
    assert recovered.query(SPAN_SQL, strategy=UNCACHED).rows == expected.rows
    recovered.close()


def test_uncrashed_demotion_fires_every_coldstore_point(tmp_path):
    """The sweep above is only meaningful if the workload actually crosses
    every coldstore kill point."""
    db = make_aged_db(tmp_path / "db")
    db.age_out()
    for point in coldstore_points():
        assert db.faults.hits.get(point, 0) > 0, f"{point!r} never fired"
    db.close()


def test_crash_after_commit_reattaches_mapped(tmp_path):
    """A crash *after* the first table's manifest committed recovers that
    table straight into the mapped tier (the commit point is durable)."""
    db = make_aged_db(tmp_path / "db")
    expected = db.query(SPAN_SQL, strategy=UNCACHED)
    # header commits; the crash hits item's first data file write.
    writes_for_header = len(
        db.table("header").group("cold").main.column_names()
    ) * 2 + 2  # codes+dict per column, then cts+dts
    db.faults.arm("coldstore.write", mode="crash", after=writes_for_header)
    with pytest.raises(SimulatedCrash):
        db.age_out()
    db.close()

    recovered = Database.open(tmp_path / "db")
    assert_never_torn(recovered)
    assert recovered.table("header").group("cold").main.storage_tier == "mapped"
    assert recovered.table("item").group("cold").main.storage_tier == "resident"
    assert recovered.query(SPAN_SQL, strategy=UNCACHED).rows == expected.rows
    recovered.close()
