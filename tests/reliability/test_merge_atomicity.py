"""The two-phase merge is all-or-nothing under injected faults."""

import pytest

from repro import ExecutionStrategy, FaultError

from ..conftest import PROFIT_SQL, load_erp, make_erp_db


def delta_rows(db, table_name: str) -> int:
    return db.table(table_name).partition("delta").row_count


def snapshot_state(db):
    return {
        "result": db.query(PROFIT_SQL),
        "deltas": {name: delta_rows(db, name) for name in ("header", "item", "category")},
    }


@pytest.mark.parametrize(
    "point", ["merge.stage", "merge.before_swap", "cache.maintenance"]
)
def test_pre_swap_fault_leaves_tables_untouched(point):
    db = make_erp_db()
    load_erp(db, n_headers=4, merge=True)
    load_erp(db, n_headers=2, start_hid=100, merge=False)
    db.query(PROFIT_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    before = snapshot_state(db)
    db.faults.arm(point, mode="raise")
    with pytest.raises(FaultError):
        db.merge()
    # Nothing was swapped: deltas still hold their rows, results unchanged.
    assert snapshot_state(db) == before
    assert db.table("header").get_row(100) is not None
    assert db.table("item").get_row(10000) is not None  # load_erp: iid = hid * 100
    assert db.table("category").get_row(0) is not None
    # Pending cache maintenance was cancelled, not left to corrupt the
    # next merge: a retry completes and empties every delta.
    db.faults.disarm()
    db.merge()
    assert all(delta_rows(db, n) == 0 for n in ("header", "item", "category"))
    assert db.query(PROFIT_SQL) == before["result"]


def test_post_swap_fault_keeps_the_merge():
    db = make_erp_db()
    load_erp(db, n_headers=2, merge=False)
    before = db.query(PROFIT_SQL)
    db.faults.arm("merge.after_swap", mode="raise")
    with pytest.raises(FaultError):
        db.merge()
    db.faults.disarm()
    # The first table's swap completed before the fault: its delta is empty,
    # and query results are unaffected either way.
    assert db.query(PROFIT_SQL) == before
    assert db.table("category").pk_lookup(0) is not None


def test_failing_extra_listener_aborts_merge_and_cancels_cache():
    class ExplodingListener:
        def __init__(self):
            self.cancelled = []

        def before_merge(self, event):
            raise RuntimeError("listener failure")

        def after_merge(self, event):
            raise AssertionError("must not reach after_merge")

        def cancel_merge(self, event):
            self.cancelled.append(event)

    db = make_erp_db()
    load_erp(db, n_headers=4, merge=True)
    load_erp(db, n_headers=2, start_hid=100, merge=False)
    db.query(PROFIT_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    before = snapshot_state(db)
    listener = ExplodingListener()
    db.register_merge_listener(listener)
    with pytest.raises(RuntimeError, match="listener failure"):
        db.merge()
    assert snapshot_state(db) == before
    assert len(listener.cancelled) == 1  # told to forget the announced event
    assert db.cache._pending_maintenance == []
    db.unregister_merge_listener(listener)
    db.merge()
    assert db.query(PROFIT_SQL) == before["result"]


def test_fault_during_single_table_merge_spares_other_tables():
    db = make_erp_db()
    load_erp(db, n_headers=2, merge=False)
    db.merge("category")  # unaffected earlier merge
    db.faults.arm("merge.before_swap", mode="raise")
    with pytest.raises(FaultError):
        db.merge("item")
    db.faults.disarm()
    assert db.table("category").partition("delta").row_count == 0
    assert db.table("item").partition("delta").row_count > 0
