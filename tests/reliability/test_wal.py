"""Unit tests for the write-ahead log: CRC framing, torn tails, corruption."""

import pytest

from repro.errors import DurabilityError
from repro.reliability.wal import WriteAheadLog, _decode, _encode


def open_wal(tmp_path) -> WriteAheadLog:
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    wal.open_for_append()
    return wal


class TestFraming:
    def test_encode_decode_roundtrip(self):
        line = _encode(7, "txn", {"tid": 3, "ops": []}).decode("utf-8").strip()
        record = _decode(line)
        assert record is not None
        assert record.lsn == 7
        assert record.type == "txn"
        assert record.data == {"tid": 3, "ops": []}

    def test_bit_flip_fails_crc(self):
        line = _encode(1, "txn", {"tid": 1, "ops": []}).decode("utf-8").strip()
        flipped = line.replace('"tid":1', '"tid":2')
        assert _decode(flipped) is None

    def test_garbage_is_rejected(self):
        assert _decode("not json at all") is None
        assert _decode('{"crc": 1, "lsn": 1}') is None


class TestAppendScan:
    def test_appends_are_scannable_with_increasing_lsns(self, tmp_path):
        wal = open_wal(tmp_path)
        for i in range(3):
            wal.append("txn", {"tid": i + 1, "ops": []})
        wal.close()
        scan = WriteAheadLog(tmp_path / "wal.jsonl").scan()
        assert [r.lsn for r in scan.records] == [1, 2, 3]
        assert scan.torn_records_dropped == 0

    def test_append_requires_open_handle(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        with pytest.raises(DurabilityError):
            wal.append("txn", {})

    def test_stats_counters(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append_transaction(1, [{"op": "insert"}], "committed")
        wal.append_merge("t", None, 1, False)
        assert wal.stats.records_appended == 2
        assert wal.stats.transactions_logged == 1
        assert wal.stats.merges_logged == 1
        assert wal.stats.last_lsn == 2
        assert wal.stats.bytes_written > 0
        wal.close()


class TestTornTail:
    def test_torn_tail_is_tolerated_and_counted(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append("txn", {"tid": 1, "ops": []})
        wal.close()
        with (tmp_path / "wal.jsonl").open("ab") as fh:
            fh.write(b'{"crc": 123, "lsn": 2, "ty')  # torn mid-record
        scan = WriteAheadLog(tmp_path / "wal.jsonl").scan()
        assert len(scan.records) == 1
        assert scan.torn_records_dropped == 1

    def test_missing_final_newline_counts_as_torn(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append("txn", {"tid": 1, "ops": []})
        wal.close()
        # A fully CRC-valid record without its terminating newline is still
        # a torn write: the record boundary never made it to disk.
        payload = _encode(2, "txn", {"tid": 2, "ops": []})
        with (tmp_path / "wal.jsonl").open("ab") as fh:
            fh.write(payload[:-1])
        scan = WriteAheadLog(tmp_path / "wal.jsonl").scan()
        assert [r.lsn for r in scan.records] == [1]
        assert scan.torn_records_dropped == 1

    def test_open_for_append_truncates_torn_tail(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append("txn", {"tid": 1, "ops": []})
        wal.close()
        with (tmp_path / "wal.jsonl").open("ab") as fh:
            fh.write(b"garbage tail")
        reopened = WriteAheadLog(tmp_path / "wal.jsonl")
        reopened.open_for_append()
        reopened.append("txn", {"tid": 2, "ops": []})
        reopened.close()
        scan = WriteAheadLog(tmp_path / "wal.jsonl").scan()
        assert [r.lsn for r in scan.records] == [1, 2]
        assert scan.torn_records_dropped == 0

    def test_lsn_continues_after_reopen(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append("txn", {"tid": 1, "ops": []})
        wal.append("txn", {"tid": 2, "ops": []})
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.jsonl")
        reopened.open_for_append()
        assert reopened.append("txn", {"tid": 3, "ops": []}) == 3


class TestCorruption:
    def test_bad_record_before_valid_ones_raises(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append("txn", {"tid": 1, "ops": []})
        wal.close()
        path = tmp_path / "wal.jsonl"
        with path.open("ab") as fh:
            fh.write(b"corrupted middle record\n")
            fh.write(_encode(2, "txn", {"tid": 2, "ops": []}))
        with pytest.raises(DurabilityError):
            WriteAheadLog(path).scan()

    def test_non_increasing_lsn_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with path.open("wb") as fh:
            fh.write(_encode(2, "txn", {"tid": 1, "ops": []}))
            fh.write(_encode(1, "txn", {"tid": 2, "ops": []}))
        with pytest.raises(DurabilityError):
            WriteAheadLog(path).scan()
