"""Tests for the merge decision function."""

import pytest

from repro import Database, ExecutionStrategy
from repro.core import MergeAdvisor

from ..conftest import HEADER_ITEM_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING


class TestDeltaFillSignal:
    def test_no_recommendation_when_delta_small(self):
        db = make_erp_db()
        load_erp(db, n_headers=20, merge=True)
        load_erp(db, n_headers=1, start_hid=900, merge=False)
        advisor = MergeAdvisor(delta_fill_threshold=0.5, min_delta_rows=64)
        assert not advisor.recommend(db).should_merge

    def test_fill_threshold_triggers(self):
        db = make_erp_db()
        load_erp(db, n_headers=10, merge=True)
        load_erp(db, n_headers=10, start_hid=100, merge=False)  # ~50% fill
        advisor = MergeAdvisor(delta_fill_threshold=0.25, min_delta_rows=10)
        recommendation = advisor.recommend(db)
        assert "item" in recommendation.tables
        assert "delta fill" in recommendation.reasons["item"]

    def test_min_rows_guard(self):
        db = make_erp_db()
        load_erp(db, n_headers=2, merge=False)  # 100% fill but tiny
        advisor = MergeAdvisor(delta_fill_threshold=0.1, min_delta_rows=1000)
        assert not advisor.recommend(db).should_merge


class TestCompensationSignal:
    def test_compensation_budget_triggers(self):
        db = make_erp_db()
        load_erp(db, n_headers=5, merge=True)
        load_erp(db, n_headers=1, start_hid=100, merge=False)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        (entry,) = db.cache.entries_for(db.parse(HEADER_ITEM_SQL))
        entry.metrics.compensation_time_delta = 10.0  # pretend it got expensive
        advisor = MergeAdvisor(
            delta_fill_threshold=2.0, min_delta_rows=10**9, compensation_budget=1.0
        )
        recommendation = advisor.recommend(db)
        assert "item" in recommendation.tables
        assert "compensation" in recommendation.reasons["item"]


class TestMdSynchronization:
    def make_unbalanced(self):
        """Item delta full, header delta empty."""
        db = make_erp_db()
        load_erp(db, n_headers=10, merge=True)
        for k in range(40):
            db.insert(
                "item", {"iid": 5000 + k, "hid": k % 10, "cid": 0, "price": 1.0}
            )
        return db

    def test_md_group_pulled_in(self):
        db = self.make_unbalanced()
        advisor = MergeAdvisor(delta_fill_threshold=0.2, min_delta_rows=10)
        recommendation = advisor.recommend(db)
        assert "item" in recommendation.tables
        assert "header" in recommendation.tables  # synchronized via the MD
        assert "matching dependency" in recommendation.reasons["header"]
        assert "category" in recommendation.tables  # item's other parent

    def test_synchronization_can_be_disabled(self):
        db = self.make_unbalanced()
        advisor = MergeAdvisor(
            delta_fill_threshold=0.2, min_delta_rows=10, synchronize_md_groups=False
        )
        recommendation = advisor.recommend(db)
        assert recommendation.tables == ["item"]

    def test_describe(self):
        db = self.make_unbalanced()
        advisor = MergeAdvisor(delta_fill_threshold=0.2, min_delta_rows=10)
        text = advisor.recommend(db).describe()
        assert "merge recommended" in text
        empty = MergeAdvisor(delta_fill_threshold=5.0, min_delta_rows=10**9)
        fresh = make_erp_db()
        assert empty.recommend(fresh).describe() == "no merge recommended"


class TestAutoMerge:
    def test_auto_merge_applies_recommendation(self):
        db = make_erp_db()
        load_erp(db, n_headers=10, merge=True)
        load_erp(db, n_headers=10, start_hid=100, merge=False)
        stats = db.auto_merge(MergeAdvisor(delta_fill_threshold=0.2, min_delta_rows=10))
        assert sum(s.rows_moved for s in stats) > 0
        assert db.table("item").partition("delta").row_count == 0
        assert db.table("header").partition("delta").row_count == 0

    def test_auto_merge_noop_when_not_recommended(self):
        db = make_erp_db()
        load_erp(db, n_headers=5, merge=True)
        assert db.auto_merge() == []

    def test_auto_merge_keeps_cache_consistent(self):
        db = make_erp_db()
        load_erp(db, n_headers=10, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        load_erp(db, n_headers=10, start_hid=200, merge=False)
        db.auto_merge(MergeAdvisor(delta_fill_threshold=0.2, min_delta_rows=10))
        result = db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.last_report.cache_hits == 1
        assert result == db.query(
            HEADER_ITEM_SQL, strategy=ExecutionStrategy.UNCACHED
        )


class TestPressureAcrossCancelledMerges:
    """Compensation pressure must survive a rolled-back merge.

    Regression: resetting ``compensation_time_delta`` in
    ``plan_entry_maintenance`` zeroed the advisor's signal even when the
    two-phase merge subsequently cancelled — a workload whose merges kept
    failing would never accumulate enough pressure to trigger one.  The
    reset belongs to the successful finish only (which also guarantees it
    cannot double-count: each merge finishes each entry at most once).
    """

    def _pressured_db(self):
        from repro import FaultError  # noqa: F401 - re-exported check

        db = make_erp_db()
        load_erp(db, n_headers=5, merge=True)
        load_erp(db, n_headers=1, start_hid=100, merge=False)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        (entry,) = db.cache.entries_for(db.parse(HEADER_ITEM_SQL))
        entry.metrics.compensation_time_delta = 10.0
        advisor = MergeAdvisor(
            delta_fill_threshold=2.0,
            min_delta_rows=10**9,
            compensation_budget=1.0,
        )
        return db, entry, advisor

    def test_cancelled_merge_keeps_pressure_and_recommendation(self):
        import pytest

        from repro import FaultError

        db, entry, advisor = self._pressured_db()
        assert "item" in advisor.recommend(db).tables

        db.faults.arm("merge.before_swap", mode="raise")
        with pytest.raises(FaultError):
            db.merge()
        db.faults.disarm()
        # The rollback consumed no delta rows: the accumulated signal must
        # survive unchanged (neither zeroed nor double-counted).
        assert entry.metrics.compensation_time_delta == 10.0
        assert "item" in advisor.recommend(db).tables

    def test_remerge_after_cancel_resets_pressure_once(self):
        import pytest

        from repro import FaultError

        db, entry, advisor = self._pressured_db()
        db.faults.arm("merge.before_swap", mode="raise")
        with pytest.raises(FaultError):
            db.merge()
        db.faults.disarm()

        db.merge()  # the retry succeeds and consumes the delta
        assert entry.metrics.compensation_time_delta == 0.0
        assert not advisor.recommend(db).should_merge

    def test_pressure_accumulates_across_queries(self):
        db = make_erp_db()
        load_erp(db, n_headers=5, merge=True)
        load_erp(db, n_headers=1, start_hid=100, merge=False)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        (entry,) = db.cache.entries_for(db.parse(HEADER_ITEM_SQL))
        first = entry.metrics.compensation_time_delta
        assert first > 0.0  # the hit paid a delta compensation
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert entry.metrics.compensation_time_delta > first
