"""Unit tests for dynamic join pruning and predicate pushdown decisions."""

import pytest

from repro import Database, ExecutionStrategy
from repro.core import JoinPruner, MatchingDependency
from repro.core.pruning import _null_safe_range, partition_temperature
from repro.query import Col, Lit, parse_sql
from repro.storage import ConsistentAging, threshold_aging

from ..conftest import HEADER_ITEM_SQL, make_erp_db, load_erp


def bound_query(db, sql=HEADER_ITEM_SQL):
    return db.executor.bind(db.parse(sql))


def make_pruner(db, strategy, pushdown=False, agings=(), sql=HEADER_ITEM_SQL):
    return JoinPruner(
        bound_query(db, sql),
        db.cache.matching_dependencies,
        list(agings),
        strategy,
        predicate_pushdown=pushdown,
    )


class TestEmptyPruning:
    def test_empty_partition_pruned(self):
        db = make_erp_db()
        load_erp(db, n_headers=3, merge=True)  # deltas now empty
        pruner = make_pruner(db, ExecutionStrategy.CACHED_EMPTY_DELTA)
        assignment = {
            "h": db.table("header").partition("main"),
            "i": db.table("item").partition("delta"),
        }
        reason, filters = pruner.check(assignment)
        assert reason == "empty"
        assert filters == {}

    def test_no_pruning_under_no_pruning_strategy(self):
        db = make_erp_db()
        load_erp(db, n_headers=3, merge=True)
        pruner = make_pruner(db, ExecutionStrategy.CACHED_NO_PRUNING)
        assignment = {
            "h": db.table("header").partition("main"),
            "i": db.table("item").partition("delta"),
        }
        assert pruner.check(assignment) == (None, {})


class TestDynamicPruning:
    def setup_db(self):
        """Mains hold old objects, deltas hold new ones — disjoint tid ranges."""
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=True)
        load_erp(db, n_headers=2, start_hid=50, merge=False)
        return db

    def test_main_delta_cross_subjoins_pruned(self):
        db = self.setup_db()
        pruner = make_pruner(db, ExecutionStrategy.CACHED_FULL_PRUNING)
        header, item = db.table("header"), db.table("item")
        for assignment in (
            {"h": header.partition("main"), "i": item.partition("delta")},
            {"h": header.partition("delta"), "i": item.partition("main")},
        ):
            reason, _ = pruner.check(assignment)
            assert reason == "dynamic"

    def test_delta_delta_subjoin_not_pruned(self):
        db = self.setup_db()
        pruner = make_pruner(db, ExecutionStrategy.CACHED_FULL_PRUNING)
        assignment = {
            "h": db.table("header").partition("delta"),
            "i": db.table("item").partition("delta"),
        }
        assert pruner.check(assignment)[0] is None

    def test_overlap_prevents_pruning(self):
        """Fig. 5's failure case: item merged before header, ranges overlap."""
        db = make_erp_db()
        load_erp(db, n_headers=2, merge=False)
        db.merge("item")  # unsynchronized merge: item main now holds new tids
        pruner = make_pruner(db, ExecutionStrategy.CACHED_FULL_PRUNING)
        assignment = {
            "h": db.table("header").partition("delta"),
            "i": db.table("item").partition("main"),
        }
        reason, _ = pruner.check(assignment)
        assert reason is None  # matching tuples really do span the two partitions

    def test_temporal_violation_is_correctly_not_pruned(self):
        """A 'late item' referencing an old (merged) header must keep the
        Hmain x Idelta subjoin alive: pruning stays correct when the
        temporal soft-constraint is violated."""
        db = make_erp_db()
        load_erp(db, n_headers=3, merge=True)
        # late item for header 0 (which lives in the main)
        db.insert("item", {"iid": 9000, "hid": 0, "cid": 0, "price": 9.0})
        pruner = make_pruner(db, ExecutionStrategy.CACHED_FULL_PRUNING)
        assignment = {
            "h": db.table("header").partition("main"),
            "i": db.table("item").partition("delta"),
        }
        reason, _ = pruner.check(assignment)
        assert reason is None

    def test_uncovered_edge_never_dynamically_pruned(self):
        db = self.setup_db()
        pruner = JoinPruner(
            bound_query(db),
            [],  # no matching dependencies registered
            [],
            ExecutionStrategy.CACHED_FULL_PRUNING,
        )
        assignment = {
            "h": db.table("header").partition("main"),
            "i": db.table("item").partition("delta"),
        }
        assert pruner.check(assignment)[0] is None


class TestLogicalPruning:
    def make_aged_db(self):
        db = Database()
        db.create_table(
            "header",
            [("hid", "INT"), ("year", "INT")],
            primary_key="hid",
            aging_rule=threshold_aging("year", 2014),
        )
        db.create_table(
            "item",
            [("iid", "INT"), ("hid", "INT"), ("year", "INT"), ("price", "FLOAT")],
            primary_key="iid",
            aging_rule=threshold_aging("year", 2014),
        )
        db.add_matching_dependency("header", "hid", "item", "hid")
        aging = db.declare_consistent_aging("header", "item")
        for hid, year in [(1, 2013), (2, 2015)]:
            db.insert_business_object(
                "header",
                {"hid": hid, "year": year},
                "item",
                [{"iid": hid * 10, "hid": hid, "year": year, "price": 1.0}],
            )
        db.merge()
        return db, aging

    def test_cross_temperature_pruned(self):
        db, aging = self.make_aged_db()
        sql = (
            "SELECT COUNT(*) AS n FROM header h, item i WHERE h.hid = i.hid"
        )
        pruner = make_pruner(
            db, ExecutionStrategy.CACHED_FULL_PRUNING, agings=[aging], sql=sql
        )
        assignment = {
            "h": db.table("header").partition("hot_main"),
            "i": db.table("item").partition("cold_main"),
        }
        reason, _ = pruner.check(assignment)
        assert reason == "logical"

    def test_same_temperature_not_logically_pruned(self):
        db, aging = self.make_aged_db()
        sql = "SELECT COUNT(*) AS n FROM header h, item i WHERE h.hid = i.hid"
        pruner = make_pruner(
            db, ExecutionStrategy.CACHED_FULL_PRUNING, agings=[aging], sql=sql
        )
        assignment = {
            "h": db.table("header").partition("hot_main"),
            "i": db.table("item").partition("hot_main"),
        }
        # not logically pruned (may still be evaluated; both are mains)
        assert pruner.check(assignment)[0] is None

    def test_partition_temperature_helper(self):
        db, _ = self.make_aged_db()
        assert partition_temperature(db.table("header").partition("hot_main")) == "hot"
        assert partition_temperature(db.table("header").partition("cold_delta")) == "cold"
        plain = Database()
        plain.create_table("t", [("a", "INT")])
        assert partition_temperature(plain.table("t").partition("main")) is None


class TestPushdown:
    def setup_overlap_db(self):
        """Force the Fig. 5 overlap: header delta joins item main."""
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=False)
        db.merge("item")  # item rows now in main with fresh tids
        return db

    def test_pushdown_filters_generated(self):
        db = self.setup_overlap_db()
        load_erp(db, n_headers=2, start_hid=60, merge=False)
        pruner = make_pruner(
            db, ExecutionStrategy.CACHED_FULL_PRUNING, pushdown=True
        )
        assignment = {
            "h": db.table("header").partition("delta"),
            "i": db.table("item").partition("main"),
        }
        reason, filters = pruner.check(assignment)
        assert reason is None
        # The item main spans a wider tid range than the header delta, so at
        # least the item side gets a pushdown range filter.
        assert "i" in filters or "h" in filters
        for exprs in filters.values():
            for expr in exprs:
                assert "tid_header" in expr.canonical()

    def test_pushdown_disabled_produces_no_filters(self):
        db = self.setup_overlap_db()
        pruner = make_pruner(
            db, ExecutionStrategy.CACHED_FULL_PRUNING, pushdown=False
        )
        assignment = {
            "h": db.table("header").partition("delta"),
            "i": db.table("item").partition("main"),
        }
        assert pruner.check(assignment)[1] == {}

    def test_pushdown_requires_full_pruning_strategy(self):
        db = self.setup_overlap_db()
        pruner = make_pruner(
            db, ExecutionStrategy.CACHED_EMPTY_DELTA, pushdown=True
        )
        assignment = {
            "h": db.table("header").partition("delta"),
            "i": db.table("item").partition("main"),
        }
        assert pruner.check(assignment)[1] == {}


class TestNullSafeRange:
    def test_keeps_nulls_and_in_range(self):
        import numpy as np

        expr = _null_safe_range(Col("t", "x"), 5, 10)

        class P:
            def get(self, alias, name):
                return np.array([None, 4, 5, 10, 11], dtype=object)

            def row_count(self):
                return 5

        assert expr.evaluate(P()).tolist() == [True, False, True, True, False]
