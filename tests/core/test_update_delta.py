"""Tests for the separate update-delta partition (the paper's Section-8
"negative delta" future-work direction, implemented here).

With ``separate_update_delta=True`` every partition group carries a third,
update-only delta.  Updates no longer pollute the insert delta's tid ranges,
so dynamic pruning of the main x insert-delta subjoins keeps succeeding
under update traffic — while correctness is preserved by construction (the
update delta is just one more partition in the compensation set).
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.storage import threshold_aging

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

SQL = (
    "SELECT i.cid AS cid, SUM(i.price) AS profit, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.cid"
)


def make_db(separate_update_delta: bool, aged: bool = False) -> Database:
    db = Database()
    aging = threshold_aging("year", 2014) if aged else None
    db.create_table(
        "header",
        [("hid", "INT"), ("year", "INT")],
        primary_key="hid",
        aging_rule=aging,
        separate_update_delta=separate_update_delta,
    )
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("cid", "INT"), ("price", "FLOAT"), ("year", "INT")],
        primary_key="iid",
        aging_rule=aging,
        separate_update_delta=separate_update_delta,
    )
    db.add_matching_dependency("header", "hid", "item", "hid")
    return db


def load(db, n_headers=6, start=0, year=2014, merge=True):
    for hid in range(start, start + n_headers):
        db.insert_business_object(
            "header",
            {"hid": hid, "year": year},
            "item",
            [
                {"iid": hid * 10 + k, "hid": hid, "cid": k % 2, "price": float(k + 1), "year": year}
                for k in range(3)
            ],
        )
    if merge:
        db.merge()


class TestPartitionLayout:
    def test_third_partition_exists(self):
        db = make_db(True)
        names = [p.name for p in db.table("item").partitions()]
        assert names == ["main", "delta", "udelta"]

    def test_aged_layout(self):
        db = make_db(True, aged=True)
        names = [p.name for p in db.table("item").partitions()]
        assert names == [
            "hot_main", "hot_delta", "hot_udelta",
            "cold_main", "cold_delta", "cold_udelta",
        ]

    def test_disabled_by_default(self):
        db = make_db(False)
        assert [p.name for p in db.table("item").partitions()] == ["main", "delta"]


class TestRouting:
    def test_updates_land_in_udelta(self):
        db = make_db(True)
        load(db)
        db.update("item", 1, {"price": 99.0})
        assert db.table("item").partition("udelta").row_count == 1
        assert db.table("item").partition("delta").row_count == 0

    def test_inserts_land_in_insert_delta(self):
        db = make_db(True)
        load(db)
        db.insert("header", {"hid": 900, "year": 2014})
        db.insert("item", {"iid": 9000, "hid": 900, "cid": 0, "price": 1.0, "year": 2014})
        assert db.table("item").partition("delta").row_count == 1
        assert db.table("item").partition("udelta").row_count == 0

    def test_update_of_delta_row_goes_to_udelta(self):
        db = make_db(True)
        load(db, merge=False)  # rows still in the insert delta
        db.update("item", 1, {"price": 5.5})
        assert db.table("item").partition("udelta").row_count == 1
        assert db.table("item").get_row(1)["price"] == 5.5

    def test_cold_update_goes_to_cold_udelta(self):
        db = make_db(True, aged=True)
        load(db, year=2010)  # cold rows
        db.update("item", 1, {"price": 7.0})
        assert db.table("item").partition("cold_udelta").row_count == 1


class TestCorrectness:
    def test_strategies_agree_under_updates(self):
        db = make_db(True)
        load(db)
        db.query(SQL, strategy=FULL)
        load(db, n_headers=2, start=100, merge=False)
        db.update("item", 1, {"price": 50.0})  # main-resident row
        db.update("item", 1001, {"price": 60.0})  # delta-resident row
        reference = db.query(SQL, strategy=UNCACHED)
        for strategy in (
            ExecutionStrategy.CACHED_NO_PRUNING,
            ExecutionStrategy.CACHED_EMPTY_DELTA,
            FULL,
        ):
            assert db.query(SQL, strategy=strategy) == reference, strategy

    def test_merge_folds_both_deltas(self):
        db = make_db(True)
        load(db)
        db.query(SQL, strategy=FULL)
        load(db, n_headers=1, start=50, merge=False)
        db.update("item", 1, {"price": 42.0})
        db.merge()
        assert db.table("item").partition("udelta").row_count == 0
        assert db.table("item").partition("delta").row_count == 0
        cached = db.query(SQL, strategy=FULL)
        assert db.last_report.cache_hits == 1  # entry incrementally maintained
        assert cached == db.query(SQL, strategy=UNCACHED)

    def test_compensation_covers_three_partitions(self):
        db = make_db(True)
        load(db)
        db.query(SQL, strategy=ExecutionStrategy.CACHED_NO_PRUNING)
        # 2 tables x 3 partitions = 9 combos, minus the main-only one.
        assert db.last_report.prune.combos_total == 8


class TestPruningBenefit:
    def _pruning_after_updates(self, separate: bool) -> int:
        db = make_db(separate)
        load(db, n_headers=20)
        db.query(SQL, strategy=FULL)
        # Update traffic against main-resident rows...
        for hid in range(10):
            db.update("item", hid * 10 + 1, {"price": 2.0})
        # ...then fresh insert business.
        load(db, n_headers=3, start=200, merge=False)
        db.query(SQL, strategy=FULL)
        return db.last_report.prune

    def test_insert_delta_stays_prunable(self):
        with_udelta = self._pruning_after_updates(True)
        without = self._pruning_after_updates(False)
        # Without the update delta, the updated rows' old tids sit in the
        # single delta and the Hmain x Idelta subjoin cannot be pruned.
        assert without.evaluated > 1
        # With it, the insert delta keeps fresh tids: every main x
        # insert-delta cross is pruned; only delta-delta and the small
        # udelta subjoins are evaluated.
        assert with_udelta.pruned_dynamic >= without.pruned_dynamic
        assert with_udelta.evaluated <= without.evaluated + 2  # udelta combos are extra

    def test_udelta_subjoins_counted_but_cheap(self):
        # star_join_tables=() keeps enumeration exhaustive: after the
        # merge header's deltas are empty, so reduction would otherwise
        # pin it and count 2 combos instead of the udelta-shaped 8.
        db = make_db(True)
        load(db, n_headers=10)
        db.query(SQL, strategy=FULL, star_join_tables=())
        db.update("item", 1, {"price": 3.0})
        db.query(SQL, strategy=FULL, star_join_tables=())
        report = db.last_report.prune
        assert report.combos_total == 8
        # Most of the 8 compensation subjoins are pruned (empty or ranges).
        assert report.pruned_total >= 5
