"""Cross-query subjoin recycler: keying, validity windows, budget, accounting.

The recycler shares compensation-subjoin intermediates between overlapping
queries — same join core, different aggregation shape.  These tests pin the
contract down:

* the join-core fingerprint includes FROM order, join edges, and filters,
  and excludes group-by/aggregates (the cross-query sharing axis);
* a hit replays bit-identical rows (values, types, order) versus both the
  recycler-off run and the uncached truth;
* the snapshot-window validity check misses (outcome ``stale``) instead of
  replaying a scan that would not see rows stamped above the horizon;
* the byte budget evicts LRU entries and the occupancy is visible through
  ``tracked_bytes`` / ``counters_snapshot``.
"""

import pytest

from repro import CacheConfig, Database, ExecutionStrategy
from repro.core.recycler import RecycledSubjoin, SubjoinRecycler, join_core_fingerprint
from repro.query.executor import ComboSpec
from repro.query.sql import parse_sql

from ..conftest import PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

#: Same join core as PROFIT_SQL (FROM order, join edges, no extra filters),
#: different group-by and aggregate list — the recyclable overlap.
LANG_SQL = (
    "SELECT d.lang AS lang, COUNT(*) AS n "
    "FROM header h, item i, category d "
    "WHERE h.hid = i.hid AND i.cid = d.cid "
    "GROUP BY d.lang"
)
YEAR_SQL = (
    "SELECT h.year AS year, SUM(i.price) AS profit "
    "FROM header h, item i, category d "
    "WHERE h.hid = i.hid AND i.cid = d.cid "
    "GROUP BY h.year"
)
#: Same shape but an extra filter: a *different* join core.
FILTERED_SQL = (
    "SELECT d.name AS category, SUM(i.price) AS profit, COUNT(*) AS n "
    "FROM header h, item i, category d "
    "WHERE h.hid = i.hid AND i.cid = d.cid AND h.year = 2013 "
    "GROUP BY d.name"
)


def _typed(rows):
    return [tuple((type(v).__name__, v) for v in row) for row in rows]


def _db_with_delta(**kwargs) -> Database:
    """Merged mains plus a non-empty delta, so compensation subjoins run."""
    db = make_erp_db(**kwargs)
    load_erp(db, n_headers=8, merge=True)
    load_erp(db, n_headers=4, start_hid=100, merge=False)
    return db


class TestFingerprint:
    def test_aggregation_shape_is_excluded(self):
        fp = join_core_fingerprint(parse_sql(PROFIT_SQL))
        assert fp == join_core_fingerprint(parse_sql(LANG_SQL))
        assert fp == join_core_fingerprint(parse_sql(YEAR_SQL))

    def test_filters_are_included(self):
        fp = join_core_fingerprint(parse_sql(PROFIT_SQL))
        assert fp != join_core_fingerprint(parse_sql(FILTERED_SQL))

    def test_from_order_is_included(self):
        # Declaration order feeds the join-order tie-break, so swapping the
        # FROM list may produce differently-ordered tuples: never shared.
        swapped = (
            "SELECT d.name AS category, SUM(i.price) AS profit, COUNT(*) AS n "
            "FROM item i, header h, category d "
            "WHERE h.hid = i.hid AND i.cid = d.cid "
            "GROUP BY d.name"
        )
        fp = join_core_fingerprint(parse_sql(PROFIT_SQL))
        assert fp != join_core_fingerprint(parse_sql(swapped))


class TestCrossQueryRecycling:
    def test_overlapping_query_hits_and_matches_uncached(self):
        db = _db_with_delta()
        db.query(PROFIT_SQL, strategy=FULL)
        first = db.cache.counters_snapshot()
        assert first["recycler_stored"] > 0

        result = db.query(LANG_SQL, strategy=FULL)
        report = db.last_report
        assert report.recycler_hits > 0
        assert _typed(result.rows) == _typed(
            db.query(LANG_SQL, strategy=UNCACHED).rows
        )

        after = db.cache.counters_snapshot()
        assert after["recycler_hits"] >= report.recycler_hits

    def test_hit_rows_bit_identical_to_recycler_off(self):
        queries = [PROFIT_SQL, LANG_SQL, YEAR_SQL, FILTERED_SQL]
        db_on = _db_with_delta()
        db_off = _db_with_delta(
            cache_config=CacheConfig(subjoin_recycler=False)
        )
        assert db_off.cache.recycler is None
        for sql in queries * 2:
            on = db_on.query(sql, strategy=FULL)
            off = db_off.query(sql, strategy=FULL)
            truth = db_off.query(sql, strategy=UNCACHED)
            assert _typed(on.rows) == _typed(off.rows) == _typed(truth.rows)
        assert db_on.cache.counters_snapshot()["recycler_hits"] > 0

    def test_different_join_core_does_not_hit(self):
        db = _db_with_delta()
        db.query(PROFIT_SQL, strategy=FULL)
        db.query(FILTERED_SQL, strategy=FULL)
        assert db.last_report.recycler_hits == 0

    def test_dml_routes_to_fresh_key_with_correct_rows(self):
        # DML bumps the table versions folded into the plan signature, so
        # post-write queries miss (new key) instead of replaying a scan
        # that would not see the new rows.
        db = _db_with_delta()
        db.query(PROFIT_SQL, strategy=FULL)
        load_erp(db, n_headers=2, start_hid=300, merge=False)
        result = db.query(LANG_SQL, strategy=FULL)
        assert db.last_report.recycler_hits == 0
        assert _typed(result.rows) == _typed(
            db.query(LANG_SQL, strategy=UNCACHED).rows
        )

    def test_merge_purges_entries_for_the_table(self):
        db = _db_with_delta()
        db.query(PROFIT_SQL, strategy=FULL)
        assert db.cache.recycler.entry_count() > 0
        db.merge()
        assert db.cache.recycler.entry_count() == 0
        assert db.cache.recycler.stats()["invalidated"] > 0


class TestValidityWindow:
    """Direct ``_lookup`` coverage of the [anchor, horizon) window."""

    def _fixture(self):
        db = _db_with_delta()
        partition = db.table("item").partition("delta")
        combo = ComboSpec({"i": partition})
        entry = RecycledSubjoin(
            indices=None,
            partitions={"i": partition},
            row_counts={"i": partition.row_count},
            probe_side="i",
            anchor=10,
            horizon=20.0,
            nbytes=512,
            tables=frozenset({"item"}),
        )
        recycler = SubjoinRecycler()
        recycler._store(("key",), entry)
        return db, recycler, combo

    def test_snapshot_inside_window_hits(self):
        _db, recycler, combo = self._fixture()
        found, outcome = recycler._lookup(("key",), combo, 15)
        assert outcome == "hit" and found is not None

    def test_snapshot_at_horizon_is_stale(self):
        # An uncommitted transaction's rows sit above the horizon: a reader
        # that would see them must not replay the too-old scan.
        _db, recycler, combo = self._fixture()
        found, outcome = recycler._lookup(("key",), combo, 20)
        assert outcome == "stale" and found is None
        # Stale entries are dropped on sight, not retried forever.
        assert recycler.entry_count() == 0
        _found, outcome = recycler._lookup(("key",), combo, 15)
        assert outcome == "miss"

    def test_older_reader_below_anchor_is_stale(self):
        _db, recycler, combo = self._fixture()
        _found, outcome = recycler._lookup(("key",), combo, 9)
        assert outcome == "stale"

    def test_partition_identity_mismatch_is_stale(self):
        db, recycler, _combo = self._fixture()
        other = ComboSpec({"i": db.table("item").partition("main")})
        _found, outcome = recycler._lookup(("key",), other, 15)
        assert outcome == "stale"


class TestBudgetAndAccounting:
    def test_lru_eviction_under_tiny_budget(self):
        db = _db_with_delta(
            cache_config=CacheConfig(recycler_max_bytes=2048)
        )
        for sql in (PROFIT_SQL, LANG_SQL, YEAR_SQL, FILTERED_SQL) * 2:
            result = db.query(sql, strategy=FULL)
            assert _typed(result.rows) == _typed(
                db.query(sql, strategy=UNCACHED).rows
            )
            assert db.cache.recycler.nbytes() <= 2048
        assert db.cache.recycler.stats()["evictions"] > 0

    def test_oversized_entry_is_not_stored(self):
        recycler = SubjoinRecycler(max_bytes=64)
        entry = RecycledSubjoin(
            indices=None,
            partitions={},
            row_counts={},
            probe_side="i",
            anchor=1,
            horizon=9.0,
            nbytes=65,
            tables=frozenset(),
        )
        assert not recycler._store(("key",), entry)
        assert recycler.entry_count() == 0

    def test_bytes_show_in_tracked_bytes(self):
        db = _db_with_delta()
        before = db.cache.tracked_bytes()
        db.query(PROFIT_SQL, strategy=FULL)
        occupancy = db.cache.recycler.nbytes()
        assert occupancy > 0
        assert db.cache.tracked_bytes() >= before + occupancy

    def test_counters_snapshot_exposes_recycler_state(self):
        db = _db_with_delta()
        db.query(PROFIT_SQL, strategy=FULL)
        db.query(LANG_SQL, strategy=FULL)
        counters = db.cache.counters_snapshot()
        assert counters["recycler_entries"] == db.cache.recycler.entry_count()
        assert counters["recycler_bytes"] == db.cache.recycler.nbytes()
        assert counters["recycler_stored"] > 0
        assert counters["recycler_hits"] > 0

    def test_disabled_recycler_reports_zeroes(self):
        db = _db_with_delta(cache_config=CacheConfig(subjoin_recycler=False))
        db.query(PROFIT_SQL, strategy=FULL)
        counters = db.cache.counters_snapshot()
        assert counters["recycler_entries"] == 0
        assert counters["recycler_hits"] == 0
        assert db.last_report.recycler_hits == 0

    def test_clear_frees_everything(self):
        db = _db_with_delta()
        db.query(PROFIT_SQL, strategy=FULL)
        count, freed = db.cache.recycler.clear()
        assert count > 0 and freed > 0
        assert db.cache.recycler.nbytes() == 0
