"""Property-based end-to-end correctness: for arbitrary interleavings of
inserts, updates, deletes, merges, and queries, every cached strategy must
return exactly the uncached result.

This is the paper's central correctness claim ("the join pruning using these
MDs will be correct" whether or not the temporal soft-constraint holds, and
compensation reconstructs the consistent result), exercised under hypothesis
with operation sequences that include temporal-locality violations (late
items), unsynchronized merges, and main invalidations.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, ExecutionStrategy

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, make_erp_db

STRATEGIES = [
    ExecutionStrategy.CACHED_NO_PRUNING,
    ExecutionStrategy.CACHED_EMPTY_DELTA,
    ExecutionStrategy.CACHED_FULL_PRUNING,
]

# One workload step: (op, argument)
operation = st.one_of(
    st.tuples(st.just("insert_object"), st.integers(0, 3)),  # items per object
    st.tuples(st.just("late_item"), st.integers(0, 999)),  # header selector
    st.tuples(st.just("update_item"), st.integers(0, 999)),
    st.tuples(st.just("delete_item"), st.integers(0, 999)),
    st.tuples(st.just("delete_header"), st.integers(0, 999)),
    st.tuples(st.just("merge_all"), st.just(0)),
    st.tuples(st.just("merge_item_only"), st.just(0)),
    st.tuples(st.just("query"), st.just(0)),
)


class WorkloadRunner:
    """Applies an operation sequence, tracking live keys for determinism."""

    def __init__(self, separate_update_delta: bool = False):
        self.db = make_erp_db(separate_update_delta=separate_update_delta)
        self.db.insert("category", {"cid": 0, "name": "c0", "lang": "ENG"})
        self.db.insert("category", {"cid": 1, "name": "c1", "lang": "ENG"})
        self.next_hid = 0
        self.next_iid = 0
        self.live_headers = []
        self.live_items = []

    def apply(self, op, arg):
        db = self.db
        if op == "insert_object":
            hid = self.next_hid
            self.next_hid += 1
            items = []
            for k in range(arg):
                items.append(
                    {
                        "iid": self.next_iid,
                        "hid": hid,
                        "cid": (hid + k) % 2,
                        "price": float(k + 1),
                    }
                )
                self.live_items.append(self.next_iid)
                self.next_iid += 1
            db.insert_business_object(
                "header", {"hid": hid, "year": 2013}, "item", items
            )
            self.live_headers.append(hid)
        elif op == "late_item":
            if not self.live_headers:
                return
            hid = self.live_headers[arg % len(self.live_headers)]
            db.insert(
                "item",
                {"iid": self.next_iid, "hid": hid, "cid": 0, "price": 9.0},
            )
            self.live_items.append(self.next_iid)
            self.next_iid += 1
        elif op == "update_item":
            if not self.live_items:
                return
            iid = self.live_items[arg % len(self.live_items)]
            db.update("item", iid, {"price": float(arg % 7) + 0.5})
        elif op == "delete_item":
            if not self.live_items:
                return
            iid = self.live_items.pop(arg % len(self.live_items))
            db.delete("item", iid)
        elif op == "delete_header":
            if not self.live_headers:
                return
            hid = self.live_headers.pop(arg % len(self.live_headers))
            db.delete("header", hid)
        elif op == "merge_all":
            db.merge()
        elif op == "merge_item_only":
            db.merge("item")
        elif op == "query":
            self.check()

    def check(self):
        for sql in (HEADER_ITEM_SQL, PROFIT_SQL):
            reference = self.db.query(sql, strategy=ExecutionStrategy.UNCACHED)
            for strategy in STRATEGIES:
                got = self.db.query(sql, strategy=strategy)
                assert got == reference, (
                    f"{strategy} diverged: {got.rows} != {reference.rows}"
                )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(operation, min_size=1, max_size=25), st.booleans())
def test_all_strategies_equal_uncached(ops, separate_update_delta):
    runner = WorkloadRunner(separate_update_delta=separate_update_delta)
    for op, arg in ops:
        runner.apply(op, arg)
    runner.check()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(operation, min_size=1, max_size=15), st.integers(0, 2))
def test_entry_reuse_across_workload(ops, extra_queries):
    """Interleaved queries keep entries warm; results stay exact even when
    the same entries are compensated repeatedly."""
    runner = WorkloadRunner()
    runner.apply("insert_object", 2)
    runner.check()  # create entries early so later ops hit the maintained path
    for op, arg in ops:
        runner.apply(op, arg)
    for _ in range(extra_queries):
        runner.check()
    runner.check()
