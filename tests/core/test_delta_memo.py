"""Delta-compensation memo lifecycle: validity matrix, bypasses, parity.

The memo (repro.core.delta_memo) reuses the folded compensation value of a
previous hit and rescans only the delta rows appended past its watermarks.
These tests pin down every way that reuse must *not* happen — DML on each
referenced table, merges, older readers, future stamps below the watermark
— and that serial/parallel and memo-on/off runs agree bit for bit.
"""

import random

import pytest

from repro import CacheConfig, Database, ExecutionStrategy
from repro.query.parallel import ParallelConfig

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def _uncached_rows(db, sql, **kwargs):
    return db.query(sql, strategy=UNCACHED, **kwargs).rows


class TestMemoReuse:
    def test_first_hit_builds_then_reuses(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.delta_memo_mode == "full"
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        report = erp_db.last_report
        assert report.delta_memo_mode == "incremental"
        assert report.delta_memo_rows_saved > 0
        # Nothing changed, so no subjoin needs any rescan at all.
        assert report.executor_stats.combos_evaluated == 0
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)

    def test_appended_delta_rows_fold_in_incrementally(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.query(PROFIT_SQL, strategy=FULL)
        load_erp(erp_db, n_headers=3, start_hid=200, merge=False)
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        report = erp_db.last_report
        assert report.delta_memo_mode == "incremental"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)
        # The appended rows were scanned; the covered prefix was not.
        assert report.executor_stats.combos_evaluated > 0
        assert report.delta_memo_rows_saved > 0

    def test_memo_tracks_exclusion_decision_across_strategies(self, erp_db):
        """Strategy changes that keep the star-join exclusion decision
        reuse the memo; ones that change it rebuild.  FULL excludes the
        empty-delta category table while NO_PRUNING enumerates
        exhaustively, so a FULL-built memo (folded over the reduced combo
        set, category delta uncovered) must NOT be replayed for the
        NO_PRUNING plan — growth in category's delta would be invisible
        to its watermarks."""
        erp_db.query(PROFIT_SQL, strategy=FULL)
        result = erp_db.query(
            PROFIT_SQL, strategy=ExecutionStrategy.CACHED_NO_PRUNING
        )
        assert erp_db.last_report.delta_memo_mode == "full"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)
        # Same strategy again: same exclusion fingerprint -> reuse.
        erp_db.query(PROFIT_SQL, strategy=ExecutionStrategy.CACHED_NO_PRUNING)
        assert erp_db.last_report.delta_memo_mode == "incremental"

    def test_memo_survives_strategy_changes_same_combo_set(self, erp_db):
        """With reduction pinned off on both sides, a memo folded under
        one strategy is valid under another: pruned subjoins are *truly*
        empty, so they contribute zero to the fold."""
        erp_db.query(PROFIT_SQL, strategy=FULL, star_join_tables=())
        result = erp_db.query(
            PROFIT_SQL,
            strategy=ExecutionStrategy.CACHED_NO_PRUNING,
            star_join_tables=(),
        )
        assert erp_db.last_report.delta_memo_mode == "incremental"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)

    def test_report_counters_reach_statistics(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.query(PROFIT_SQL, strategy=FULL)
        stats = erp_db.statistics().cache
        assert stats.memo_misses == 1
        assert stats.memo_hits == 1
        assert "delta-memo" in erp_db.statistics().render()


class TestInvalidationMatrix:
    @pytest.mark.parametrize("table,pk", [("header", 0), ("item", 1), ("category", 0)])
    def test_update_on_each_referenced_table_rebuilds(self, erp_db, table, pk):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.query(PROFIT_SQL, strategy=FULL)
        changes = {
            "header": {"year": 2099},
            "item": {"price": 50.0},
            "category": {"name": "renamed"},
        }[table]
        erp_db.update(table, pk, changes)
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        # The update invalidated a stored row (epoch bump) and appended the
        # new version: the memo must not be reused as-is.
        assert erp_db.last_report.delta_memo_mode == "full"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)

    @pytest.mark.parametrize("table,pk", [("header", 2), ("item", 3), ("category", 1)])
    def test_delete_on_each_referenced_table_rebuilds(self, erp_db, table, pk):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.delete(table, pk)
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.delta_memo_mode == "full"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)

    def test_delta_merge_resets_the_memo(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.query(PROFIT_SQL, strategy=FULL)
        (entry,) = erp_db.cache.entries()
        assert entry.delta_memo is not None
        erp_db.merge()
        assert entry.delta_memo is None  # rebase re-anchored the entry
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.delta_memo_mode == "full"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)
        # And the freshly installed memo serves the next hit again.
        erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.delta_memo_mode == "incremental"

    def test_future_cts_below_watermark_forces_rebuild(self, erp_db):
        """Rows appended by writers *newer* than a pinned reader end up
        below the watermark when that reader advances the memo.  No epoch
        ever moves, yet the rows become visible later — the horizon must
        catch them."""
        erp_db.query(PROFIT_SQL, strategy=FULL)  # entry + memo installed
        txn = erp_db.begin()  # snapshot S
        load_erp(erp_db, n_headers=2, start_hid=300, merge=False)  # cts > S
        before = _uncached_rows(erp_db, PROFIT_SQL, txn=txn)
        result = erp_db.query(PROFIT_SQL, strategy=FULL, txn=txn)
        # The pinned reader reuses the memo (nothing it can see changed),
        # scans the suffix (finding nothing visible), and advances the
        # watermarks *over* the still-invisible rows.
        assert erp_db.last_report.delta_memo_mode == "incremental"
        assert result.rows == before
        txn.commit()
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        # The advanced memo covers rows this newer reader must see; its
        # horizon (the smallest future cts) forces the rebuild.
        assert erp_db.last_report.delta_memo_mode == "full"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)
        assert result.rows != before

    def test_future_dts_below_watermark_forces_rebuild(self, erp_db):
        """The deleter-side twin: a covered row whose delete committed after
        the pinned reader's snapshot.  The rebuild triggered by the epoch
        bump anchors a memo that still *contains* the row (the deleter is
        invisible to it); only the horizon keeps newer readers away."""
        erp_db.query(PROFIT_SQL, strategy=FULL)  # entry exists
        txn = erp_db.begin()  # snapshot S sees hid=100's first item
        erp_db.delete("item", 100 * 100)  # dts > S, epoch bump
        result = erp_db.query(PROFIT_SQL, strategy=FULL, txn=txn)
        assert erp_db.last_report.delta_memo_mode == "full"  # epoch moved
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL, txn=txn)
        txn.commit()
        # The fresh memo's epochs match current state; without the horizon
        # its folded value — deleted row included — would be served stale.
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.delta_memo_mode == "full"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)


class TestBypasses:
    def test_disabled_by_config(self):
        db = make_erp_db(cache_config=CacheConfig(delta_memo=False))
        load_erp(db, n_headers=4, merge=True)
        load_erp(db, n_headers=2, start_hid=100, merge=False)
        db.query(PROFIT_SQL, strategy=FULL)
        result = db.query(PROFIT_SQL, strategy=FULL)
        report = db.last_report
        assert report.delta_memo_mode == "bypass"
        assert report.delta_memo_reason == "disabled"
        assert result.rows == _uncached_rows(db, PROFIT_SQL)
        (entry,) = db.cache.entries()
        assert entry.delta_memo is None

    def test_older_reader_bypasses_and_keeps_the_memo(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)  # entry at snapshot S0
        txn = erp_db.begin()  # reader R >= S0
        load_erp(erp_db, n_headers=1, start_hid=400, merge=False)
        erp_db.query(PROFIT_SQL, strategy=FULL)  # memo advances past R
        (entry,) = erp_db.cache.entries()
        memo = entry.delta_memo
        assert memo is not None and memo.anchor > txn.snapshot
        result = erp_db.query(PROFIT_SQL, strategy=FULL, txn=txn)
        report = erp_db.last_report
        assert report.delta_memo_mode == "bypass"
        assert report.delta_memo_reason == "older_reader"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL, txn=txn)
        assert entry.delta_memo is memo  # kept for newer readers
        txn.commit()
        erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.delta_memo_mode == "incremental"

    def test_direct_scan_answers_bypass(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        # A time-travel reader older than the entry's anchor is answered by
        # a direct scan; no entry owns its compensation, so no memo engages.
        result = erp_db.query(PROFIT_SQL, strategy=FULL, as_of=1)
        report = erp_db.last_report
        assert report.delta_memo_mode == "bypass"
        assert report.delta_memo_reason == "no_entry"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL, as_of=1)

    def test_plan_cache_disabled_still_reuses_the_memo(self):
        db = make_erp_db(cache_config=CacheConfig(plan_cache_size=0))
        load_erp(db, n_headers=4, merge=True)
        load_erp(db, n_headers=2, start_hid=100, merge=False)
        db.query(PROFIT_SQL, strategy=FULL)
        load_erp(db, n_headers=1, start_hid=200, merge=False)
        result = db.query(PROFIT_SQL, strategy=FULL)
        # Validity is keyed on partition identity, not plan identity: a
        # freshly planned query reuses the memo all the same.
        assert db.last_report.delta_memo_mode == "incremental"
        assert result.rows == _uncached_rows(db, PROFIT_SQL)


def _randomized_run(db, rng_seed: int, queries=(PROFIT_SQL, HEADER_ITEM_SQL)):
    """One deterministic interleaving of DML, merges, and cached queries.

    Prices are multiples of 0.25 — exactly representable — so any result
    divergence between configurations is a logic bug, not float noise.
    """
    rng = random.Random(rng_seed)
    outputs = []
    next_hid, next_iid = 1000, 100000
    for step in range(40):
        action = rng.random()
        if action < 0.35:
            hid = next_hid
            next_hid += 1
            items = []
            for _ in range(rng.randint(1, 3)):
                items.append(
                    {
                        "iid": next_iid,
                        "hid": hid,
                        "cid": rng.randint(0, 1),
                        "price": rng.randint(1, 400) / 4.0,
                    }
                )
                next_iid += 1
            db.insert_business_object(
                "header", {"hid": hid, "year": 2013 + hid % 3}, "item", items
            )
        elif action < 0.45 and next_hid > 1000:
            victim = rng.randrange(1000, next_hid)
            if db.table("header").get_row(victim) is not None:
                db.update("header", victim, {"year": 2050})
        elif action < 0.55 and next_iid > 100000:
            victim = rng.randrange(100000, next_iid)
            if db.table("item").get_row(victim) is not None:
                db.delete("item", victim)
        elif action < 0.6:
            db.merge()
        sql = queries[rng.randrange(len(queries))]
        outputs.append((step, sql, db.query(sql, strategy=FULL).rows))
        if rng.random() < 0.2:
            # Cross-check against the uncached truth mid-stream.
            assert outputs[-1][2] == _uncached_rows(db, sql)
    return outputs


class TestParity:
    @pytest.mark.parametrize("seed", [7, 21])
    def test_memo_on_off_serial_parallel_identical(self, seed):
        """The same randomized history must produce bit-identical rows under
        every (memo, parallelism) combination."""
        configs = {
            "memo-serial": dict(cache_config=CacheConfig(delta_memo=True)),
            "nomemo-serial": dict(cache_config=CacheConfig(delta_memo=False)),
            "memo-parallel": dict(
                cache_config=CacheConfig(delta_memo=True),
                parallel=ParallelConfig(n_workers=4, min_combos=1, min_rows=1),
            ),
            "nomemo-parallel": dict(
                cache_config=CacheConfig(delta_memo=False),
                parallel=ParallelConfig(n_workers=4, min_combos=1, min_rows=1),
            ),
        }
        reference = None
        for name, kwargs in configs.items():
            db = make_erp_db(**kwargs)
            load_erp(db, n_headers=5, merge=True)
            outputs = _randomized_run(db, seed)
            if reference is None:
                reference = outputs
                # The memo actually engaged in the reference run.
                assert db.cache.counters_snapshot()["memo_hits"] > 0
            else:
                assert outputs == reference, f"{name} diverged"

    def test_concurrent_writer_snapshots(self, erp_db):
        """Readers pinned across writer commits never see memo'd rows from
        the future, whichever side of the anchor they land on."""
        erp_db.query(PROFIT_SQL, strategy=FULL)
        snapshots = []
        for round_no in range(4):
            txn = erp_db.begin()
            expect = _uncached_rows(erp_db, PROFIT_SQL, txn=txn)
            snapshots.append((txn, expect))
            load_erp(erp_db, n_headers=1, start_hid=600 + round_no, merge=False)
            erp_db.query(PROFIT_SQL, strategy=FULL)  # advances the memo
        for txn, expect in snapshots:
            assert erp_db.query(PROFIT_SQL, strategy=FULL, txn=txn).rows == expect
            txn.commit()
