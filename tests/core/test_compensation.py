"""Tests for main compensation (Section 2.2) including join entries."""

import pytest

from repro import Database, ExecutionStrategy
from repro.core import StaleEntryError, apply_main_compensation
from repro.core.main_compensation import apply_main_compensation as amc

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, make_erp_db, load_erp

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def entry_for(db, sql):
    entries = db.cache.entries_for(db.parse(sql))
    assert len(entries) == 1
    return entries[0]


class TestSingleTableCompensation:
    SQL = "SELECT cid, SUM(price) AS s, COUNT(*) AS n FROM item GROUP BY cid"

    def make(self):
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=True)
        db.query(self.SQL, strategy=FULL)  # create the entry
        return db

    def test_update_subtracted_and_new_version_added(self):
        db = self.make()
        before = db.query(self.SQL, strategy=UNCACHED)
        db.update("item", 0, {"price": 999.0})
        cached = db.query(self.SQL, strategy=FULL)
        uncached = db.query(self.SQL, strategy=UNCACHED)
        assert cached == uncached
        assert cached != before
        assert db.last_report is not None

    def test_delete_compensated(self):
        db = self.make()
        db.delete("item", 1)
        cached = db.query(self.SQL, strategy=FULL)
        assert cached == db.query(self.SQL, strategy=UNCACHED)

    def test_group_disappears_when_all_rows_deleted(self):
        db = make_erp_db()
        db.insert("category", {"cid": 0, "name": "c", "lang": "ENG"})
        db.insert("header", {"hid": 1, "year": 2013})
        db.insert("item", {"iid": 1, "hid": 1, "cid": 0, "price": 5.0})
        db.merge()
        db.query(self.SQL, strategy=FULL)
        db.delete("item", 1)
        cached = db.query(self.SQL, strategy=FULL)
        assert len(cached) == 0

    def test_compensation_counts_rows(self):
        db = self.make()
        db.update("item", 0, {"price": 1.5})
        db.update("item", 2, {"price": 2.5})
        db.query(self.SQL, strategy=FULL)
        assert db.last_report.invalidated_rows_compensated == 2

    def test_clean_entry_no_compensation(self):
        db = self.make()
        db.query(self.SQL, strategy=FULL)
        assert db.last_report.invalidated_rows_compensated == 0
        assert db.last_report.cache_hits == 1


class TestJoinEntryCompensation:
    def make(self):
        db = make_erp_db()
        load_erp(db, n_headers=5, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        return db

    def test_item_update(self):
        db = self.make()
        db.update("item", 0, {"price": 500.0})
        assert db.query(HEADER_ITEM_SQL, strategy=FULL) == db.query(
            HEADER_ITEM_SQL, strategy=UNCACHED
        )

    def test_header_delete_removes_joined_items(self):
        db = self.make()
        # Deleting a header invalidates its main row; its items no longer join.
        db.delete("header", 2)
        cached = db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert cached == db.query(HEADER_ITEM_SQL, strategy=UNCACHED)

    def test_invalidations_in_both_tables_inclusion_exclusion(self):
        db = self.make()
        # One header and two items invalidated: the 2^k-1 expansion must not
        # double-subtract the (header x item) doubly-invalidated tuples.
        db.update("item", 1, {"price": 123.0})
        db.delete("item", 2)
        db.delete("header", 1)
        cached = db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert cached == db.query(HEADER_ITEM_SQL, strategy=UNCACHED)

    def test_three_table_join_with_dimension_update(self):
        db = make_erp_db()
        load_erp(db, n_headers=5, merge=True)
        db.query(PROFIT_SQL, strategy=FULL)
        db.update("category", 0, {"name": "renamed"})
        cached = db.query(PROFIT_SQL, strategy=FULL)
        assert cached == db.query(PROFIT_SQL, strategy=UNCACHED)
        assert "renamed" in cached.column_values("category")

    def test_update_of_updated_row_in_delta_is_transparent(self):
        """Updates of rows living in the delta never touch main compensation
        (Section 2.2: handled transparently)."""
        db = self.make()
        db.insert("header", {"hid": 900, "year": 2013})
        db.insert("item", {"iid": 900, "hid": 900, "cid": 0, "price": 10.0})
        db.update("item", 900, {"price": 20.0})  # old version is in the delta
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.last_report.invalidated_rows_compensated == 0
        assert db.query(HEADER_ITEM_SQL, strategy=FULL) == db.query(
            HEADER_ITEM_SQL, strategy=UNCACHED
        )


class TestStaleEntries:
    def test_direct_api_raises_on_stale_entry(self):
        db = make_erp_db()
        load_erp(db, n_headers=3, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        entry = entry_for(db, HEADER_ITEM_SQL)
        # Merge WITHOUT the cache listener: the entry goes stale.
        from repro.storage import merge_table

        load_erp(db, n_headers=1, start_hid=300, merge=False)
        merge_table(db.table("item"), db.transactions.global_snapshot())
        grouped = entry.value.copy()
        with pytest.raises(StaleEntryError):
            amc(entry, db.executor, db.transactions.global_snapshot(), grouped)

    def test_manager_recovers_from_stale_entry(self):
        db = make_erp_db()
        load_erp(db, n_headers=3, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        from repro.storage import merge_table

        load_erp(db, n_headers=1, start_hid=300, merge=False)
        merge_table(db.table("item"), db.transactions.global_snapshot())
        db.table("item").rebuild_pk_index()
        result = db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.last_report.entries_recomputed == 1
        assert result == db.query(HEADER_ITEM_SQL, strategy=UNCACHED)
