"""Error-path behavior: transaction hygiene and typed failure surfaces."""

import pytest

from repro import (
    CatalogError,
    IntegrityError,
    SchemaError,
    SqlSyntaxError,
    StorageError,
    TransactionError,
    parse_sql,
)
from repro.errors import UnsupportedQueryError

from ..conftest import PROFIT_SQL, load_erp, make_erp_db


def track_finishes(db):
    """Record (tid, state) of every transaction end."""
    finished = []
    db.transactions.finish_hooks.append(
        lambda txn: finished.append((txn.tid, txn.state))
    )
    return finished


class TestTransactionLeak:
    """A failing auto-commit operation must abort its own transaction, not
    leave it active (and, in durable mode, its WAL buffer unflushed) forever."""

    def test_failed_insert_aborts_auto_transaction(self):
        db = make_erp_db()
        finished = track_finishes(db)
        with pytest.raises(CatalogError):
            db.insert("no_such_table", {"x": 1})
        assert finished and finished[-1][1] == "aborted"

    def test_failed_insert_bad_row_aborts(self):
        db = make_erp_db()
        finished = track_finishes(db)
        with pytest.raises(SchemaError):
            db.insert("header", {"hid": 1, "year": "not-an-int"})
        assert finished[-1][1] == "aborted"

    def test_failed_update_and_delete_abort(self):
        db = make_erp_db()
        db.insert("header", {"hid": 1, "year": 2013})
        finished = track_finishes(db)
        with pytest.raises(IntegrityError):
            db.update("header", 1, {"hid": 2})  # pk update unsupported
        assert finished[-1][1] == "aborted"
        with pytest.raises(CatalogError):
            db.delete("no_such_table", 1)
        assert finished[-1][1] == "aborted"

    def test_failed_insert_many_aborts_shared_transaction(self):
        db = make_erp_db()
        finished = track_finishes(db)
        with pytest.raises(SchemaError):
            db.insert_many(
                "header",
                [{"hid": 1, "year": 2013}, {"hid": 2, "year": object()}],
            )
        assert finished[-1][1] == "aborted"

    def test_failed_business_object_aborts(self):
        db = make_erp_db()
        db.insert("category", {"cid": 0, "name": "cat0", "lang": "ENG"})
        finished = track_finishes(db)
        with pytest.raises(SchemaError):
            db.insert_business_object(
                "header",
                {"hid": 1, "year": 2013},
                "item",
                [{"iid": 1, "hid": 1, "cid": 0, "price": "free"}],
            )
        assert finished[-1][1] == "aborted"

    def test_failed_query_aborts_auto_transaction(self):
        db = make_erp_db()
        finished = track_finishes(db)
        with pytest.raises((CatalogError, UnsupportedQueryError)):
            db.query("SELECT SUM(x.a) AS s FROM missing_table x GROUP BY x.a")
        assert finished[-1][1] == "aborted"

    def test_explicit_transaction_is_left_to_the_caller(self):
        db = make_erp_db()
        txn = db.begin()
        with pytest.raises(CatalogError):
            db.insert("no_such_table", {"x": 1}, txn=txn)
        # The caller's transaction is untouched and still usable.
        assert txn.is_active
        db.insert("header", {"hid": 1, "year": 2013}, txn=txn)
        txn.commit()
        assert db.table("header").get_row(1) is not None


class TestTransactionErrors:
    def test_double_commit_raises(self):
        db = make_erp_db()
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_double_abort_raises(self):
        db = make_erp_db()
        txn = db.begin()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.abort()

    def test_commit_after_abort_raises(self):
        db = make_erp_db()
        txn = db.begin()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_write_through_closed_transaction_raises(self):
        db = make_erp_db()
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            db.insert("header", {"hid": 1, "year": 2013}, txn=txn)
        with pytest.raises(TransactionError):
            db.query(PROFIT_SQL, txn=txn)


class TestSqlErrors:
    def test_syntax_error_carries_position(self):
        sql = "SELECT @ FROM t"
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_sql(sql)
        assert excinfo.value.position == sql.index("@")

    def test_truncated_query_position_in_range(self):
        sql = "SELECT SUM(x.a) AS s FROM"
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_sql(sql)
        assert 0 <= excinfo.value.position <= len(sql)


class TestStorageErrors:
    def test_future_tid_rows_fail_merge_and_leave_table_intact(self):
        db = make_erp_db()
        load_erp(db, n_headers=2, merge=False)
        # Bypass the transaction manager: a row stamped from the future is
        # an engine bug, and the merge must surface it loudly...
        db.table("header").insert({"hid": 999, "year": 2020, "tid_header": 0}, tid=10_000)
        delta_before = db.table("header").partition("delta").row_count
        with pytest.raises(StorageError):
            db.merge("header")
        # ...without half-merging: the two-phase merge swapped nothing.
        assert db.table("header").partition("delta").row_count == delta_before
        assert db.table("header").partition("main").row_count == 0
