"""Tests for incremental cache maintenance at delta-merge time (Section 5.2)."""

import pytest

from repro import CacheConfig, Database, ExecutionStrategy, MaintenanceMode
from repro.storage import threshold_aging

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


class TestIncrementalMaintenance:
    def test_entry_survives_merge_and_stays_correct(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        erp_db.merge()
        result = erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert erp_db.last_report.cache_hits == 1
        assert erp_db.last_report.entries_recomputed == 0
        assert result == erp_db.query(HEADER_ITEM_SQL, strategy=UNCACHED)

    def test_entry_value_absorbs_merged_delta(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        (entry,) = erp_db.cache.entries_for(erp_db.parse(HEADER_ITEM_SQL))
        before = entry.metrics.aggregated_records_main
        erp_db.merge()
        assert entry.metrics.aggregated_records_main == before + 6  # 2 objects x 3
        assert entry.metrics.maintenance_time > 0

    def test_maintenance_pays_off_invalidation_debt(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        erp_db.update("item", 0, {"price": 999.0})
        erp_db.merge()
        result = erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        # Debt was retired at merge time: nothing to compensate now.
        assert erp_db.last_report.invalidated_rows_compensated == 0
        assert result == erp_db.query(HEADER_ITEM_SQL, strategy=UNCACHED)

    def test_repeated_merges(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        for round_no in range(3):
            load_erp(erp_db, n_headers=2, start_hid=500 + round_no * 10, merge=False)
            erp_db.merge()
            assert erp_db.query(HEADER_ITEM_SQL, strategy=FULL) == erp_db.query(
                HEADER_ITEM_SQL, strategy=UNCACHED
            )
        (entry,) = erp_db.cache.entries_for(erp_db.parse(HEADER_ITEM_SQL))
        assert entry.metrics.status.value == "active"

    def test_unsynchronized_merges_stay_correct(self, erp_db):
        """Merging item and header independently (Section 5.2's bad case for
        pruning success) must still maintain entries exactly."""
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        erp_db.merge("item")
        assert erp_db.query(HEADER_ITEM_SQL, strategy=FULL) == erp_db.query(
            HEADER_ITEM_SQL, strategy=UNCACHED
        )
        erp_db.merge("header")
        result = erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert erp_db.last_report.cache_hits == 1
        assert result == erp_db.query(HEADER_ITEM_SQL, strategy=UNCACHED)

    def test_three_table_entry_maintained(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.insert("category", {"cid": 9, "name": "new", "lang": "ENG"})
        load_erp(erp_db, n_headers=1, start_hid=900, merge=False)
        erp_db.merge()
        cached = erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.cache_hits == 1
        assert cached == erp_db.query(PROFIT_SQL, strategy=UNCACHED)

    def test_merge_with_empty_delta_is_noop_for_value(self, erp_db):
        erp_db.merge()
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        (entry,) = erp_db.cache.entries_for(erp_db.parse(HEADER_ITEM_SQL))
        value_before = sorted(entry.value.copy().finalize())
        erp_db.merge()  # nothing in the deltas
        assert sorted(entry.value.finalize()) == value_before


class TestDropMode:
    def test_entries_dropped_on_merge(self):
        db = make_erp_db(
            cache_config=CacheConfig(maintenance_mode=MaintenanceMode.DROP)
        )
        load_erp(db, n_headers=4, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.cache.entry_count() == 1
        load_erp(db, n_headers=1, start_hid=50, merge=False)
        db.merge("item")
        assert db.cache.entry_count() == 0
        # Next query recreates the entry with correct contents.
        result = db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.last_report.entries_created == 1
        assert result == db.query(HEADER_ITEM_SQL, strategy=UNCACHED)

    def test_unrelated_entries_survive_drop_mode(self):
        db = make_erp_db(
            cache_config=CacheConfig(maintenance_mode=MaintenanceMode.DROP)
        )
        load_erp(db, n_headers=4, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        db.query("SELECT lang, COUNT(*) AS n FROM category GROUP BY lang", strategy=FULL)
        db.merge("header")  # touches only the header/item entry
        assert db.cache.entry_count() == 1


class TestAgedMaintenance:
    def make_aged(self):
        db = Database()
        db.create_table(
            "header",
            [("hid", "INT"), ("year", "INT")],
            primary_key="hid",
            aging_rule=threshold_aging("year", 2014),
        )
        db.create_table(
            "item",
            [("iid", "INT"), ("hid", "INT"), ("year", "INT"), ("price", "FLOAT")],
            primary_key="iid",
            aging_rule=threshold_aging("year", 2014),
        )
        db.add_matching_dependency("header", "hid", "item", "hid")
        db.declare_consistent_aging("header", "item")
        for hid, year in [(1, 2010), (2, 2015), (3, 2016)]:
            db.insert_business_object(
                "header",
                {"hid": hid, "year": year},
                "item",
                [
                    {"iid": hid * 10 + k, "hid": hid, "year": year, "price": float(k + 1)}
                    for k in range(2)
                ],
            )
        db.merge()
        return db

    SQL = "SELECT h.year AS y, SUM(i.price) AS s FROM header h, item i WHERE h.hid = i.hid GROUP BY h.year"

    def test_one_entry_per_temperature_combination(self):
        db = self.make_aged()
        db.query(self.SQL, strategy=FULL)
        # 2 tables x {hot_main, cold_main} = 4 all-main combos = 4 entries.
        assert db.cache.entry_count() == 4

    def test_hot_group_merge_maintains_only_hot_entries(self):
        db = self.make_aged()
        db.query(self.SQL, strategy=FULL)
        db.insert_business_object(
            "header",
            {"hid": 9, "year": 2017},
            "item",
            [{"iid": 90, "hid": 9, "year": 2017, "price": 5.0}],
        )
        db.merge("header", group_name="hot")
        db.merge("item", group_name="hot")
        result = db.query(self.SQL, strategy=FULL)
        assert db.last_report.cache_hits == 4
        assert result == db.query(self.SQL, strategy=UNCACHED)

    def test_correctness_across_temperatures(self):
        db = self.make_aged()
        reference = db.query(self.SQL, strategy=UNCACHED)
        assert db.query(self.SQL, strategy=FULL) == reference
        assert db.query(
            self.SQL, strategy=ExecutionStrategy.CACHED_NO_PRUNING
        ) == reference
