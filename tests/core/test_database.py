"""Tests for the Database facade."""

import pytest

from repro import (
    CatalogError,
    Database,
    ExecutionStrategy,
    IntegrityError,
    Schema,
    SchemaError,
    SqlType,
)
from repro.storage import ColumnDef

from ..conftest import HEADER_ITEM_SQL, load_erp, make_erp_db


class TestDDL:
    def test_create_table_from_tuples(self):
        db = Database()
        table = db.create_table("t", [("a", "INT"), ("b", "text")], primary_key="a")
        assert table.schema.column("b").sql_type is SqlType.TEXT
        assert db.table("t") is table

    def test_create_table_from_schema(self):
        db = Database()
        schema = Schema([ColumnDef("a", SqlType.INT)], primary_key="a")
        table = db.create_table("t", schema)
        assert table.schema is schema

    def test_create_table_from_columndefs(self):
        db = Database()
        table = db.create_table(
            "t", [ColumnDef("a", SqlType.INT, nullable=False)], primary_key="a"
        )
        assert not table.schema.column("a").nullable

    def test_bad_type_name(self):
        db = Database()
        with pytest.raises(ValueError):
            db.create_table("t", [("a", "BLOB")])

    def test_drop_table_evicts_only_referencing_entries(self):
        db = make_erp_db()
        load_erp(db, n_headers=2, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
        assert db.cache.entry_count() == 1
        # The header/item entry does not reference category: it survives.
        db.drop_table("category")
        assert db.cache.entry_count() == 1
        with pytest.raises(CatalogError):
            db.table("category")
        # Dropping a referenced table evicts the entry.
        db.drop_table("item")
        assert db.cache.entry_count() == 0

    def test_declare_consistent_aging_requires_tables(self):
        db = Database()
        db.create_table("a", [("x", "INT")])
        with pytest.raises(CatalogError):
            db.declare_consistent_aging("a", "missing")


class TestDML:
    def test_insert_autocommit_assigns_tids(self):
        db = make_erp_db()
        db.insert("header", {"hid": 1, "year": 2013})
        db.insert("header", {"hid": 2, "year": 2013})
        t1 = db.table("header").get_row(1)["tid_header"]
        t2 = db.table("header").get_row(2)["tid_header"]
        assert t2 > t1

    def test_insert_many_single_transaction(self):
        db = make_erp_db()
        count = db.insert_many(
            "header", [{"hid": h, "year": 2013} for h in range(3)]
        )
        assert count == 3
        tids = {db.table("header").get_row(h)["tid_header"] for h in range(3)}
        assert len(tids) == 1  # one shared transaction

    def test_insert_business_object_returns_item_count(self):
        db = make_erp_db()
        n = db.insert_business_object(
            "header",
            {"hid": 1, "year": 2013},
            "item",
            [{"iid": k, "hid": 1, "cid": None, "price": 1.0} for k in range(4)],
        )
        assert n == 4

    def test_explicit_transaction_shared_across_calls(self):
        db = make_erp_db()
        txn = db.begin()
        db.insert("header", {"hid": 1, "year": 2013}, txn=txn)
        db.insert("header", {"hid": 2, "year": 2013}, txn=txn)
        txn.commit()
        assert (
            db.table("header").get_row(1)["tid_header"]
            == db.table("header").get_row(2)["tid_header"]
        )

    def test_update_delete_roundtrip(self):
        db = make_erp_db()
        db.insert("header", {"hid": 1, "year": 2013})
        db.update("header", 1, {"year": 2014})
        assert db.table("header").get_row(1)["year"] == 2014
        db.delete("header", 1)
        assert db.table("header").get_row(1) is None

    def test_closed_transaction_rejected(self):
        db = make_erp_db()
        txn = db.begin()
        txn.commit()
        with pytest.raises(Exception):
            db.insert("header", {"hid": 1}, txn=txn)


class TestQueries:
    def test_query_accepts_text_and_objects(self):
        db = make_erp_db()
        load_erp(db, n_headers=2, merge=True)
        text_result = db.query(HEADER_ITEM_SQL)
        object_result = db.query(db.parse(HEADER_ITEM_SQL))
        assert text_result == object_result

    def test_default_strategy_from_config(self):
        db = make_erp_db()
        load_erp(db, n_headers=2, merge=True)
        db.query(HEADER_ITEM_SQL)  # config default = CACHED_FULL_PRUNING
        assert db.last_report.strategy is ExecutionStrategy.CACHED_FULL_PRUNING

    def test_query_in_explicit_transaction_sees_snapshot(self):
        db = make_erp_db()
        load_erp(db, n_headers=2, merge=True)
        reader = db.begin()
        db.insert("header", {"hid": 700, "year": 2013})
        db.insert(
            "item", {"iid": 700, "hid": 700, "cid": 0, "price": 100.0}
        )
        old = db.query(HEADER_ITEM_SQL, txn=reader)
        new = db.query(HEADER_ITEM_SQL)
        assert sum(old.column_values("profit")) + 100.0 == pytest.approx(
            sum(new.column_values("profit"))
        )

    def test_listing1_shape(self):
        """The paper's Listing 1 runs end to end through the facade."""
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=True)
        sql = (
            "SELECT d.name AS Category, SUM(i.price) AS Profit "
            "FROM header AS h, item AS i, category AS d "
            "WHERE i.hid = h.hid AND i.cid = d.cid "
            "AND d.lang = 'ENG' AND h.year = 2013 "
            "GROUP BY d.name"
        )
        result = db.query(sql)
        assert result.columns == ["Category", "Profit"]
        assert len(result) > 0

    def test_merge_returns_stats(self):
        db = make_erp_db()
        load_erp(db, n_headers=2, merge=False)
        stats = db.merge()
        moved = sum(s.rows_moved for s in stats)
        assert moved == 2 + 6 + 2  # categories + items + headers
