"""Unit tests for cache keys, entries, metrics, admission, and eviction."""

import pytest

from repro import Database, ExecutionStrategy
from repro.core import (
    AlwaysAdmit,
    CacheKey,
    CacheMetrics,
    EntryStatus,
    LruEviction,
    ProfitAdmission,
    ProfitEviction,
    cache_key_for,
)
from repro.core.admission import AdmissionRequest
from repro.errors import CacheError
from repro.query import AggFunc, AggregateSpec, GroupedAggregates
from repro.query.executor import main_only_combos

from ..conftest import HEADER_ITEM_SQL, load_erp, make_erp_db


def build_db():
    db = make_erp_db()
    load_erp(db, n_headers=3, merge=True)
    return db


class TestCacheKey:
    def test_same_query_same_key(self):
        db = build_db()
        bound = db.executor.bind(db.parse(HEADER_ITEM_SQL))
        combo = main_only_combos(bound, db.catalog)[0]
        k1 = cache_key_for(bound, db.catalog, combo)
        k2 = cache_key_for(bound, db.catalog, combo)
        assert k1 == k2
        assert hash(k1) == hash(k2)

    def test_key_includes_table_id(self):
        db = build_db()
        bound = db.executor.bind(db.parse("SELECT COUNT(*) AS n FROM item"))
        combo = main_only_combos(bound, db.catalog)[0]
        key_before = cache_key_for(bound, db.catalog, combo)
        db.drop_table("item")
        db.create_table(
            "item",
            [("iid", "INT"), ("hid", "INT"), ("cid", "INT"), ("price", "FLOAT")],
            primary_key="iid",
        )
        bound2 = db.executor.bind(db.parse("SELECT COUNT(*) AS n FROM item"))
        combo2 = main_only_combos(bound2, db.catalog)[0]
        key_after = cache_key_for(bound2, db.catalog, combo2)
        assert key_before != key_after  # recreated table gets a new id

    def test_key_distinguishes_combos(self):
        assert CacheKey("q", (("t", 1),), (("a", "hot_main"),)) != CacheKey(
            "q", (("t", 1),), (("a", "cold_main"),)
        )

    def test_str_rendering(self):
        key = CacheKey("Q", (("t", 1),), (("a", "main"),))
        assert "a:main" in str(key)


class TestEntryInvariants:
    def test_entry_visibility_must_cover_aliases(self):
        db = build_db()
        db.query(HEADER_ITEM_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
        (entry,) = db.cache.entries_for(db.parse(HEADER_ITEM_SQL))
        from repro.core.cache_entry import AggregateCacheEntry

        with pytest.raises(CacheError):
            AggregateCacheEntry(
                key=entry.key,
                query=entry.query,
                value=entry.value,
                tables=entry.tables,
                main_partitions=entry.main_partitions,
                visibility={},  # missing aliases
                snapshot=entry.snapshot,
            )

    def test_invalidate_flips_status(self):
        db = build_db()
        db.query(HEADER_ITEM_SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
        (entry,) = db.cache.entries_for(db.parse(HEADER_ITEM_SQL))
        assert entry.is_active
        entry.invalidate()
        assert not entry.is_active
        assert entry.metrics.status is EntryStatus.INVALIDATED


class TestMetrics:
    def test_profit_increases_with_reuse(self):
        cheap = CacheMetrics(size_bytes=100, creation_time_main=1.0)
        cheap.record_use(1)
        reused = CacheMetrics(size_bytes=100, creation_time_main=1.0)
        for clock in range(1, 11):
            reused.record_use(clock)
        assert reused.profit() > cheap.profit()

    def test_profit_decreases_with_compensation_cost(self):
        light = CacheMetrics(size_bytes=100, creation_time_main=1.0)
        light.record_use(1)
        heavy = CacheMetrics(
            size_bytes=100, creation_time_main=1.0, compensation_time_delta=5.0
        )
        heavy.record_use(1)
        assert light.profit() > heavy.profit()

    def test_average_delta_compensation(self):
        metrics = CacheMetrics()
        assert metrics.average_delta_compensation() == 0.0
        metrics.record_use(1)
        metrics.record_use(2)
        metrics.compensation_time_delta = 4.0
        assert metrics.average_delta_compensation() == 2.0


class TestAdmissionPolicies:
    def request(self, creation_time, records, groups=1):
        grouped = GroupedAggregates([AggregateSpec(AggFunc.COUNT, None, "n")])
        import numpy as np

        keys = [(g,) for g in range(groups) for _ in range(records // max(1, groups))]
        grouped.accumulate(keys, [np.empty(0, dtype=object)])
        bound = None
        return AdmissionRequest(bound, grouped, creation_time, records)

    def test_always_admit(self):
        assert AlwaysAdmit().admit(self.request(0.0, 0))

    def test_time_gate(self):
        policy = ProfitAdmission(min_creation_time=1.0)
        assert not policy.admit(self.request(0.5, 100))
        assert policy.admit(self.request(2.0, 100))

    def test_compression_gate(self):
        policy = ProfitAdmission(min_compression=50.0)
        assert policy.admit(self.request(0.0, 100, groups=1))
        assert not policy.admit(self.request(0.0, 100, groups=100))


class TestEvictionPolicies:
    def make_entries(self, count):
        db = make_erp_db()
        load_erp(db, n_headers=3, merge=True)
        for p in range(count):
            db.query(
                f"SELECT cid, COUNT(*) AS n FROM item WHERE price > {p} GROUP BY cid",
                strategy=ExecutionStrategy.CACHED_FULL_PRUNING,
            )
        return {e.key: e for e in db.cache.entries()}

    def test_no_eviction_within_budget(self):
        entries = self.make_entries(3)
        assert LruEviction().select_victims(entries, max_entries=5, max_bytes=None) == []
        assert (
            ProfitEviction().select_victims(entries, max_entries=None, max_bytes=None)
            == []
        )

    def test_lru_selects_oldest(self):
        entries = self.make_entries(3)
        victims = LruEviction().select_victims(entries, max_entries=2, max_bytes=None)
        assert len(victims) == 1
        clocks = {k: e.metrics.last_access_clock for k, e in entries.items()}
        assert victims[0] == min(clocks, key=clocks.get)

    def test_bytes_budget(self):
        entries = self.make_entries(3)
        total = sum(e.metrics.size_bytes for e in entries.values())
        victims = ProfitEviction().select_victims(
            entries, max_entries=None, max_bytes=total - 1
        )
        assert len(victims) >= 1

    def test_profit_eviction_prefers_low_profit(self):
        entries = self.make_entries(2)
        entry_list = list(entries.values())
        entry_list[0].metrics.creation_time_main = 100.0  # very profitable
        entry_list[1].metrics.creation_time_main = 0.0
        victims = ProfitEviction().select_victims(entries, max_entries=1, max_bytes=None)
        assert victims == [entry_list[1].key]
