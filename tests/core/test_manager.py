"""Tests for the aggregate cache manager's query path (Fig. 3)."""

import pytest

from repro import (
    AlwaysAdmit,
    CacheConfig,
    Database,
    ExecutionStrategy,
    LruEviction,
    ProfitAdmission,
)
from repro.core import EntryStatus

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
NO_PRUNE = ExecutionStrategy.CACHED_NO_PRUNING
EMPTY = ExecutionStrategy.CACHED_EMPTY_DELTA
UNCACHED = ExecutionStrategy.UNCACHED


class TestCacheLifecycle:
    def test_miss_creates_entry_then_hits(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.entries_created == 1
        assert erp_db.last_report.cache_hits == 0
        erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.entries_created == 0
        assert erp_db.last_report.cache_hits == 1
        assert erp_db.cache.entry_count() == 1

    def test_entry_value_covers_main_only(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        (entry,) = erp_db.cache.entries_for(erp_db.parse(HEADER_ITEM_SQL))
        # 6 objects x 3 items in the mains; the 2 delta objects are excluded.
        assert entry.metrics.aggregated_records_main == 18

    def test_structurally_equal_queries_share_entries(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        reordered = (
            "SELECT i.cid AS cid, SUM(i.price) AS profit, COUNT(*) AS n "
            "FROM item i, header h WHERE i.hid = h.hid GROUP BY i.cid"
        )
        erp_db.query(reordered, strategy=FULL)
        assert erp_db.last_report.cache_hits == 1
        assert erp_db.cache.entry_count() == 1

    def test_different_filters_get_distinct_entries(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        filtered = HEADER_ITEM_SQL.replace(
            "WHERE h.hid = i.hid", "WHERE h.hid = i.hid AND h.year = 2013"
        )
        erp_db.query(filtered, strategy=FULL)
        assert erp_db.cache.entry_count() == 2

    def test_uncached_strategy_creates_no_entries(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=UNCACHED)
        assert erp_db.cache.entry_count() == 0
        assert erp_db.last_report.strategy is UNCACHED

    def test_min_max_falls_back_uncached(self, erp_db):
        sql = "SELECT cid, MAX(price) AS m FROM item GROUP BY cid"
        result = erp_db.query(sql, strategy=FULL)
        assert erp_db.last_report.fallback_uncached
        assert erp_db.cache.entry_count() == 0
        assert result == erp_db.query(sql, strategy=UNCACHED)

    def test_clear(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.cache.clear()
        assert erp_db.cache.entry_count() == 0


class TestStrategyEquivalence:
    """All four strategies must return identical results (Section 5.1:
    'the join pruning using these MDs will be correct' in both cases)."""

    @pytest.mark.parametrize("sql", [PROFIT_SQL, HEADER_ITEM_SQL])
    def test_fresh_deltas(self, erp_db, sql):
        reference = erp_db.query(sql, strategy=UNCACHED)
        for strategy in (NO_PRUNE, EMPTY, FULL):
            assert erp_db.query(sql, strategy=strategy) == reference, strategy

    def test_after_merge(self, erp_db):
        erp_db.merge()
        reference = erp_db.query(PROFIT_SQL, strategy=UNCACHED)
        for strategy in (NO_PRUNE, EMPTY, FULL):
            assert erp_db.query(PROFIT_SQL, strategy=strategy) == reference

    def test_with_temporal_violations(self):
        """Late items break the soft constraint but never correctness."""
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=True)
        db.insert("item", {"iid": 7777, "hid": 0, "cid": 0, "price": 77.0})
        load_erp(db, n_headers=2, start_hid=40, merge=False)
        reference = db.query(HEADER_ITEM_SQL, strategy=UNCACHED)
        for strategy in (NO_PRUNE, EMPTY, FULL):
            assert db.query(HEADER_ITEM_SQL, strategy=strategy) == reference
        # The Hmain x Idelta subjoin carrying the late item must have been
        # evaluated under full pruning, not pruned away.
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.last_report.prune.evaluated >= 2

    def test_empty_database(self):
        db = make_erp_db()
        sql = "SELECT COUNT(*) AS n FROM item"
        for strategy in (UNCACHED, NO_PRUNE, EMPTY, FULL):
            assert db.query(sql, strategy=strategy).rows == []


class TestPruningCounters:
    def test_full_pruning_prunes_cross_subjoins(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        report = erp_db.last_report
        # category's delta is empty -> star-join reduction pins it to main
        # and enumerates 2^2 - 1 = 3 subjoins (the 4 category-delta combos
        # are never generated).
        assert report.prune.combos_total == 3
        assert report.prune.excluded_tables == 1
        assert report.prune.combos_excluded == 4
        # header/item main x delta crosses -> dynamic pruning; only
        # (Hd, Id, Dm) survives.
        assert report.prune.evaluated == 1
        assert report.prune.pruned_total == 2

    def test_full_pruning_exhaustive_with_override(self, erp_db):
        # star_join_tables=() pins exhaustive enumeration: the legacy
        # 2^3 - 1 shape with the category-delta combos empty-pruned.
        erp_db.query(PROFIT_SQL, strategy=FULL, star_join_tables=())
        report = erp_db.last_report
        assert report.prune.combos_total == 7
        assert report.prune.excluded_tables == 0
        assert report.prune.combos_excluded == 0
        assert report.prune.evaluated == 1
        assert report.prune.pruned_total == 6

    def test_no_pruning_evaluates_everything(self, erp_db):
        # CACHED_NO_PRUNING stays the paper's exhaustive baseline: no
        # reduction, no pruning.
        erp_db.query(PROFIT_SQL, strategy=NO_PRUNE)
        report = erp_db.last_report
        assert report.prune.combos_total == 7
        assert report.prune.evaluated == 7
        assert report.prune.pruned_total == 0
        assert report.prune.excluded_tables == 0

    def test_empty_delta_pruning_only(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=EMPTY)
        report = erp_db.last_report
        # The 4 subjoins touching the (empty) category delta are excluded
        # from enumeration outright; without dynamic pruning the 3
        # remaining subjoins are all evaluated.
        assert report.prune.excluded_tables == 1
        assert report.prune.combos_excluded == 4
        assert report.prune.pruned_empty == 0
        assert report.prune.pruned_dynamic == 0
        assert report.prune.evaluated == 3

    def test_empty_delta_pruning_exhaustive_with_override(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=EMPTY, star_join_tables=())
        report = erp_db.last_report
        # The legacy shape: category-delta combos enumerated, then pruned.
        assert report.prune.pruned_empty == 4
        assert report.prune.pruned_dynamic == 0
        assert report.prune.evaluated == 3

    def test_two_table_counts(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        report = erp_db.last_report
        assert report.prune.combos_total == 3
        assert report.prune.pruned_dynamic == 2
        assert report.prune.evaluated == 1


class TestAdmission:
    def test_profit_admission_rejects_cheap_queries(self):
        db = make_erp_db(admission=ProfitAdmission(min_creation_time=999.0))
        load_erp(db, n_headers=4, merge=True)
        result = db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.last_report.admission_rejected == 1
        assert db.cache.entry_count() == 0
        # Result must still be correct without an entry.
        assert result == db.query(HEADER_ITEM_SQL, strategy=UNCACHED)

    def test_compression_gate(self):
        admitting = ProfitAdmission(min_compression=1.0)
        rejecting = ProfitAdmission(min_compression=10_000.0)
        db = make_erp_db(admission=admitting)
        load_erp(db, n_headers=4, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.cache.entry_count() == 1
        db2 = make_erp_db(admission=rejecting)
        load_erp(db2, n_headers=4, merge=True)
        db2.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db2.cache.entry_count() == 0


class TestEviction:
    def test_max_entries_enforced_lru(self):
        db = make_erp_db(
            cache_config=CacheConfig(max_entries=2), eviction=LruEviction()
        )
        load_erp(db, n_headers=4, merge=True)
        queries = [
            f"SELECT cid, COUNT(*) AS n FROM item WHERE price > {p} GROUP BY cid"
            for p in (0, 1, 2)
        ]
        for sql in queries:
            db.query(sql, strategy=FULL)
        assert db.cache.entry_count() == 2
        # The first (least recently used) entry was evicted.
        db.query(queries[0], strategy=FULL)
        assert db.last_report.cache_hits == 0

    def test_max_bytes_enforced(self):
        db = make_erp_db(cache_config=CacheConfig(max_bytes=1))
        load_erp(db, n_headers=4, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        # Even the fresh entry cannot fit a 1-byte cache.
        assert db.cache.entry_count() == 0
        # Correctness unaffected.
        assert db.query(HEADER_ITEM_SQL, strategy=FULL) == db.query(
            HEADER_ITEM_SQL, strategy=UNCACHED
        )


class TestMetrics:
    def test_usage_metrics_updated(self, erp_db):
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        erp_db.query(HEADER_ITEM_SQL, strategy=FULL)
        (entry,) = erp_db.cache.entries_for(erp_db.parse(HEADER_ITEM_SQL))
        assert entry.metrics.reference_count == 2
        assert entry.metrics.status is EntryStatus.ACTIVE
        assert entry.metrics.size_bytes > 0
        assert entry.metrics.creation_time_main > 0

    def test_report_timings_populated(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=NO_PRUNE)
        report = erp_db.last_report
        assert report.time_total > 0
        assert report.time_delta_compensation > 0
