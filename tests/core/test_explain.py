"""Tests for the EXPLAIN facility."""

import pytest

from repro import Database, ExecutionStrategy
from repro.core import explain_query

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING


def make_db():
    db = make_erp_db()
    load_erp(db, n_headers=4, merge=True)
    load_erp(db, n_headers=1, start_hid=99, merge=False)
    return db


class TestExplain:
    def test_does_not_execute_or_create_entries(self):
        db = make_db()
        text = db.explain(PROFIT_SQL)
        assert db.cache.entry_count() == 0
        assert "MISS" in text

    def test_hit_reported_after_query(self):
        db = make_db()
        db.query(PROFIT_SQL, strategy=FULL)
        assert "HIT" in db.explain(PROFIT_SQL)

    def test_subjoin_fates_listed(self):
        # star_join_tables=() pins exhaustive enumeration so every prune
        # mechanism shows up; the empty-delta category combos otherwise
        # never get enumerated (see test_star_join_reduction_line below).
        db = make_db()
        text = db.explain(PROFIT_SQL, strategy=FULL, star_join_tables=())
        assert "PRUNED [empty]" in text
        assert "PRUNED [dynamic]" in text
        assert "EVALUATE" in text
        # 3 tables -> 7 compensation subjoins listed
        assert text.count("(d:") == 7 + 1  # + the cached combination line

    def test_star_join_reduction_line(self):
        db = make_db()
        text = db.explain(PROFIT_SQL, strategy=FULL)
        # category's delta is empty -> excluded; only 2^2-1 subjoins remain
        # with d pinned to its main in every one.
        assert "star-join reduction: excluded=[d:empty_delta]" in text
        assert "(4 combinations not enumerated)" in text
        assert text.count("(d:main") == 3 + 1  # + the cached combination line

    def test_no_pruning_strategy_evaluates_all(self):
        db = make_db()
        text = db.explain(PROFIT_SQL, strategy=ExecutionStrategy.CACHED_NO_PRUNING)
        assert "PRUNED" not in text
        assert text.count("EVALUATE") == 7

    def test_uncached_strategy(self):
        db = make_db()
        text = db.explain(PROFIT_SQL, strategy=ExecutionStrategy.UNCACHED)
        assert "bypassed" in text
        assert text.count("EVALUATE") == 8  # all 2^3 subjoins

    def test_non_cacheable_query(self):
        db = make_db()
        text = db.explain("SELECT cid, MAX(price) AS m FROM item GROUP BY cid")
        assert "does not qualify" in text

    def test_pushdown_filters_shown(self):
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=False)
        db.merge("item")  # overlap scenario
        load_erp(db, n_headers=1, start_hid=50, merge=False)
        text = db.explain(HEADER_ITEM_SQL, strategy=FULL)
        assert "pushdown" in text
        assert "tid_header" in text

    def test_plan_object_api(self):
        db = make_db()
        plan = explain_query(db.cache, db.parse(PROFIT_SQL), FULL)
        assert plan.cacheable
        # category excluded (empty delta) -> 2^2-1 enumerated subjoins.
        assert len(plan.subjoins) == 3
        assert plan.excluded == ["d:empty_delta"]
        assert plan.combos_excluded == 4
        pruned = [s for s in plan.subjoins if s.action == "pruned"]
        assert all(s.reason in ("empty", "logical", "dynamic") for s in pruned)

    def test_plan_object_api_exhaustive_override(self):
        db = make_db()
        plan = explain_query(
            db.cache, db.parse(PROFIT_SQL), FULL, star_join_tables=()
        )
        assert len(plan.subjoins) == 7
        assert plan.excluded == []
        assert plan.combos_excluded == 0

    def test_explain_matches_execution_counters(self):
        db = make_db()
        plan = explain_query(db.cache, db.parse(PROFIT_SQL), FULL)
        planned_evaluated = sum(1 for s in plan.subjoins if s.action == "evaluate")
        db.query(PROFIT_SQL, strategy=FULL)
        db.query(PROFIT_SQL, strategy=FULL)
        assert db.last_report.prune.evaluated == planned_evaluated
