"""Unit tests for matching dependencies and insert-time enforcement."""

import pytest

from repro import Database, IntegrityError, SchemaError
from repro.core import MatchingDependency, MDEnforcer, validate_md
from repro.storage import Catalog, ColumnDef, Schema, SqlType, tid_column

from ..conftest import make_erp_db


class TestMatchingDependencyDefinition:
    def test_canonical(self):
        md = MatchingDependency("header", "hid", "item", "hid", "tid_header")
        assert "header[hid]" in md.canonical()
        assert "tid_header" in md.canonical()

    def test_self_reference_rejected(self):
        with pytest.raises(SchemaError):
            MatchingDependency("t", "a", "t", "b", "tid_t")

    def test_covers_join_both_directions(self):
        md = MatchingDependency("header", "hid", "item", "hid_fk", "tid_header")
        assert md.covers_join("header", "hid", "item", "hid_fk")
        assert md.covers_join("item", "hid_fk", "header", "hid")
        assert not md.covers_join("header", "hid", "item", "other")
        assert not md.covers_join("header", "other", "item", "hid_fk")
        assert not md.covers_join("item", "hid_fk", "dim", "hid")


class TestValidation:
    def make_catalog(self, with_tid=True):
        catalog = Catalog()
        header_cols = [ColumnDef("hid", SqlType.INT, nullable=False)]
        item_cols = [
            ColumnDef("iid", SqlType.INT, nullable=False),
            ColumnDef("hid", SqlType.INT),
        ]
        if with_tid:
            header_cols.append(tid_column("tid_header"))
            item_cols.append(tid_column("tid_header"))
        catalog.create_table("header", Schema(header_cols, primary_key="hid"))
        catalog.create_table("item", Schema(item_cols, primary_key="iid"))
        return catalog

    def test_valid(self):
        catalog = self.make_catalog()
        validate_md(
            MatchingDependency("header", "hid", "item", "hid", "tid_header"), catalog
        )

    def test_parent_key_must_be_pk(self):
        catalog = self.make_catalog()
        with pytest.raises(SchemaError):
            validate_md(
                MatchingDependency("item", "hid", "header", "hid", "tid_header"),
                catalog,
            )

    def test_missing_tid_column(self):
        catalog = self.make_catalog(with_tid=False)
        with pytest.raises(SchemaError):
            validate_md(
                MatchingDependency("header", "hid", "item", "hid", "tid_header"),
                catalog,
            )

    def test_missing_fk_column(self):
        catalog = self.make_catalog()
        with pytest.raises(SchemaError):
            validate_md(
                MatchingDependency("header", "hid", "item", "nope", "tid_header"),
                catalog,
            )


class TestEnforcement:
    def test_parent_rows_stamped_with_txn_tid(self):
        db = make_erp_db()
        txn = db.begin()
        db.insert("header", {"hid": 1, "year": 2013}, txn=txn)
        txn.commit()
        assert db.table("header").get_row(1)["tid_header"] == txn.tid

    def test_child_copies_parent_tid(self):
        db = make_erp_db()
        txn = db.begin()
        db.insert("header", {"hid": 1, "year": 2013}, txn=txn)
        txn.commit()
        db.insert("category", {"cid": 7, "name": "x", "lang": "ENG"})
        db.insert("item", {"iid": 10, "hid": 1, "cid": 7, "price": 1.0})
        row = db.table("item").get_row(10)
        assert row["tid_header"] == txn.tid
        assert row["tid_category"] == db.table("category").get_row(7)["tid_category"]

    def test_same_transaction_object_shares_tid(self):
        db = make_erp_db()
        db.insert("category", {"cid": 0, "name": "c", "lang": "ENG"})
        db.insert_business_object(
            "header",
            {"hid": 5, "year": 2013},
            "item",
            [{"iid": 50, "hid": 5, "cid": 0, "price": 2.0}],
        )
        header_tid = db.table("header").get_row(5)["tid_header"]
        item_tid = db.table("item").get_row(50)["tid_header"]
        assert header_tid == item_tid

    def test_missing_parent_raises_with_ri(self):
        db = make_erp_db()
        with pytest.raises(IntegrityError):
            db.insert("item", {"iid": 1, "hid": 999, "cid": None, "price": 1.0})

    def test_missing_parent_null_tid_without_ri(self):
        from repro import CacheConfig

        db = make_erp_db(
            cache_config=CacheConfig(enforce_referential_integrity=False)
        )
        db.insert("item", {"iid": 1, "hid": 999, "cid": None, "price": 1.0})
        assert db.table("item").get_row(1)["tid_header"] is None
        assert db.enforcer.stats.lookups_failed == 1

    def test_null_fk_leaves_tid_null_without_lookup(self):
        db = make_erp_db()
        before = db.enforcer.stats.child_lookups
        db.insert("item", {"iid": 1, "hid": None, "cid": None, "price": 1.0})
        assert db.table("item").get_row(1)["tid_header"] is None
        assert db.enforcer.stats.child_lookups == before

    def test_lookup_counters(self):
        db = make_erp_db()
        db.insert("header", {"hid": 1, "year": 2013})
        db.insert("category", {"cid": 0, "name": "c", "lang": "ENG"})
        db.insert("item", {"iid": 1, "hid": 1, "cid": 0, "price": 1.0})
        # item insert performs one lookup per MD with non-null fk
        assert db.enforcer.stats.child_lookups == 2
        assert db.enforcer.stats.parent_stamps >= 2

    def test_lookup_works_after_parent_merge(self):
        db = make_erp_db()
        txn = db.begin()
        db.insert("header", {"hid": 1, "year": 2013}, txn=txn)
        txn.commit()
        db.merge("header")
        db.insert("item", {"iid": 1, "hid": 1, "cid": None, "price": 1.0})
        assert db.table("item").get_row(1)["tid_header"] == txn.tid

    def test_dependencies_listing(self):
        db = make_erp_db()
        deps = db.enforcer.dependencies()
        assert len(deps) == 2
        assert len(db.enforcer.dependencies_of_child("item")) == 2
        assert db.enforcer.dependencies_of_child("header") == []


class TestSchemaInstallation:
    def test_tid_columns_installed_on_both_tables(self):
        db = make_erp_db()
        assert db.table("header").schema.has_column("tid_header")
        assert db.table("item").schema.has_column("tid_header")
        assert db.table("item").schema.has_column("tid_category")
        assert db.table("category").schema.has_column("tid_category")

    def test_md_on_populated_table_rejected(self):
        db = Database()
        db.create_table("p", [("id", "INT")], primary_key="id")
        db.create_table("c", [("id", "INT"), ("pid", "INT")], primary_key="id")
        db.insert("p", {"id": 1})
        with pytest.raises(SchemaError):
            db.add_matching_dependency("p", "id", "c", "pid")

    def test_custom_tid_column_name(self):
        db = Database()
        db.create_table("p", [("id", "INT")], primary_key="id")
        db.create_table("c", [("id", "INT"), ("pid", "INT")], primary_key="id")
        md = db.add_matching_dependency("p", "id", "c", "pid", tid_column_name="t_p")
        assert md.tid_column == "t_p"
        assert db.table("c").schema.has_column("t_p")

    def test_tid_columns_are_not_business_columns(self):
        db = make_erp_db()
        assert "tid_header" not in db.table("item").schema.business_column_names()
        assert "tid_header" in db.table("item").schema.tid_column_names()
