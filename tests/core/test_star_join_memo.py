"""Star-join reduction vs the delta memo, degenerate shapes, and parity.

Satellite guarantees pinned here:

* the excluded-table decision is part of the memo's identity — toggling
  the override, the config flag, or the emptiness of a dimension delta
  must route ``classify_memo`` to a rebuild, never replay a memo folded
  over a different combo set;
* degenerate cases (k = 0, single-table statements) still scan the delta
  suffix — an all-excluded join must not silently return an empty combo
  list when a delta later grows rows;
* reduction on/off is bit-identical (values, types, order) across
  serial x parallel x memo x plan-cache configurations, including
  concurrent-writer histories that grow a previously-empty dimension
  delta mid-run.
"""

import random

import pytest

from repro import CacheConfig, Database, ExecutionStrategy
from repro.core.delta_compensation import sound_exclusions
from repro.plan.star_join import ExcludedTable
from repro.query.parallel import ParallelConfig

from ..conftest import HEADER_ITEM_SQL, PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def _uncached_rows(db, sql, **kwargs):
    return db.query(sql, strategy=UNCACHED, **kwargs).rows


class TestMemoIdentity:
    def test_override_toggle_rebuilds_memo(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.delta_memo_mode == "incremental"
        # Same strategy, different combo set -> fingerprint mismatch.
        result = erp_db.query(PROFIT_SQL, strategy=FULL, star_join_tables=())
        assert erp_db.last_report.delta_memo_mode == "full"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)
        # And the new decision settles in turn.
        erp_db.query(PROFIT_SQL, strategy=FULL, star_join_tables=())
        assert erp_db.last_report.delta_memo_mode == "incremental"

    def test_dimension_delta_growth_rebuilds_memo(self, erp_db):
        """THE satellite case: a memo folded with category pinned to main
        has no watermark covering category's delta.  When that delta
        grows its first row the exclusion lifts, and the memo must be
        rebuilt, not advanced."""
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.prune.excluded_tables == 1
        erp_db.insert("category", {"cid": 5, "name": "cat5", "lang": "ENG"})
        erp_db.insert(
            "item", {"iid": 9500, "hid": 100, "cid": 5, "price": 3.25}
        )
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        report = erp_db.last_report
        assert report.prune.excluded_tables == 0
        assert report.delta_memo_mode == "full"
        rows = _uncached_rows(erp_db, PROFIT_SQL)
        assert result.rows == rows
        assert any(row[0] == "cat5" for row in rows)  # the new group landed

    def test_config_flag_toggle_rebuilds_memo(self, erp_db):
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.query(PROFIT_SQL, strategy=FULL)
        erp_db.cache.config.star_join_reduction = False
        result = erp_db.query(PROFIT_SQL, strategy=FULL)
        report = erp_db.last_report
        assert report.prune.excluded_tables == 0
        assert report.delta_memo_mode == "full"
        assert result.rows == _uncached_rows(erp_db, PROFIT_SQL)
        erp_db.cache.config.star_join_reduction = True
        erp_db.query(PROFIT_SQL, strategy=FULL)
        assert erp_db.last_report.delta_memo_mode == "full"  # flipped back


class TestDegenerateShapes:
    def test_single_table_with_delta_rows(self, erp_db):
        sql = "SELECT i.cid AS cid, COUNT(*) AS n FROM item i GROUP BY i.cid"
        result = erp_db.query(sql, strategy=FULL)
        report = erp_db.last_report
        # item's delta is non-empty -> no exclusion, the one compensation
        # variant (the delta itself) is enumerated and scanned.
        assert report.prune.excluded_tables == 0
        assert report.prune.combos_total == 1
        assert result.rows == _uncached_rows(erp_db, sql)

    def test_single_table_fully_merged(self):
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=True)
        sql = "SELECT i.cid AS cid, COUNT(*) AS n FROM item i GROUP BY i.cid"
        result = db.query(sql, strategy=FULL)
        report = db.last_report
        # k = 0: zero variants is correct here — but only because the
        # delta is provably empty, not because the list collapsed.
        assert report.prune.excluded_tables == 1
        assert report.prune.combos_total == 0
        assert result.rows == _uncached_rows(db, sql)

    def test_all_excluded_join_rescans_after_delta_grows(self):
        """k = 0 regression: both tables excluded, then an item arrives.
        The next query must re-include item and scan its delta suffix —
        never reuse the zero-variant plan or memo."""
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=True)
        db.query(HEADER_ITEM_SQL, strategy=FULL)
        assert db.last_report.prune.combos_total == 0
        assert db.last_report.prune.excluded_tables == 2
        before = _uncached_rows(db, HEADER_ITEM_SQL)
        db.insert("item", {"iid": 9600, "hid": 0, "cid": 0, "price": 10.0})
        result = db.query(HEADER_ITEM_SQL, strategy=FULL)
        report = db.last_report
        assert report.prune.excluded_tables == 1  # header stays excluded
        assert report.prune.combos_total == 1
        rows = _uncached_rows(db, HEADER_ITEM_SQL)
        assert result.rows == rows
        assert rows != before  # the fresh delta row changed the answer

    def test_stale_exclusion_degrades_to_enumeration(self, erp_db):
        """The enumeration-time gate: an exclusion decided when the delta
        was empty is dropped by sound_exclusions once rows exist."""
        query = erp_db.cache.plan_for(PROFIT_SQL, FULL).query
        stale = (ExcludedTable("d", "category", "empty_delta"),)
        assert sound_exclusions(query, erp_db.catalog, stale) == stale
        erp_db.insert("category", {"cid": 7, "name": "cat7", "lang": "ENG"})
        assert sound_exclusions(query, erp_db.catalog, stale) == ()


class TestReductionParity:
    """Reduction on vs off must agree bit for bit — values, types, and
    row order — whatever the execution configuration."""

    CONFIGS = {
        "serial": {},
        "parallel": {
            "parallel": ParallelConfig(n_workers=4, min_combos=1, min_rows=1)
        },
        "no_memo": {"cache_config": CacheConfig(delta_memo=False)},
        "no_plan_cache": {"cache_config": CacheConfig(plan_cache_size=0)},
    }

    @staticmethod
    def _typed(rows):
        return [tuple((type(v).__name__, v) for v in row) for row in rows]

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("seed", [7, 19])
    def test_randomized_histories(self, config_name, seed):
        db = make_erp_db(**self.CONFIGS[config_name])
        load_erp(db, n_headers=4, merge=True)
        rng = random.Random(seed)
        try:
            for round_no in range(3):
                # A writer interleaves with the reader: fresh headers and
                # items, and mid-run the previously-empty category delta
                # grows (lifting the exclusion decided in round 0).
                start = 300 + 100 * round_no
                load_erp(db, n_headers=2, start_hid=start, merge=False)
                if round_no == 1:
                    db.insert(
                        "category",
                        {"cid": 3, "name": "cat3", "lang": "ENG"},
                    )
                if rng.random() < 0.5:
                    db.merge()
                for sql in (PROFIT_SQL, HEADER_ITEM_SQL):
                    # Warm both plans so later rounds exercise the
                    # plan-cache-hit path (except under plan_cache_size=0).
                    reduced = db.query(sql, strategy=FULL)
                    exhaustive = db.query(
                        sql, strategy=FULL, star_join_tables=()
                    )
                    reference = db.query(sql, strategy=UNCACHED)
                    assert self._typed(reduced.rows) == self._typed(
                        reference.rows
                    )
                    assert self._typed(exhaustive.rows) == self._typed(
                        reference.rows
                    )
        finally:
            db.close()

    def test_pinned_snapshot_with_concurrent_writer(self, erp_db):
        """A reader pinned before the dimension delta grew must keep
        seeing the reduced-world answer; a current reader sees the new
        row — under both reduction settings."""
        erp_db.query(PROFIT_SQL, strategy=FULL)
        pinned = erp_db.transactions.global_snapshot()
        erp_db.insert("category", {"cid": 4, "name": "cat4", "lang": "ENG"})
        erp_db.insert(
            "item", {"iid": 9700, "hid": 101, "cid": 4, "price": 6.5}
        )
        old_reduced = erp_db.query(PROFIT_SQL, strategy=FULL, as_of=pinned)
        old_exhaustive = erp_db.query(
            PROFIT_SQL, strategy=FULL, as_of=pinned, star_join_tables=()
        )
        old_reference = _uncached_rows(erp_db, PROFIT_SQL, as_of=pinned)
        assert old_reduced.rows == old_reference
        assert old_exhaustive.rows == old_reference
        new_rows = _uncached_rows(erp_db, PROFIT_SQL)
        assert erp_db.query(PROFIT_SQL, strategy=FULL).rows == new_rows
        assert any(row[0] == "cat4" for row in new_rows)
        assert not any(row[0] == "cat4" for row in old_reference)
