"""Cardinality-based cache refresh: routing, synopsis discounts, application.

``plan_cache_refresh`` routes every live entry to skip / advance / rebuild
from the estimated *affected rows* — physical delta growth past the memo's
watermarks, discounted by synopsis-based selectivity of the entry's local
filters.  ``Database.refresh_cache`` applies the routed actions off the
query path, so the next query replays an already-advanced memo (and the
refresh work itself populates the subjoin recycler).
"""

import pytest

from repro import CacheConfig, Database, ExecutionStrategy
from repro.core import MergeAdvisor
from repro.core.maintenance import (
    RefreshDecision,
    _suffix_selectivity,
    _synopsis_refutes,
    plan_cache_refresh,
)
from repro.query.sql import parse_sql

from ..conftest import PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def _typed(rows):
    return [tuple((type(v).__name__, v) for v in row) for row in rows]


def _routed(db):
    snapshot = db.transactions.global_snapshot()
    return {
        d.key: d
        for d in plan_cache_refresh(
            db.cache, snapshot, db.cache.config.refresh_rebuild_ratio
        )
    }


class TestRouting:
    def test_clean_entry_skips(self):
        db = make_erp_db()
        load_erp(db, n_headers=6, merge=True)
        db.query(PROFIT_SQL, strategy=FULL)
        decisions = list(_routed(db).values())
        assert decisions
        assert all(d.action == "skip" for d in decisions)
        assert any(d.reason == "clean" for d in decisions)

    def test_modest_growth_routes_to_advance(self):
        db = make_erp_db()
        load_erp(db, n_headers=12, merge=True)
        load_erp(db, n_headers=6, start_hid=100, merge=False)
        db.query(PROFIT_SQL, strategy=FULL)  # builds the memo
        load_erp(db, n_headers=1, start_hid=300, merge=False)  # small growth
        decisions = [
            d for d in _routed(db).values() if d.action != "skip"
        ]
        assert decisions
        advance = [d for d in decisions if d.action == "advance"]
        assert advance
        assert all(d.reason == "delta_growth" for d in advance)
        assert all(d.affected_rows > 0 for d in advance)

    def test_dominant_growth_routes_to_rebuild(self):
        db = make_erp_db(
            cache_config=CacheConfig(refresh_rebuild_ratio=0.01)
        )
        load_erp(db, n_headers=6, merge=True)
        load_erp(db, n_headers=2, start_hid=100, merge=False)
        db.query(PROFIT_SQL, strategy=FULL)
        load_erp(db, n_headers=6, start_hid=300, merge=False)  # big growth
        decisions = [d for d in _routed(db).values() if d.action != "skip"]
        assert decisions
        assert all(d.action == "rebuild" for d in decisions)

    def test_memo_disabled_skips(self):
        db = make_erp_db(cache_config=CacheConfig(delta_memo=False))
        load_erp(db, n_headers=6, merge=True)
        db.query(PROFIT_SQL, strategy=FULL)
        decisions = list(_routed(db).values())
        assert decisions
        assert all(
            (d.action, d.reason) == ("skip", "memo_disabled")
            for d in decisions
        )


class TestSynopsisDiscount:
    def test_refutes_out_of_range_equality(self):
        db = make_erp_db()
        load_erp(db, n_headers=6, merge=False)
        delta = db.table("header").partition("delta")
        in_range = parse_sql(
            "SELECT COUNT(*) AS n FROM header h WHERE h.year = 2013 GROUP BY h.year"
        ).filters[0]
        out_of_range = parse_sql(
            "SELECT COUNT(*) AS n FROM header h WHERE h.year = 1999 GROUP BY h.year"
        ).filters[0]
        assert not _synopsis_refutes(delta, in_range)
        assert _synopsis_refutes(delta, out_of_range)
        assert _suffix_selectivity(delta, [out_of_range]) == 0.0
        assert 0.0 < _suffix_selectivity(delta, [in_range]) < 1.0

    def test_refuted_filter_zeroes_affected_rows(self):
        filtered_sql = (
            "SELECT d.name AS category, COUNT(*) AS n "
            "FROM header h, item i, category d "
            "WHERE h.hid = i.hid AND i.cid = d.cid AND h.year = 1999 "
            "GROUP BY d.name"
        )
        db = make_erp_db()
        load_erp(db, n_headers=6, merge=True)
        db.query(filtered_sql, strategy=FULL)
        # Growth only in header rows, all of them 2013/2014: the synopsis
        # proves year=1999 matches none of them.
        for hid in range(300, 310):
            db.insert("header", {"hid": hid, "year": 2013 + hid % 2})
        decisions = list(_routed(db).values())
        assert decisions
        assert all(d.affected_rows == 0 for d in decisions)


class TestApplication:
    def _grown_db(self):
        db = make_erp_db()
        load_erp(db, n_headers=12, merge=True)
        load_erp(db, n_headers=4, start_hid=100, merge=False)
        db.query(PROFIT_SQL, strategy=FULL)
        load_erp(db, n_headers=2, start_hid=300, merge=False)
        return db

    def test_refresh_cache_advances_memos_off_the_query_path(self):
        db = self._grown_db()
        truth = db.query(PROFIT_SQL, strategy=UNCACHED)
        decisions = db.refresh_cache()
        applied = [d for d in decisions if d.action != "skip"]
        assert applied
        counters = db.cache.counters_snapshot()
        assert (
            counters["refresh_advances"] + counters["refresh_rebuilds"]
            >= len(applied)
        )
        # The next query replays the advanced memo: incremental mode with
        # nothing left to scan past the watermarks, same rows as uncached.
        result = db.query(PROFIT_SQL, strategy=FULL)
        assert _typed(result.rows) == _typed(truth.rows)
        report = db.last_report
        assert report.delta_memo_mode == "incremental"

    def test_refresh_is_idempotent(self):
        db = self._grown_db()
        db.refresh_cache()
        again = db.refresh_cache()
        assert all(d.action == "skip" for d in again)

    def test_advisor_recommendation_matches_planner(self):
        db = self._grown_db()
        recommendation = MergeAdvisor().recommend_refresh(db)
        assert recommendation.should_refresh
        assert "refresh recommended" in recommendation.describe()
        db.refresh_cache(max_entries=None)
        after = MergeAdvisor().recommend_refresh(db)
        assert not after.should_refresh
        assert after.describe() == "no refresh recommended"

    def test_max_entries_bounds_the_tick(self):
        db = make_erp_db()
        load_erp(db, n_headers=12, merge=True)
        load_erp(db, n_headers=4, start_hid=100, merge=False)
        header_item = (
            "SELECT i.cid AS cid, SUM(i.price) AS profit "
            "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.cid"
        )
        db.query(PROFIT_SQL, strategy=FULL)
        db.query(header_item, strategy=FULL)
        load_erp(db, n_headers=2, start_hid=300, merge=False)
        planned = [
            d for d in db.refresh_cache(max_entries=1) if d.action != "skip"
        ]
        assert len(planned) >= 2  # more work was routed than the tick allows
        counters = db.cache.counters_snapshot()
        assert counters["refresh_advances"] + counters["refresh_rebuilds"] == 1

    def test_refresh_populates_the_recycler(self):
        db = self._grown_db()
        before = db.cache.counters_snapshot()["recycler_stored"]
        db.refresh_cache()
        assert db.cache.counters_snapshot()["recycler_stored"] > before

    def test_rebuild_route_applies_correctly(self):
        db = make_erp_db(
            cache_config=CacheConfig(refresh_rebuild_ratio=0.01)
        )
        load_erp(db, n_headers=6, merge=True)
        load_erp(db, n_headers=2, start_hid=100, merge=False)
        db.query(PROFIT_SQL, strategy=FULL)
        load_erp(db, n_headers=6, start_hid=300, merge=False)
        truth = db.query(PROFIT_SQL, strategy=UNCACHED)
        decisions = db.refresh_cache()
        assert any(d.action == "rebuild" for d in decisions)
        assert db.cache.counters_snapshot()["refresh_rebuilds"] > 0
        result = db.query(PROFIT_SQL, strategy=FULL)
        assert _typed(result.rows) == _typed(truth.rows)
        assert db.last_report.delta_memo_mode == "incremental"
