"""Soundness properties of dynamic tid-range pruning and pushdown.

The pruner derives tid ranges from the *dictionaries* of the current
partitions — which cover every physical row, including invalidated and
not-yet-visible ones.  That makes prune verdicts snapshot-independent, and
these tests hold it to that claim over randomized update/delete/merge
histories:

* a pruned subjoin must aggregate to nothing at *every* snapshot, old or
  new, when evaluated anyway;
* pushdown filters must never drop a matching row — queries with and
  without pushdown agree exactly;
* with referential-integrity enforcement off, NULL-tid rows (dangling
  children whose parent arrives later) can still join; range reasoning
  must stand aside for them.
"""

import random

import pytest

from repro import CacheConfig, Database, ExecutionStrategy
from repro.query.executor import ComboSpec

from ..conftest import PROFIT_SQL, load_erp, make_erp_db

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED


def _pruned_subjoins_are_empty(db, sql):
    """Evaluate every pruned subjoin anyway, at a spread of snapshots."""
    plan = db.cache.plan_for(sql, FULL)
    current = db.transactions.global_snapshot()
    snapshots = sorted({1, current // 2, max(1, current - 1), current})
    checked = 0
    for sub in plan.subjoins:
        if sub.action != "pruned":
            continue
        for snapshot in snapshots:
            value = db.executor.execute(
                plan.query, snapshot, combos=[ComboSpec(dict(sub.partitions))]
            )
            assert value.group_count() == 0, (
                f"subjoin pruned as {sub.reason!r} produced rows "
                f"at snapshot {snapshot}"
            )
            checked += 1
    return checked


def _random_history(db, rng, steps=30, dangling=False, start=100):
    """Apply a deterministic mixed DML history; returns inserted pks."""
    next_hid, next_iid = start, start * 100
    headers, items = [], []
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.4:
            hid = next_hid
            next_hid += 1
            if dangling and rng.random() < 0.4:
                # Child first (NULL tid stamp), parent later — or never.
                for _ in range(rng.randint(1, 2)):
                    db.insert(
                        "item",
                        {
                            "iid": next_iid,
                            "hid": hid,
                            "cid": rng.randint(0, 1),
                            "price": rng.randint(1, 40) / 4.0,
                        },
                    )
                    items.append(next_iid)
                    next_iid += 1
                if rng.random() < 0.7:
                    db.insert("header", {"hid": hid, "year": 2013})
                    headers.append(hid)
            else:
                db.insert("header", {"hid": hid, "year": 2013 + hid % 2})
                headers.append(hid)
                for _ in range(rng.randint(1, 3)):
                    db.insert(
                        "item",
                        {
                            "iid": next_iid,
                            "hid": hid,
                            "cid": rng.randint(0, 1),
                            "price": rng.randint(1, 40) / 4.0,
                        },
                    )
                    items.append(next_iid)
                    next_iid += 1
        elif roll < 0.55 and headers:
            db.update("header", rng.choice(headers), {"year": 2044})
        elif roll < 0.7 and items:
            victim = rng.choice(items)
            if db.table("item").get_row(victim) is not None:
                db.delete("item", victim)
        elif roll < 0.8:
            db.merge()


class TestPrunedSubjoinsTrulyEmpty:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_random_histories_with_ri(self, seed):
        db = make_erp_db()
        load_erp(db, n_headers=4, merge=True)
        rng = random.Random(seed)
        checked_total = 0
        for round_no in range(3):
            _random_history(db, rng, steps=12, start=100 + 1000 * round_no)
            checked_total += _pruned_subjoins_are_empty(db, PROFIT_SQL)
            result = db.query(PROFIT_SQL, strategy=FULL)
            assert result.rows == db.query(PROFIT_SQL, strategy=UNCACHED).rows
        assert checked_total > 0  # the histories actually produced prunes

    @pytest.mark.parametrize("seed", [5, 23])
    def test_random_histories_without_ri(self, seed):
        db = make_erp_db(
            cache_config=CacheConfig(enforce_referential_integrity=False)
        )
        load_erp(db, n_headers=4, merge=True)
        rng = random.Random(seed)
        for round_no in range(3):
            _random_history(
                db, rng, steps=12, dangling=True, start=100 + 1000 * round_no
            )
            _pruned_subjoins_are_empty(db, PROFIT_SQL)
            result = db.query(PROFIT_SQL, strategy=FULL)
            assert result.rows == db.query(PROFIT_SQL, strategy=UNCACHED).rows


class TestPushdownDropsNoRows:
    @pytest.mark.parametrize("seed", [9, 31])
    @pytest.mark.parametrize("enforce_ri", [True, False])
    def test_same_rows_with_and_without_pushdown(self, seed, enforce_ri):
        dbs = {
            push: make_erp_db(
                cache_config=CacheConfig(
                    predicate_pushdown=push,
                    enforce_referential_integrity=enforce_ri,
                )
            )
            for push in (True, False)
        }
        for db in dbs.values():
            load_erp(db, n_headers=4, merge=True)
            _random_history(
                db, random.Random(seed), steps=25, dangling=not enforce_ri
            )
        rows = {
            push: db.query(PROFIT_SQL, strategy=FULL).rows
            for push, db in dbs.items()
        }
        assert rows[True] == rows[False]
        assert rows[True] == dbs[True].query(PROFIT_SQL, strategy=UNCACHED).rows


class TestNullTidRegression:
    """The fix this suite guards: with RI off, a child inserted before its
    parent carries a NULL tid; dictionary ranges ignore NULLs, so a range-
    based prune (or an all-NULL-side prune) would drop its join match."""

    def _db(self):
        db = make_erp_db(
            cache_config=CacheConfig(enforce_referential_integrity=False)
        )
        load_erp(db, n_headers=3, merge=True)
        return db

    def test_late_arriving_parent_still_joins(self):
        db = self._db()
        # Dangling child in the delta: NULL header-tid, NULL category-tid.
        db.insert(
            "item", {"iid": 9000, "hid": 777, "cid": 0, "price": 8.25}
        )
        db.insert("header", {"hid": 777, "year": 2020})
        result = db.query(PROFIT_SQL, strategy=FULL)
        assert result.rows == db.query(PROFIT_SQL, strategy=UNCACHED).rows
        total = sum(row[1] for row in result.rows)
        assert abs(total - sum(
            row[1] for row in db.query(PROFIT_SQL, strategy=UNCACHED).rows
        )) == 0

    def test_all_null_side_is_not_pruned(self):
        db = self._db()
        db.merge()  # empty the deltas
        # The item delta now holds *only* NULL-tid rows; its tid range is
        # undefined, which with trusted MDs would mean "prune".
        db.insert("item", {"iid": 9100, "hid": 888, "cid": 1, "price": 4.5})
        db.insert("header", {"hid": 888, "year": 2021})
        result = db.query(PROFIT_SQL, strategy=FULL)
        assert result.rows == db.query(PROFIT_SQL, strategy=UNCACHED).rows

    def test_excluded_hub_with_null_tid_children(self):
        """Star-join reduction re-attaches an excluded hub's main to every
        variant.  With RI off, the item delta can hold NULL-tid rows
        (dangling or late-stamped); the re-attached header main must
        still be probed by value, and range pruning on the remaining
        variants must stand aside for the NULL rows."""
        db = self._db()
        db.merge()  # both deltas empty: header becomes excludable
        # A dangling child (hid=999 has no parent anywhere) and a child
        # of a *main* header — both NULL-tid in the item delta.
        db.insert("item", {"iid": 9200, "hid": 999, "cid": 0, "price": 2.5})
        db.insert("item", {"iid": 9201, "hid": 0, "cid": 1, "price": 7.75})
        plan = db.cache.plan_for(PROFIT_SQL, FULL)
        excluded = {e.alias for e in plan.excluded}
        assert "h" in excluded and "d" in excluded
        result = db.query(PROFIT_SQL, strategy=FULL)
        assert result.rows == db.query(PROFIT_SQL, strategy=UNCACHED).rows
        # The late parent arrives: header's delta grows, its exclusion
        # lifts, and the formerly-dangling pair must now join.
        db.insert("header", {"hid": 999, "year": 2022})
        plan = db.cache.plan_for(PROFIT_SQL, FULL)
        assert "h" not in {e.alias for e in plan.excluded}
        reference = db.query(PROFIT_SQL, strategy=UNCACHED).rows
        assert db.query(PROFIT_SQL, strategy=FULL).rows == reference
        # ...and matches the exhaustive enumeration bit for bit.
        assert (
            db.query(PROFIT_SQL, strategy=FULL, star_join_tables=()).rows
            == reference
        )

    def test_random_null_tid_histories_reduced_vs_exhaustive(self):
        """Property sweep: under RI-off dangling histories the reduced
        and exhaustive variant sets agree with the uncached truth."""
        db = self._db()
        rng = random.Random(17)
        for round_no in range(3):
            _random_history(
                db, rng, steps=10, dangling=True, start=500 + 1000 * round_no
            )
            reference = db.query(PROFIT_SQL, strategy=UNCACHED).rows
            assert db.query(PROFIT_SQL, strategy=FULL).rows == reference
            assert (
                db.query(
                    PROFIT_SQL, strategy=FULL, star_join_tables=()
                ).rows
                == reference
            )

    def test_with_ri_enforced_ranges_still_prune(self):
        """Control: under enforced RI the same shapes stay prunable —
        the fix must not cost trusted deployments their prunes.
        (star_join_tables=() keeps enumeration exhaustive: the merged
        tables would otherwise all be excluded with nothing left to
        prune.)"""
        db = make_erp_db()
        load_erp(db, n_headers=3, merge=True)
        db.query(PROFIT_SQL, strategy=FULL, star_join_tables=())
        assert db.last_report.prune.pruned_total > 0
