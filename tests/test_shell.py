"""Tests for the interactive shell (driven through string streams)."""

import io

import pytest

from repro import Database, ExecutionStrategy
from repro.shell import Shell


def run_shell(script: str, db=None) -> str:
    stdin = io.StringIO(script)
    stdout = io.StringIO()
    shell = Shell(db=db, stdin=stdin, stdout=stdout)
    shell.run()
    return stdout.getvalue()


def make_db():
    db = Database()
    db.create_table(
        "sales", [("sid", "INT"), ("cat", "TEXT"), ("price", "FLOAT")], primary_key="sid"
    )
    for sid, cat, price in [(1, "a", 5.0), (2, "b", 7.0), (3, "a", 3.0)]:
        db.insert("sales", {"sid": sid, "cat": cat, "price": price})
    db.merge()
    return db


class TestMetaCommands:
    def test_help(self):
        out = run_shell("\\help\n\\quit\n")
        assert "\\tables" in out
        assert "bye" in out

    def test_quit_and_eof(self):
        assert "bye" in run_shell("\\quit\n")
        # EOF without \quit terminates cleanly too.
        assert "repro interactive shell" in run_shell("")

    def test_unknown_command(self):
        out = run_shell("\\bogus\n\\quit\n")
        assert "unknown command" in out

    def test_tables_empty_and_populated(self):
        assert "(no tables" in run_shell("\\tables\n\\quit\n")
        out = run_shell("\\tables\n\\quit\n", db=make_db())
        assert "sales" in out and "main=3" in out

    def test_schema(self):
        out = run_shell("\\schema sales\n\\quit\n", db=make_db())
        assert "sid  INT  (PRIMARY KEY)" in out
        assert "price  FLOAT" in out

    def test_schema_usage_and_missing_table(self):
        out = run_shell("\\schema\n\\schema nope\n\\quit\n", db=make_db())
        assert "usage" in out
        assert "error:" in out

    def test_strategy_show_and_set(self):
        out = run_shell(
            "\\strategy\n\\strategy uncached\n\\strategy weird\n\\quit\n"
        )
        assert "cached_full_pruning" in out
        assert "strategy: uncached" in out
        assert "unknown strategy" in out

    def test_merge(self):
        db = Database()
        db.create_table("t", [("k", "INT")], primary_key="k")
        db.insert("t", {"k": 1})
        out = run_shell("\\merge t\n\\quit\n", db=db)
        assert "1 rows moved" in out

    def test_entries_and_report(self):
        db = make_db()
        out = run_shell(
            "SELECT cat, SUM(price) AS s FROM sales GROUP BY cat;\n"
            "\\entries\n\\report\n\\quit\n",
            db=db,
        )
        assert "groups=2" in out
        assert "strategy=cached_full_pruning" in out

    def test_entries_empty(self):
        assert "cache is empty" in run_shell("\\entries\n\\quit\n", db=make_db())

    def test_report_before_any_query(self):
        assert "no query executed" in run_shell("\\report\n\\quit\n")

    def test_explain(self):
        out = run_shell(
            "\\explain SELECT cat, SUM(price) AS s FROM sales GROUP BY cat\n\\quit\n",
            db=make_db(),
        )
        assert "delta compensation" in out

    def test_demo_loads_once(self):
        out = run_shell("\\demo\n\\demo\n\\quit\n")
        assert "loaded ERP demo" in out
        assert "not empty" in out


class TestSqlExecution:
    def test_single_line_query(self):
        out = run_shell(
            "SELECT cat, SUM(price) AS s FROM sales GROUP BY cat;\n\\quit\n",
            db=make_db(),
        )
        assert "a" in out and "8.00" in out
        assert "2 rows" in out

    def test_multi_line_query(self):
        out = run_shell(
            "SELECT cat, SUM(price) AS s\nFROM sales\nGROUP BY cat;\n\\quit\n",
            db=make_db(),
        )
        assert "2 rows" in out

    def test_sql_error_reported(self):
        out = run_shell("SELECT FROM;\n\\quit\n", db=make_db())
        assert "error:" in out

    def test_strategy_applies_to_queries(self):
        db = make_db()
        out = run_shell(
            "\\strategy uncached\n"
            "SELECT COUNT(*) AS n FROM sales;\n\\quit\n",
            db=db,
        )
        assert "strategy=uncached" in out
        assert db.cache.entry_count() == 0


class TestSnapshotCommands:
    def test_save_and_open_roundtrip(self, tmp_path):
        db = make_db()
        target = tmp_path / "snap"
        out = run_shell(f"\\save {target}\n\\quit\n", db=db)
        assert "snapshot written" in out
        out = run_shell(
            f"\\open {target}\nSELECT COUNT(*) AS n FROM sales;\n\\quit\n"
        )
        assert "snapshot loaded" in out
        assert "1 rows" in out

    def test_usage_messages(self):
        out = run_shell("\\save\n\\open\n\\quit\n")
        assert out.count("usage:") == 2

    def test_open_missing_snapshot(self, tmp_path):
        out = run_shell(f"\\open {tmp_path}/void\n\\quit\n")
        assert "error:" in out
