"""Crash recovery: a durable database survives a simulated ``kill -9``.

Demonstrates the reliability subsystem end to end:

1. open a durable database (``Database.open``) — every committed
   transaction is fsynced to a CRC-checked write-ahead log, every merge
   additionally writes an atomic checkpoint,
2. arm a fault point and crash the process mid-write (the WAL tears the
   in-flight record in half, like a real partial write),
3. reopen the directory: recovery loads the newest checkpoint, replays the
   WAL suffix, drops the torn tail, and the data is back.

Fault points you can arm instead of ``wal.append``: ``checkpoint.write``,
``merge.stage``, ``merge.before_swap``, ``merge.after_swap``,
``cache.maintenance``, ``txn.commit``.

Run with:  python examples/crash_recovery.py
"""

import tempfile
from pathlib import Path

from repro import Database, ExecutionStrategy, SimulatedCrash

SQL = (
    "SELECT h.year AS year, SUM(i.price) AS revenue, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY h.year"
)


def build(db: Database) -> None:
    db.create_table("header", [("hid", "INT"), ("year", "INT")], primary_key="hid")
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("price", "FLOAT")],
        primary_key="iid",
    )
    db.add_matching_dependency("header", "hid", "item", "hid")


def load(db: Database, hids) -> None:
    for hid in hids:
        db.insert_business_object(
            "header",
            {"hid": hid, "year": 2013 + hid % 2},
            "item",
            [
                {"iid": hid * 10 + k, "hid": hid, "price": float(hid + k + 1)}
                for k in range(3)
            ],
        )


def main() -> None:
    path = Path(tempfile.mkdtemp(prefix="repro-crash-")) / "db"

    # ------------------------------------------------- a durable lifetime
    db = Database.open(path)
    build(db)
    load(db, range(4))
    db.merge()  # merges write a checkpoint: recovery replays less WAL
    load(db, range(100, 103))  # these live only in the WAL
    expected = db.query(SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print("before the crash:")
    for row in expected.rows:
        print("   ", row)

    # ------------------------------------------------------- kill it
    # The next WAL append writes half a record, then the "process" dies.
    db.faults.arm("wal.append", mode="crash")
    try:
        db.insert("header", {"hid": 999, "year": 2099})
    except SimulatedCrash as crash:
        print(f"\ncrashed: {crash}")
    db.close()  # abandon the dead instance

    # ------------------------------------------------------- recover
    recovered = Database.open(path)
    stats = recovered.recovery_stats
    print(
        f"\nrecovered from {path}:\n"
        f"    checkpoint lsn   {stats.checkpoint_lsn}\n"
        f"    records replayed {stats.records_replayed} "
        f"(txns {stats.transactions_replayed}, merges {stats.merges_replayed})\n"
        f"    torn tail records dropped {stats.torn_records_dropped}\n"
        f"    tid high-water mark {stats.recovered_tid}"
    )

    result = recovered.query(SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print("\nafter recovery:")
    for row in result.rows:
        print("   ", row)
    assert result == expected, "recovered state diverged!"
    assert recovered.table("header").get_row(999) is None  # the torn insert

    # Life goes on: the tid sequence continues, the cache re-admits entries.
    recovered.insert_business_object(
        "header", {"hid": 999, "year": 2099}, "item", [{"iid": 9990, "hid": 999, "price": 1.0}]
    )
    recovered.merge()
    print("\ndurability counters:")
    print(recovered.statistics().render().split("durability:")[1])


if __name__ == "__main__":
    main()
