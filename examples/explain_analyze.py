"""EXPLAIN ANALYZE and live metrics — where does a query's time go?

Walks the observability layer (docs/architecture.md §9) end to end:

* `db.explain_analyze(sql)` runs the query and returns a `QueryTrace`
  — a tree of timed spans: bind → cache lookup (build on a miss) →
  delta compensation with one span per compensation subjoin, each
  carrying its prune reason or its rows-scanned/pushdown/worker detail,
* a cold run (cache miss, entry built) vs. a warm run (hit, only the
  delta compensated) of the paper's Listing-1 profit query,
* `db.export_metrics()` — the same execution counted in the
  Prometheus-format metrics registry.

Run with:  python examples/explain_analyze.py
"""

from repro import Database
from repro.workloads import ErpConfig, ErpWorkload


def main() -> None:
    db = Database()
    workload = ErpWorkload(db, ErpConfig(seed=1, n_categories=8))

    print("loading 300 merged business objects + 30 unmerged ...")
    workload.insert_objects(300, merge_after=True)
    workload.insert_objects(30, year=2013)

    sql = workload.profit_and_loss_sql(year=2013)
    print("\nListing-1 query:")
    print(sql.strip())

    # ------------------------------------------------ cold: cache miss
    print("\n--- cold run (cache miss: entry is built from the main) ---")
    cold = db.explain_analyze(sql)
    print(cold.render())

    # ------------------------------------------------- warm: cache hit
    print("--- warm run (hit: only the delta is compensated) ---")
    warm = db.explain_analyze(sql)
    print(warm.render())

    # The trace carries the result and the execution report.
    lookup = warm.span_named("cache_lookup")
    report = warm.report
    print(f"lookup outcome: {lookup.attrs['outcome']}")
    print(
        f"subjoins: {report.prune.combos_total} total, "
        f"{report.prune.pruned_total} pruned "
        f"(empty={report.prune.pruned_empty}, "
        f"logical={report.prune.pruned_logical}, "
        f"dynamic={report.prune.pruned_dynamic}), "
        f"{report.prune.evaluated} evaluated"
    )
    for span in warm.subjoin_spans():
        if span.attrs["status"] == "pruned":
            print(f"  pruned  {span.attrs['combo']}: {span.attrs['prune_reason']}")
        elif span.attrs["status"] == "memoized":
            # Delta-memo replay: the covered prefix is not rescanned.
            print(f"  memoized {span.attrs['combo']}")
        else:
            pushed = span.attrs.get("pushdown_filters", {})
            print(
                f"  scanned {span.attrs['combo']}: "
                f"rows {span.attrs['rows_scanned']}, "
                f"{sum(pushed.values())} pushdown filters"
            )
    assert warm.result == cold.result, "tracing must not change the answer"

    # ------------------------------------------- the metrics registry
    print("\n--- Prometheus scrape (query/cache/subjoin families) ---")
    wanted = ("repro_queries_total", "repro_cache_", "repro_subjoins_")
    for line in db.export_metrics().splitlines():
        if line.startswith(wanted) or (
            line.startswith("#") and any(w in line for w in wanted)
        ):
            print(line)


if __name__ == "__main__":
    main()
