"""Inspecting the engine: EXPLAIN plans, statistics, and time travel.

Shows the introspection surface of the reproduction:

* ``db.explain(sql)`` — which all-main combinations are cached and what
  happens to every compensation subjoin (pruned by what / pushdown),
* ``db.statistics()`` — storage, cache, and enforcement monitoring views,
* ``db.query(sql, as_of=tid)`` — time-travel reads against retained history
  (``merge(keep_history=True)``).

Run with:  python examples/explain_and_time_travel.py
"""

from repro import Database, ExecutionStrategy
from repro.workloads import ErpConfig, ErpWorkload


def main() -> None:
    db = Database()
    workload = ErpWorkload(db, ErpConfig(seed=11, n_categories=6))
    workload.insert_objects(200, merge_after=True)
    workload.insert_objects(10)

    sql = workload.header_item_sql()

    print("=== EXPLAIN before the first execution (all-main combo is a MISS) ===")
    print(db.explain(sql))

    db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print("\n=== EXPLAIN after one execution (HIT; crosses pruned) ===")
    print(db.explain(sql))

    print("\n=== engine statistics ===")
    print(db.statistics().render())

    # ------------------------------------------------------------------
    print("\n=== time travel ===")
    checkpoint = db.transactions.global_snapshot()
    before = db.query("SELECT COUNT(*) AS n FROM Item").rows[0][0]
    workload.insert_objects(5)
    db.update("Item", 1, {"Price": 0.01})
    db.merge(keep_history=True)  # retain invalidated versions for history
    after = db.query("SELECT COUNT(*) AS n FROM Item").rows[0][0]
    past = db.query("SELECT COUNT(*) AS n FROM Item", as_of=checkpoint).rows[0][0]
    print(f"item count now:            {after}")
    print(f"item count at checkpoint:  {past} (== {before} then)")
    assert past == before

    old_price = db.query(
        "SELECT SUM(Price) AS s FROM Item WHERE ItemID = 1", as_of=checkpoint
    ).rows[0][0]
    new_price = db.query("SELECT SUM(Price) AS s FROM Item WHERE ItemID = 1").rows[0][0]
    print(f"item 1 price then/now:     {old_price:.2f} / {new_price:.2f}")
    print("\nhistory preserved across the delta merge (keep_history=True). done.")


if __name__ == "__main__":
    main()
