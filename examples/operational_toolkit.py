"""Operating the engine: CSV loading, merge advisor, traces, snapshots.

A day-2-operations tour of the toolkit around the core engine:

* bulk-load a table from CSV (matching dependencies enforced per row),
* let the merge advisor decide when to run the delta merge — and watch it
  pull MD-related tables in together (merge synchronization, Section 5.2),
* record the workload as a trace and replay it into a fresh database,
* persist a snapshot to disk and reload it.

Run with:  python examples/operational_toolkit.py
"""

import tempfile
from pathlib import Path

from repro import Database, ExecutionStrategy
from repro.core import MergeAdvisor
from repro.storage import load_database, save_database
from repro.workloads import TraceRecorder, TraceReplayer

SQL = (
    "SELECT i.region AS region, SUM(i.amount) AS revenue, COUNT(*) AS n "
    "FROM invoice h, invoice_line i WHERE h.inv_id = i.inv_id "
    "GROUP BY i.region"
)


def create_schema(db: Database) -> None:
    db.create_table(
        "invoice", [("inv_id", "INT"), ("day", "DATE")], primary_key="inv_id"
    )
    db.create_table(
        "invoice_line",
        [("line_id", "INT"), ("inv_id", "INT"), ("region", "TEXT"), ("amount", "FLOAT")],
        primary_key="line_id",
    )
    db.add_matching_dependency("invoice", "inv_id", "invoice_line", "inv_id")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_ops_"))
    db = Database()
    create_schema(db)

    # ------------------------------------------------------- CSV loading
    invoices = workdir / "invoices.csv"
    lines = workdir / "lines.csv"
    invoices.write_text(
        "inv_id,day\n" + "\n".join(f"{i},2014-01-{(i % 27) + 1:02d}" for i in range(200))
    )
    lines.write_text(
        "line_id,inv_id,region,amount\n"
        + "\n".join(
            f"{i},{i // 4},{'EU' if i % 3 else 'US'},{(i % 90) + 1}.50"
            for i in range(800)
        )
    )

    # ---------------------------------------- trace everything from here
    trace_path = workdir / "workload.trace"
    with TraceRecorder(db, trace_path) as recorder:
        print(f"imported {db.import_csv('invoice', invoices)} invoices")
        print(f"imported {db.import_csv('invoice_line', lines)} invoice lines")
        advisor = MergeAdvisor(delta_fill_threshold=0.3, min_delta_rows=50)
        recommendation = advisor.recommend(db)
        print(f"\nadvisor: {recommendation.describe()}")
        db.auto_merge(advisor)
        db.query(SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
        # some fresh business after the merge
        for inv_id in range(200, 210):
            db.insert_business_object(
                "invoice",
                {"inv_id": inv_id, "day": "2014-02-01"},
                "invoice_line",
                [
                    {
                        "line_id": 10_000 + inv_id * 2 + k,
                        "inv_id": inv_id,
                        "region": "EU",
                        "amount": 10.0,
                    }
                    for k in range(2)
                ],
            )
        print(f"recorded {recorder.operations} operations into {trace_path.name}")

    result = db.query(SQL, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print("\nrevenue per region:")
    print(result.to_text())

    # ------------------------------------------------------------ replay
    replica = Database()
    create_schema(replica)
    counts = TraceReplayer(replica).replay(trace_path)
    print(f"\nreplayed into a fresh database: {counts}")
    assert replica.query(SQL) == result

    # --------------------------------------------------------- snapshot
    snapshot_dir = save_database(db, workdir / "snapshot")
    restored = load_database(snapshot_dir)
    assert restored.query(SQL) == result
    print(f"snapshot round-trip verified at {snapshot_dir}")
    print("\ndone.")


if __name__ == "__main__":
    main()
