"""Hot/cold multi-partitioning with logical + dynamic pruning (Section 5.4).

Ages Header and Item into hot (current fiscal year) and cold partitions at
roughly the paper's 1:3 ratio, declares consistent aging, and shows:

* one aggregate cache entry per all-main temperature combination,
* logical pruning of every cross-temperature compensation subjoin,
* hot-only merges that maintain only the hot entries.

Run with:  python examples/hot_cold_partitioning.py
"""

from repro import Database, ExecutionStrategy
from repro.storage import threshold_aging
from repro.workloads import ErpConfig, ErpWorkload


def main() -> None:
    db = Database()
    workload = ErpWorkload(
        db,
        ErpConfig(seed=3, n_categories=10, years=(2011, 2012, 2013, 2014)),
        header_aging=threshold_aging("FiscalYear", 2014),
        item_aging=threshold_aging("FiscalYear", 2014),
    )
    print("loading 600 business objects across fiscal years 2011-2014 ...")
    workload.insert_objects(600, merge_after=True)

    header = db.table("Header")
    print("\npartition layout after the merge:")
    for partition in header.partitions():
        print(f"  Header.{partition.name:<11} {partition.row_count:>6} rows")
    for partition in db.table("Item").partitions():
        print(f"  Item.{partition.name:<13} {partition.row_count:>6} rows")

    sql = workload.header_item_sql()
    result = db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print(
        f"\nfirst query created {db.cache.entry_count()} cache entries "
        "(one per hot/cold main combination; the cross-temperature ones are "
        "empty by consistent aging)"
    )

    print("\ninserting 40 objects of new (hot) business ...")
    workload.insert_objects(40, year=2014)
    result = db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    report = db.last_report
    print(
        f"compensation subjoins: {report.prune.combos_total} total, "
        f"{report.prune.pruned_logical} logically pruned (cross-temperature), "
        f"{report.prune.pruned_empty} empty, "
        f"{report.prune.pruned_dynamic} dynamic, "
        f"{report.prune.evaluated} evaluated"
    )

    print("\nmerging only the hot groups (the cold ones are undisturbed) ...")
    db.merge("Header", group_name="hot")
    db.merge("Item", group_name="hot")
    result = db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print(f"all {db.last_report.cache_hits} entries still hit after the merge")

    reference = db.query(sql, strategy=ExecutionStrategy.UNCACHED)
    assert result == reference
    print("\nresult verified against the uncached aggregation:")
    print(result.to_text(max_rows=10))


if __name__ == "__main__":
    main()
