"""Tiered hot/cold storage — demote cold mains to disk, keep answers exact.

Builds on the hot/cold multi-partitioning example (Section 5.4): Header
and Item are aged by fiscal year with consistent aging declared.  This
example shows the *storage tier* underneath:

* `db.age_out()` demotes the cold-group mains to memory-mapped files
  (code vectors + MVCC stamps) and lazily loaded dictionaries — written
  atomically, manifest last, so a crash mid-demotion is harmless,
* the `\\tables`-style listing marks mapped partitions, and
  `table.tier_bytes()` splits resident vs mapped bytes,
* the per-partition synopsis (tid ranges, dictionary min/max, null
  flags) stays resident, so pruning cross-temperature subjoins never
  touches disk — EXPLAIN ANALYZE tags those spans `synopsis_pruned`,
* query results are bit-identical before and after demotion, and the
  `repro_storage_tier_bytes` / `repro_pruning_synopsis_skips_total`
  metrics account for the tier.

Run with:  python examples/hot_cold.py
"""

import tempfile

from repro import Database, ExecutionStrategy
from repro.storage import threshold_aging
from repro.workloads import ErpConfig, ErpWorkload

FULL = ExecutionStrategy.CACHED_FULL_PRUNING


def show_tables(db: Database) -> None:
    """The shell's \\tables view: row counts, ':mapped' marks the cold tier."""
    for name in db.catalog.table_names():
        table = db.table(name)
        parts = ", ".join(
            f"{p.name}={p.row_count}"
            + (":mapped" if p.storage_tier == "mapped" else "")
            for p in table.partitions()
        )
        print(f"  {name}  [{parts}]")


def show_tier_bytes(db: Database, names) -> None:
    for name in names:
        tiers = db.table(name).tier_bytes()
        print(
            f"  {name:<8} hot={tiers['hot']:>7}B  "
            f"cold-resident={tiers['cold_resident']:>6}B  "
            f"cold-mapped={tiers['cold_mapped']:>7}B"
        )


def main() -> None:
    cold_dir = tempfile.mkdtemp(prefix="repro-cold-")
    db = Database(cold_path=cold_dir)
    workload = ErpWorkload(
        db,
        ErpConfig(seed=3, n_categories=10, years=(2011, 2012, 2013, 2014)),
        header_aging=threshold_aging("FiscalYear", 2014),
        item_aging=threshold_aging("FiscalYear", 2014),
    )
    print("loading 600 business objects across fiscal years 2011-2014 ...")
    workload.insert_objects(600, merge_after=True)
    workload.insert_objects(30, year=2014)  # fresh hot business in the deltas

    sql = workload.header_item_sql()
    before = db.query(sql, strategy=FULL)
    print(f"\nquery over all temperatures: {len(before)} groups")

    print("\nall-resident layout:")
    show_tables(db)
    show_tier_bytes(db, ["Header", "Item"])

    # ---------------------------------------------------------- demote
    demoted = db.age_out()
    print(f"\nage_out() demoted {len(demoted)} cold mains -> {cold_dir}")
    for table_name, partition_name in demoted:
        print(f"  {table_name}.{partition_name} is now memory-mapped")

    print("\ntiered layout (same partitions, same objects, new backing):")
    show_tables(db)
    show_tier_bytes(db, ["Header", "Item"])

    # ------------------------------------------------- still bit-exact
    after = db.query(sql, strategy=FULL)
    assert after.rows == before.rows, "demotion must never change results"
    print(
        f"\nre-ran the query: {len(after)} groups, rows identical, "
        f"cache hits={db.last_report.cache_hits} (no entry was invalidated)"
    )

    # -------------------------------- synopsis pruning without disk I/O
    prune = db.last_report.prune
    print(
        f"pruning: {prune.pruned_total} of {prune.combos_total} subjoins "
        f"pruned, {prune.synopsis_skips} verdicts involved a mapped "
        "partition — answered from the resident synopsis, zero disk reads"
    )

    trace = db.explain_analyze(sql)
    pruned_spans = [
        s
        for s in trace.spans()
        if s.attrs.get("synopsis_pruned") or s.attrs.get("tier")
    ]
    print(f"\nEXPLAIN ANALYZE tags {len(pruned_spans)} tier-aware spans, e.g.:")
    for span in pruned_spans[:3]:
        tags = []
        if span.attrs.get("tier"):
            tags.append(f"tier={span.attrs['tier']}")
        if span.attrs.get("synopsis_pruned"):
            tags.append("synopsis_pruned")
        print(f"  {span.name}  {' '.join(tags)}  ({span.attrs.get('combo', '')})")

    # ------------------------------------------------------- metrics
    metrics = db.export_metrics()
    print("\ntier metrics:")
    for line in metrics.splitlines():
        if line.startswith(("repro_storage_tier_bytes", "repro_storage_demotions",
                            "repro_pruning_synopsis_skips")):
            print(f"  {line}")


if __name__ == "__main__":
    main()
