"""ERP profit-and-loss analysis — the paper's motivating scenario.

Reproduces the Listing-1 query ("how much profit did the company make with
each of its product categories?") over the Header/Item/ProductCategory
schema, and compares all four execution strategies on the same live
database: a merged main of historical business plus a delta of today's
business.

Run with:  python examples/erp_profit_loss.py
"""

import time

from repro import Database, ExecutionStrategy
from repro.workloads import ErpConfig, ErpWorkload

STRATEGY_NAMES = {
    ExecutionStrategy.UNCACHED: "uncached aggregate query",
    ExecutionStrategy.CACHED_NO_PRUNING: "cached, no pruning",
    ExecutionStrategy.CACHED_EMPTY_DELTA: "cached, empty-delta pruning",
    ExecutionStrategy.CACHED_FULL_PRUNING: "cached, full dynamic pruning",
}


def main() -> None:
    db = Database()
    workload = ErpWorkload(db, ErpConfig(seed=1, n_categories=12))

    print("loading 800 historical business objects (8000 items) ...")
    workload.insert_objects(800, merge_after=True)
    print("inserting 60 objects of fresh, unmerged business ...")
    workload.insert_objects(60, year=2013)

    sql = workload.profit_and_loss_sql(year=2013)
    print("\nListing-1 query:")
    print(sql.strip())

    reference = None
    print("\nstrategy comparison (same query, same data):")
    for strategy in STRATEGY_NAMES:
        db.query(sql, strategy=strategy)  # warm the cache entry
        best = min(
            _timed(lambda: db.query(sql, strategy=strategy)) for _ in range(3)
        )
        report = db.last_report
        pruned = f"{report.prune.pruned_total}/{report.prune.combos_total}"
        print(
            f"  {STRATEGY_NAMES[strategy]:<30} {best * 1000:7.2f} ms   "
            f"subjoins pruned: {pruned}"
        )
        result = db.query(sql, strategy=strategy)
        if reference is None:
            reference = result
        assert result == reference, "strategies must agree"

    print("\nprofit per category (2013, English category names):")
    print(reference.to_text(max_rows=12))

    entry = db.cache.entries()[0]
    print(
        f"\ncache entry metrics: {entry.metrics.aggregated_records_main} main "
        f"records aggregated, size ~{entry.metrics.size_bytes} bytes, "
        f"used {entry.metrics.reference_count} times"
    )


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


if __name__ == "__main__":
    main()
