"""CH-benCHmark analytics: TPC-H-style queries on live TPC-C-style data.

Loads the scaled CH-benCHmark dataset (5 % of the transactional tables in
the delta partitions, as in the paper's Fig. 9 setup) and runs the four
analytical queries Q3, Q5, Q9, Q10 under the aggregate cache, showing how
many of the exponential compensation subjoins the object-aware pruning
eliminates per query.

Run with:  python examples/chbench_analytics.py
"""

import time

from repro import Database, ExecutionStrategy
from repro.workloads import CH_QUERIES, CH_QUERY_TABLES, ChBenchmark, ChConfig


def main() -> None:
    db = Database()
    print("loading CH-benCHmark (scaled) ...")
    benchmark = ChBenchmark(
        db,
        ChConfig(
            warehouses=2,
            districts_per_warehouse=4,
            customers_per_district=20,
            orders_per_district=50,
            orderlines_per_order=8,
            items=250,
            suppliers=20,
            delta_fraction=0.05,
            seed=7,
        ),
    )
    counts = benchmark.load()
    deltas = benchmark.delta_counts()
    print("table            rows   (delta)")
    for name in ("orders", "neworder", "orderline", "stock", "customer", "item"):
        print(f"  {name:<12} {counts[name]:>7}   ({deltas[name]})")

    for name, sql in CH_QUERIES.items():
        tables = CH_QUERY_TABLES[name]
        subjoins = 2**tables - 1
        print(f"\n=== {name}: {tables}-table join, {subjoins} compensation subjoins ===")
        uncached_time = _best(lambda: db.query(sql, strategy=ExecutionStrategy.UNCACHED))
        db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)  # warm
        cached_time = _best(
            lambda: db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
        )
        report = db.last_report
        print(
            f"  uncached: {uncached_time * 1000:7.2f} ms   "
            f"cached+pruned: {cached_time * 1000:6.2f} ms   "
            f"speedup: {uncached_time / cached_time:5.1f}x"
        )
        print(
            f"  pruned {report.prune.pruned_total}/{report.prune.combos_total} subjoins "
            f"(empty: {report.prune.pruned_empty}, "
            f"dynamic tid-range: {report.prune.pruned_dynamic})"
        )
        result = db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
        print(result.to_text(max_rows=5))


def _best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


if __name__ == "__main__":
    main()
