"""Quickstart: a delta-main database with an object-aware aggregate cache.

Walks through the whole life of an aggregate cache entry:

1. create a header/item schema and declare the matching dependency,
2. insert business objects and run the delta merge,
3. answer an aggregate join query through the cache (watch the pruning),
4. insert new business (delta compensation), update a row (main
   compensation), and merge again (incremental maintenance).

Run with:  python examples/quickstart.py
"""

from repro import Database, ExecutionStrategy


def main() -> None:
    db = Database()

    # ------------------------------------------------------------- schema
    db.create_table(
        "header",
        [("hid", "INT"), ("fiscal_year", "INT")],
        primary_key="hid",
    )
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("category", "TEXT"), ("price", "FLOAT")],
        primary_key="iid",
    )
    # The matching dependency installs tid columns on both tables and
    # enforces, at insert time, that matching header/item rows share the
    # header's inserting-transaction id (the paper's Equation 6).
    db.add_matching_dependency("header", "hid", "item", "hid")

    # --------------------------------------------------------------- data
    categories = ["books", "games", "tools"]
    iid = 0
    for hid in range(200):
        items = []
        for k in range(4):
            items.append(
                {
                    "iid": iid,
                    "hid": hid,
                    "category": categories[(hid + k) % 3],
                    "price": float((hid % 7) + k + 1),
                }
            )
            iid += 1
        db.insert_business_object(
            "header", {"hid": hid, "fiscal_year": 2013}, "item", items
        )
    db.merge()  # propagate the deltas into the read-optimized mains
    print(f"loaded: {db.table('item').row_count()} items in the main storage")

    # -------------------------------------------------------------- query
    sql = (
        "SELECT i.category AS category, SUM(i.price) AS revenue, COUNT(*) AS n "
        "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.category"
    )
    result = db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print("\nrevenue per category (first query creates the cache entry):")
    print(result.to_text())
    print(f"cache entries: {db.cache.entry_count()}")

    # ------------------------------------------------- delta compensation
    db.insert_business_object(
        "header",
        {"hid": 900, "fiscal_year": 2014},
        "item",
        [{"iid": 90_000, "hid": 900, "category": "books", "price": 100.0}],
    )
    result = db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    report = db.last_report
    print("\nafter inserting a new business object (delta compensation):")
    print(result.to_text())
    print(
        f"cache hit: {report.cache_hits == 1}; compensation subjoins "
        f"pruned {report.prune.pruned_total}/{report.prune.combos_total} "
        "(the new object sits entirely in the deltas)"
    )

    # -------------------------------------------------- main compensation
    db.update("item", 0, {"price": 999.0})
    result = db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print("\nafter updating a main-resident item (main compensation):")
    print(result.to_text())
    print(
        "invalidated rows compensated:",
        db.last_report.invalidated_rows_compensated,
    )

    # ------------------------------------------------ merge + maintenance
    db.merge()
    result = db.query(sql, strategy=ExecutionStrategy.CACHED_FULL_PRUNING)
    print("\nafter the delta merge (entry incrementally maintained):")
    print(result.to_text())
    print(f"still a cache hit: {db.last_report.cache_hits == 1}")

    # ------------------------------------------------------ verification
    uncached = db.query(sql, strategy=ExecutionStrategy.UNCACHED)
    assert uncached == result
    print("\ncached result verified against the uncached aggregation. done.")


if __name__ == "__main__":
    main()
