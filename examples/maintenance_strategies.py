"""Maintenance strategies under a mixed workload (the Fig. 6 story).

Compares three ways of serving the same aggregate while inserts stream in:

* an eager incremental materialized view (summary table updated inside
  every insert transaction),
* a lazy incremental materialized view (change log drained before reads),
* the aggregate cache (entries on the main only; deltas compensated at
  read time, maintenance only at the merge).

Run with:  python examples/maintenance_strategies.py
"""

import time

from repro import Database
from repro.workloads import (
    AggregateCacheSystem,
    EagerViewSystem,
    LazyViewSystem,
    run_mixed_workload,
)

SQL = (
    "SELECT CategoryID, SUM(Price) AS Revenue, COUNT(*) AS N "
    "FROM Item GROUP BY CategoryID"
)
INITIAL_ROWS = 2000
OPERATIONS = 150


def make_database() -> Database:
    db = Database()
    db.create_table(
        "Item",
        [("ItemID", "INT"), ("CategoryID", "INT"), ("Price", "FLOAT")],
        primary_key="ItemID",
    )
    for item_id in range(INITIAL_ROWS):
        db.insert(
            "Item",
            {"ItemID": item_id, "CategoryID": item_id % 15, "Price": float(item_id % 40)},
        )
    db.merge()
    return db


def object_stream(start: int):
    """One 10-row business object per insert operation."""
    item_id = start
    while True:
        rows = []
        for _ in range(10):
            rows.append(
                {
                    "ItemID": item_id,
                    "CategoryID": item_id % 15,
                    "Price": float(item_id % 40),
                }
            )
            item_id += 1
        yield ("Item", rows)


def main() -> None:
    print(f"mixed workload: {OPERATIONS} operations over a {INITIAL_ROWS}-row table")
    print(f"{'insert ratio':>12} | {'eager view':>10} | {'lazy view':>10} | {'agg cache':>10}")
    for ratio in (0.0, 0.25, 0.5, 0.75, 1.0):
        times = {}
        for label, factory in (
            ("eager", EagerViewSystem),
            ("lazy", LazyViewSystem),
            ("cache", AggregateCacheSystem),
        ):
            db = make_database()
            system = factory(db, SQL)
            system.read()  # warm
            result = run_mixed_workload(
                system, object_stream(INITIAL_ROWS), OPERATIONS, ratio, seed=5
            )
            started = time.perf_counter()
            system.read()  # the deferred lazy bill comes due here
            final_read = time.perf_counter() - started
            times[label] = result.total_time + final_read
        print(
            f"{ratio:>12.0%} | {times['eager'] * 1000:>8.1f}ms | "
            f"{times['lazy'] * 1000:>8.1f}ms | {times['cache'] * 1000:>8.1f}ms"
        )
    print(
        "\nclassical view maintenance pays per write (eager) or at "
        "read-after-write (lazy); the aggregate cache's insert path is "
        "untouched and its read-side compensation stays bounded."
    )


if __name__ == "__main__":
    main()
