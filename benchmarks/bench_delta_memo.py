"""Delta-compensation memo — repeated-hit latency as the deltas grow.

A cache hit pays for the entry lookup plus the compensation of every
delta-touching subjoin.  Without the memo that compensation rescans the
*entire* delta on every hit; with it, only the rows appended since the
previous hit are scanned and folded into the per-entry memo.  This
benchmark runs CH-benCHmark Q3 (4 tables) and Q5 (7 tables) through the
full ``Database.query`` path against two otherwise identical databases —
``CacheConfig(delta_memo=True)`` vs ``False`` — first growing the deltas
between hits (the incremental-advance path), then timing the steady
state where the memo-on database rescans nothing at all.

Amounts are generated on a 0.25 quantum (``ChConfig.amount_quantum``),
so every partial sum is exactly representable and the results are
asserted bit-identical across memo on/off: the memo changes *what is
rescanned*, never the answer.
"""

import os

import pytest

from repro import Database, ExecutionStrategy
from repro.core.strategies import CacheConfig
from repro.workloads import CH_QUERIES, ChBenchmark, ChConfig

#: (label, CacheConfig.delta_memo).
MODES = [
    ("memo-on", True),
    ("memo-off", False),
]

QUERY_NAMES = ["Q3", "Q5"]

_SCALE = int(os.environ.get("BENCH_DELTA_MEMO_SCALE", "2"))
#: Orders appended to the deltas before the timed phase of each query.
_GROW_ORDERS = int(os.environ.get("BENCH_DELTA_MEMO_ORDERS", str(60 * _SCALE)))

_STATE = {}


def get_benchmark(memo: bool) -> ChBenchmark:
    if memo not in _STATE:
        db = Database(cache_config=CacheConfig(delta_memo=memo))
        bench = ChBenchmark(
            db,
            ChConfig(
                warehouses=_SCALE,
                districts_per_warehouse=4,
                customers_per_district=25,
                orders_per_district=60,
                orderlines_per_order=8,
                items=300,
                suppliers=20,
                delta_fraction=0.05,
                seed=77,
                amount_quantum=0.25,
            ),
        )
        bench.load()
        _STATE[memo] = bench
    return _STATE[memo]


CELLS = [(name, mode) for name in QUERY_NAMES for mode in MODES]


@pytest.mark.parametrize(
    "query_name,mode", CELLS, ids=[f"{n}-{m[0]}" for n, m in CELLS]
)
def test_delta_memo_hit_latency(benchmark, figures, query_name, mode):
    label, memo = mode
    bench = get_benchmark(memo)
    db = bench.db
    sql = CH_QUERIES[query_name]

    def run():
        return db.query(sql)

    run()  # warm: admits the entry; memo-on folds and stores the memo
    if memo:
        assert db.last_report.delta_memo_mode in ("full", "incremental")
    else:
        assert db.last_report.delta_memo_mode == "bypass"
        assert db.last_report.delta_memo_reason == "disabled"

    # Append-only growth: the entry stays valid, the compensation grows.
    bench.grow_delta(_GROW_ORDERS)
    result = run()
    if memo:
        assert db.last_report.delta_memo_mode == "incremental"
        assert db.last_report.delta_memo_rows_saved > 0, (
            "incremental hit must skip the covered delta prefix"
        )
    # Both mode databases replay the identical seeded load + growth, so
    # the answers must match bit-for-bit — and match the uncached truth.
    reference = _STATE.setdefault(("rows", query_name), result.rows)
    assert result.rows == reference, f"{query_name} {label} diverged"
    uncached = db.query(sql, strategy=ExecutionStrategy.UNCACHED)
    assert result.rows == uncached.rows

    # Steady state: no new appends, so memo-on rescans nothing while
    # memo-off rescans every delta row on every hit.
    benchmark.pedantic(run, rounds=5, iterations=2)
    if memo:
        assert db.last_report.delta_memo_mode == "incremental"
    elapsed = benchmark.stats.stats.min if benchmark.stats is not None else float("nan")
    delta_rows = sum(bench.delta_counts().values())
    report = figures.report(
        "Delta memo",
        "CH-benCHmark Q3/Q5: cache-hit latency vs. delta size, memo on vs. off",
        "an incremental hit replays the memoized fold and scans only rows "
        "past the per-partition watermarks; results are bit-identical",
        ["query", "mode", "delta_rows", "seconds"],
    )
    report.add_row(query_name, label, delta_rows, elapsed)
