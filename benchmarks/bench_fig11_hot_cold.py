"""Fig. 11 — join strategies with and without hot/cold multi-partitioning.

Paper setup: Header and Item partitioned by age into hot and cold groups at
a 1:3 ratio, with consistent aging declared; aggregate join queries of
varying selectivity (number of aggregated records).  Paper results: the
uncached query is slightly faster when partitioned (reduced scan effort);
the cached query *without* pruning is slower when partitioned (more
compensation subjoins: every combination of hot/cold main/delta); full
pruning — logical across temperatures plus dynamic tid ranges — is superior
in both layouts, up to an order of magnitude.
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.bench import STRATEGY_LABELS
from repro.storage import threshold_aging
from repro.workloads import ErpConfig, ErpWorkload

MAIN_OBJECTS = 1200
DELTA_OBJECTS = 30
# Vary aggregated records through an Amount predicate (Amount ~ U[1, 20]).
SELECTIVITIES = [2, 8, 20]
STRATEGIES = [
    ExecutionStrategy.UNCACHED,
    ExecutionStrategy.CACHED_NO_PRUNING,
    ExecutionStrategy.CACHED_FULL_PRUNING,
]

_STATE = {}


def build(partitioned: bool) -> Database:
    db = Database()
    config = ErpConfig(seed=42, n_categories=20, years=(2012, 2013, 2013, 2014))
    if partitioned:
        workload = ErpWorkload(
            db,
            config,
            header_aging=threshold_aging("FiscalYear", 2014),
            item_aging=threshold_aging("FiscalYear", 2014),
        )
    else:
        workload = ErpWorkload(db, config)
    workload.insert_objects(MAIN_OBJECTS, merge_after=True)
    workload.insert_objects(DELTA_OBJECTS, year=2014)
    # A few corrections of old (cold) items: their new versions land in the
    # cold delta ("the cold delta contains only the updated tuples from the
    # cold main"), so cross-temperature compensation subjoins are non-empty.
    for item_id in range(1, 400, 8):
        db.update("Item", item_id, {"Price": 1.23})
    return db


def get_db(partitioned: bool) -> Database:
    key = "aged" if partitioned else "plain"
    if key not in _STATE:
        _STATE[key] = build(partitioned)
    return _STATE[key]


def query_sql(max_amount: int) -> str:
    return (
        "SELECT I.CategoryID AS Category, SUM(I.Price) AS Profit, COUNT(*) AS N "
        "FROM Header AS H, Item AS I "
        f"WHERE I.HeaderID = H.HeaderID AND I.Amount <= {max_amount} "
        "GROUP BY I.CategoryID"
    )


CELLS = [
    (partitioned, k, strategy)
    for partitioned in (False, True)
    for k in SELECTIVITIES
    for strategy in STRATEGIES
]


@pytest.mark.parametrize(
    "partitioned,max_amount,strategy",
    CELLS,
    ids=[
        f"{'hotcold' if p else 'plain'}-amount{k}-{s.value}" for p, k, s in CELLS
    ],
)
def test_fig11_hot_cold(benchmark, figures, partitioned, max_amount, strategy):
    db = get_db(partitioned)
    query = db.parse(query_sql(max_amount))
    db.query(query, strategy=strategy)  # warm entries
    benchmark.pedantic(
        lambda: db.query(query, strategy=strategy), rounds=3, iterations=1
    )
    elapsed = benchmark.stats.stats.min
    aggregated = sum(
        db.query(query, strategy=ExecutionStrategy.UNCACHED).column_values("N")
    )
    report = figures.report(
        "Fig. 11",
        "strategies with vs without hot/cold partitioning",
        "uncached slightly faster partitioned; cached-without-pruning slower "
        "partitioned (extra subjoins); full pruning superior in both, up to "
        "an order of magnitude",
        ["layout", "aggregated_records", "strategy", "seconds"],
    )
    report.add_row(
        "hot/cold" if partitioned else "flat",
        aggregated,
        STRATEGY_LABELS[strategy],
        elapsed,
    )
