"""Fig. 9 — the four CH-benCHmark queries (Q3, Q5, Q9, Q10) under the four
execution strategies.

Paper setup: CH-benCHmark at scale factor 200 (60 M orderline rows; here a
laptop-scale generator with the same shape), with 5 % of the rows of
orders / neworder / orderline / stock placed in the delta partitions.
Paper results: for aggregate queries joining more than three tables the
cache without pruning is only marginally better than no cache at all
(2^t - 1 compensation subjoins); empty-delta pruning helps a little; full
dynamic pruning accelerates execution by up to an order of magnitude.
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.bench import STRATEGY_LABELS
from repro.workloads import CH_QUERIES, ChBenchmark, ChConfig

STRATEGIES = [
    ExecutionStrategy.UNCACHED,
    ExecutionStrategy.CACHED_NO_PRUNING,
    ExecutionStrategy.CACHED_EMPTY_DELTA,
    ExecutionStrategy.CACHED_FULL_PRUNING,
]

_STATE = {}


def get_ch_database() -> Database:
    if "db" not in _STATE:
        db = Database()
        ChBenchmark(
            db,
            ChConfig(
                warehouses=2,
                districts_per_warehouse=4,
                customers_per_district=25,
                orders_per_district=60,
                orderlines_per_order=8,
                items=300,
                suppliers=20,
                delta_fraction=0.05,
                seed=77,
            ),
        ).load()
        _STATE["db"] = db
        _STATE["queries"] = {name: db.parse(sql) for name, sql in CH_QUERIES.items()}
    return _STATE["db"]


CELLS = [(name, strategy) for name in CH_QUERIES for strategy in STRATEGIES]


@pytest.mark.parametrize(
    "query_name,strategy",
    CELLS,
    ids=[f"{name}-{s.value}" for name, s in CELLS],
)
def test_fig9_chbench_queries(benchmark, figures, query_name, strategy):
    db = get_ch_database()
    query = _STATE["queries"][query_name]
    db.query(query, strategy=strategy)  # warm cache entries
    benchmark.pedantic(
        lambda: db.query(query, strategy=strategy), rounds=3, iterations=1
    )
    elapsed = benchmark.stats.stats.min
    report = figures.report(
        "Fig. 9",
        "CH-benCHmark Q3/Q5/Q9/Q10 under the four strategies",
        "for joins of >3 tables the unpruned cache is only marginally "
        "better than uncached; full pruning up to an order of magnitude "
        "faster",
        ["query", "strategy", "seconds"],
    )
    report.add_row(query_name, STRATEGY_LABELS[strategy], elapsed)
