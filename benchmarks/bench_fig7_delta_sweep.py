"""Fig. 7 — join performance of the four execution strategies as the Item
delta grows (three-table join: Header x Item x ProductCategory).

Paper setup: Item main 330 M rows (here scaled to 10 K), Item delta swept
3 K - 3 M (here 100 - 3000), Header delta one tenth of the Item delta, the
ProductCategory delta empty.  Paper results: for small deltas the cached
aggregate answers an order of magnitude faster than the uncached query;
empty-delta pruning gains ~10 %; full dynamic pruning is on average 4x
faster than the cached query without pruning; all strategies degrade as the
delta grows (the new records must be aggregated regardless).
"""

import pytest

from repro import ExecutionStrategy
from repro.bench import STRATEGY_LABELS
from repro.database import Database
from repro.workloads import ErpConfig, ErpWorkload

MAIN_OBJECTS = 1000  # x10 items/object -> 10 K item rows in the main
DELTA_ITEM_SIZES = [100, 300, 1000, 3000]
STRATEGIES = [
    ExecutionStrategy.UNCACHED,
    ExecutionStrategy.CACHED_NO_PRUNING,
    ExecutionStrategy.CACHED_EMPTY_DELTA,
    ExecutionStrategy.CACHED_FULL_PRUNING,
]

_STATE = {}


def get_environment():
    """Build the scaled ERP dataset once; the delta grows across cells."""
    if "db" not in _STATE:
        db = Database()
        workload = ErpWorkload(db, ErpConfig(seed=21, n_categories=25))
        workload.insert_objects(MAIN_OBJECTS, merge_after=True)
        _STATE["db"] = db
        _STATE["workload"] = workload
        _STATE["query"] = db.parse(workload.profit_and_loss_sql(year=None))
    return _STATE["db"], _STATE["workload"], _STATE["query"]


def ensure_delta_items(db, workload, target: int) -> None:
    delta_rows = db.table("Item").partition("delta").row_count
    while delta_rows < target:
        workload.insert_objects(
            max(1, (target - delta_rows) // workload.config.items_per_header)
        )
        delta_rows = db.table("Item").partition("delta").row_count


CELLS = [
    (size, strategy) for size in DELTA_ITEM_SIZES for strategy in STRATEGIES
]


@pytest.mark.parametrize(
    "delta_size,strategy",
    CELLS,
    ids=[f"delta{size}-{s.value}" for size, s in CELLS],
)
def test_fig7_join_strategies(benchmark, figures, delta_size, strategy):
    db, workload, query = get_environment()
    ensure_delta_items(db, workload, delta_size)
    db.query(query, strategy=strategy)  # warm the cache entry
    benchmark.pedantic(
        lambda: db.query(query, strategy=strategy), rounds=3, iterations=1
    )
    elapsed = benchmark.stats.stats.min
    report = figures.report(
        "Fig. 7",
        "3-way join vs Item-delta size, four strategies",
        "cache ~10x faster than uncached at small deltas; full pruning ~4x "
        "faster than cached-without-pruning; empty-delta pruning ~10% gain",
        ["delta_items", "strategy", "seconds"],
    )
    report.add_row(delta_size, STRATEGY_LABELS[strategy], elapsed)
