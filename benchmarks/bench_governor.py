"""Governor overhead — deadline checks on the CH-benCHmark hit path.

A query with a (generous) deadline carries a :class:`CancelToken` through
the executor, the serial/parallel subjoin folds, and the delta-memo scan;
every boundary calls ``token.check()`` (a clock read only every
``CHECK_STRIDE``-th call).  This benchmark measures what those
cooperative checks cost on cache hits of CH-benCHmark Q3 (4 tables) and
Q5 (7 tables): the same database is timed with no deadline and with a
60-second deadline that never fires.  The two modes are interleaved
round-robin inside one test — cache-hit latency here is ~100 µs, where
separate-cell timings drift by more than the effect being measured — and
best-of-round pairs cancel the drift.  Results are asserted
bit-identical (the token can only abort a query, never change its
answer) and the measured overhead lands in ``BENCH_governor.json``
(target: < 2%; see EXPERIMENTS.md).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import CH_QUERIES, ChBenchmark, ChConfig

QUERY_NAMES = ["Q3", "Q5"]

#: The never-firing deadline used for the gated mode.
GENEROUS_TIMEOUT_MS = 60_000.0

_SCALE = int(os.environ.get("BENCH_GOVERNOR_SCALE", "2"))
_ROUNDS = int(os.environ.get("BENCH_GOVERNOR_ROUNDS", "30"))
_ITERS = 10
_OUT = os.environ.get("BENCH_GOVERNOR_OUT", "BENCH_governor.json")

_STATE = {}


def get_benchmark() -> ChBenchmark:
    if "bench" not in _STATE:
        db = Database()
        bench = ChBenchmark(
            db,
            ChConfig(
                warehouses=_SCALE,
                districts_per_warehouse=4,
                customers_per_district=25,
                orders_per_district=60,
                orderlines_per_order=8,
                items=300,
                suppliers=20,
                delta_fraction=0.05,
                seed=77,
                amount_quantum=0.25,
            ),
        )
        bench.load()
        _STATE["bench"] = bench
    return _STATE["bench"]


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_deadline_check_overhead(figures, query_name):
    db = get_benchmark().db
    sql = CH_QUERIES[query_name]

    def run(timeout_ms):
        return db.query(sql, timeout_ms=timeout_ms)

    # Warm the entry, then pin down correctness: a generous deadline must
    # change nothing about the answer, cached or uncached.
    baseline_rows = run(None).rows
    assert run(GENEROUS_TIMEOUT_MS).rows == baseline_rows
    uncached = db.query(sql, strategy=ExecutionStrategy.UNCACHED)
    assert baseline_rows == uncached.rows

    # Paired, interleaved best-of-N: both modes are measured inside every
    # round (order alternating), so clock drift hits both equally.
    best = {None: float("inf"), GENEROUS_TIMEOUT_MS: float("inf")}
    for round_no in range(_ROUNDS):
        modes = (None, GENEROUS_TIMEOUT_MS)
        if round_no % 2:
            modes = tuple(reversed(modes))
        for timeout_ms in modes:
            started = time.perf_counter()
            for _ in range(_ITERS):
                run(timeout_ms)
            elapsed = (time.perf_counter() - started) / _ITERS
            best[timeout_ms] = min(best[timeout_ms], elapsed)

    base = best[None]
    gated = best[GENEROUS_TIMEOUT_MS]
    _STATE[("seconds", query_name)] = (base, gated)

    report = figures.report(
        "Governor overhead",
        "CH-benCHmark Q3/Q5: cache-hit latency with and without a deadline",
        "cooperative cancellation checks at subjoin/batch boundaries cost "
        "< 2% on the hit path; results are bit-identical",
        ["query", "mode", "seconds"],
    )
    report.add_row(query_name, "no-deadline", base)
    report.add_row(query_name, "deadline-60s", gated)


def test_write_bench_json(figures):
    """Summarize per-query overhead and emit ``BENCH_governor.json``."""
    rows = []
    for query_name in QUERY_NAMES:
        seconds = _STATE.get(("seconds", query_name))
        if seconds is None:
            continue
        base, gated = seconds
        overhead_pct = (gated - base) / base * 100.0
        rows.append(
            {
                "query": query_name,
                "seconds_no_deadline": base,
                "seconds_with_deadline": gated,
                "overhead_pct": overhead_pct,
            }
        )
    payload = {
        "benchmark": "governor_deadline_overhead",
        "scale": _SCALE,
        "rounds": _ROUNDS,
        "iterations": _ITERS,
        "target_overhead_pct": 2.0,
        "rows": rows,
    }
    path = Path(_OUT)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert path.exists()

    report = figures.report(
        "Governor overhead",
        "CH-benCHmark Q3/Q5: cache-hit latency with and without a deadline",
        "cooperative cancellation checks at subjoin/batch boundaries cost "
        "< 2% on the hit path; results are bit-identical",
        ["query", "mode", "seconds"],
    )
    for row in rows:
        report.note(
            f"{row['query']}: deadline overhead {row['overhead_pct']:+.2f}% "
            f"(target < 2%)"
        )
