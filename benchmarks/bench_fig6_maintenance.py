"""Fig. 6 — mixed-workload performance: aggregate cache vs classical
eager/lazy incremental view maintenance, across insert ratios.

Paper result: with growing insert percentage the maintenance overhead of
eager and lazy materialized views grows steeply, while the aggregate cache
(maintained only at merge time, compensated at read time) stays nearly
constant; above roughly 15 % inserts the aggregate cache wins.

Setup mirrors Section 6.1: single-table aggregate statements, a mixed
stream of inserts and reads, no delta merge during the run.
"""

import time

import pytest

from repro import Database
from repro.workloads import (
    AggregateCacheSystem,
    EagerViewSystem,
    LazyViewSystem,
    run_mixed_workload,
)

SQL = (
    "SELECT CategoryID, SUM(Price) AS Revenue, COUNT(*) AS N "
    "FROM Item GROUP BY CategoryID"
)
INITIAL_ROWS = 3000
OPERATIONS = 200
N_CATEGORIES = 20
INSERT_RATIOS = [0.0, 0.25, 0.50, 0.75, 1.0]
SYSTEMS = ["eager_view", "lazy_view", "aggregate_cache"]


def make_database() -> Database:
    db = Database()
    db.create_table(
        "Item",
        [("ItemID", "INT"), ("CategoryID", "INT"), ("Price", "FLOAT")],
        primary_key="ItemID",
    )
    for item_id in range(INITIAL_ROWS):
        db.insert(
            "Item",
            {
                "ItemID": item_id,
                "CategoryID": item_id % N_CATEGORIES,
                "Price": float(item_id % 50) + 0.5,
            },
        )
    db.merge()
    return db


ROWS_PER_INSERT_OP = 10  # one enterprise insert transaction = one business object


def row_stream(start: int):
    """Yields one business object's worth of rows per insert operation."""
    item_id = start
    while True:
        batch = []
        for _ in range(ROWS_PER_INSERT_OP):
            batch.append(
                {
                    "ItemID": item_id,
                    "CategoryID": item_id % N_CATEGORIES,
                    "Price": float(item_id % 50) + 0.5,
                }
            )
            item_id += 1
        yield ("Item", batch)


def make_system(name: str, db: Database):
    if name == "eager_view":
        return EagerViewSystem(db, SQL)
    if name == "lazy_view":
        return LazyViewSystem(db, SQL)
    return AggregateCacheSystem(db, SQL)


def run_workload(system, ratio: float) -> None:
    """One full mixed-workload run on a prepared system."""
    run_mixed_workload(
        system, row_stream(INITIAL_ROWS), OPERATIONS, insert_ratio=ratio, seed=13
    )
    # Every system must serve one final consistent read, so lazy maintenance
    # cannot hide its deferred bill behind a write-only run.
    system.read()


@pytest.mark.parametrize("ratio", INSERT_RATIOS, ids=lambda r: f"ins{int(r * 100):03d}")
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig6_mixed_workload(benchmark, figures, system, ratio):
    def setup():
        db = make_database()
        # The cache/view is warmed before the measured run, matching the
        # paper's steady-state methodology.
        prepared = make_system(system, db)
        prepared.read()
        return (prepared, ratio), {}

    benchmark.pedantic(run_workload, setup=setup, rounds=3, iterations=1)
    report = figures.report(
        "Fig. 6",
        "mixed workload: view maintenance vs aggregate cache",
        "eager/lazy grow with insert ratio; aggregate cache ~constant, "
        "superior above ~15% inserts",
        ["system", "insert_ratio", "seconds"],
    )
    report.add_row(system, ratio, benchmark.stats.stats.min)
