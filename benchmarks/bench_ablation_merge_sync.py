"""Ablation (Section 5.2) — merge synchronization of related tables.

The paper argues that pruning succeeds more often when the merge processes
of related transactional tables are synchronized: after merging only the
Item table (Fig. 5's failure case), matching tuples span Header_delta and
Item_main and the cross subjoin cannot be pruned; after a synchronized
merge both deltas are empty/aligned and every cross subjoin prunes.
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import ErpConfig, ErpWorkload

FULL = ExecutionStrategy.CACHED_FULL_PRUNING


def build(sync: bool):
    db = Database()
    workload = ErpWorkload(db, ErpConfig(seed=9, n_categories=15))
    workload.insert_objects(500, merge_after=True)
    query = db.parse(workload.header_item_sql())
    db.query(query, strategy=FULL)  # entry on the merged mains
    workload.insert_objects(120)  # new business in both deltas
    if sync:
        db.merge()  # synchronized: Header and Item merged together
    else:
        db.merge("Item")  # unsynchronized: Item only (Fig. 5's bad case)
    workload.insert_objects(30)  # fresh activity after the merge
    return db, query


@pytest.mark.parametrize("sync", [True, False], ids=["synchronized", "unsynchronized"])
def test_ablation_merge_synchronization(benchmark, figures, sync):
    db, query = build(sync)
    db.query(query, strategy=FULL)
    benchmark.pedantic(lambda: db.query(query, strategy=FULL), rounds=3, iterations=1)
    elapsed = benchmark.stats.stats.min
    db.query(query, strategy=FULL)
    prune = db.last_report.prune
    report = figures.report(
        "Ablation 5.2",
        "merge synchronization and pruning success",
        "synchronized merges maximize the join-pruning success rate; "
        "unsynchronized merges leave unprunable overlap subjoins",
        ["merge_mode", "subjoins_pruned", "subjoins_evaluated", "seconds"],
    )
    report.add_row(
        "synchronized" if sync else "unsynchronized",
        prune.pruned_total,
        prune.evaluated,
        elapsed,
    )
    if sync:
        # All cross subjoins prunable: only delta x delta survives.
        assert prune.evaluated == 1
    else:
        # The Header_delta x Item_main overlap subjoin must survive.
        assert prune.evaluated >= 2
