"""Shared benchmark infrastructure.

Every benchmark file regenerates one of the paper's figures/tables; the
measured series are appended to a session-wide :class:`FigureCollector`
whose rendered summary is printed at the end of the run (and therefore
lands in ``bench_output.txt``).
"""

import os

import pytest

from repro.bench import FigureCollector

_collector = FigureCollector()


@pytest.fixture(scope="session")
def figures() -> FigureCollector:
    return _collector


def pytest_terminal_summary(terminalreporter):
    rendered = _collector.render_all()
    if rendered:
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)
    # REPRO_METRICS_OUT=path dumps every metric snapshot the benchmarks
    # attached (FigureCollector.attach_metrics) alongside the bench JSON.
    out = os.environ.get("REPRO_METRICS_OUT")
    if out:
        path = _collector.dump_metrics_json(out)
        if path is not None:
            terminalreporter.write_line(f"metrics snapshots written to {path}")
