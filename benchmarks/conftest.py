"""Shared benchmark infrastructure.

Every benchmark file regenerates one of the paper's figures/tables; the
measured series are appended to a session-wide :class:`FigureCollector`
whose rendered summary is printed at the end of the run (and therefore
lands in ``bench_output.txt``).
"""

import pytest

from repro.bench import FigureCollector

_collector = FigureCollector()


@pytest.fixture(scope="session")
def figures() -> FigureCollector:
    return _collector


def pytest_terminal_summary(terminalreporter):
    rendered = _collector.render_all()
    if rendered:
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)
