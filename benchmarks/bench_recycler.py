"""Cross-query subjoin recycling on overlapping CH-benCHmark aggregates.

Three dashboard-style queries share the customer/orders/orderline join core
— same FROM list, same join edges, no extra filters — and differ only in
group-by and aggregate list.  Without the recycler every query joins the
compensation subjoins for itself; with it, the first query of the core
publishes its joined row-index sets and the followers replay them,
re-aggregating into their own grouped shapes.

The benchmark runs the leader/follower pattern with the recycler on and
off (delta memos disabled in **both** configurations, so every execution
pays the full compensation union — the work the recycler shares; with
memos on the two layers compose and the follower's win shrinks to the
suffix), asserts:

* the follower queries are **>= 2x** faster in steady state with
  recycling on,
* results are **bit-identical** (values, Python types, row order) across
  recycler-on / recycler-off / uncached,
* recycler occupancy is visible in ``tracked_bytes`` and is the first
  thing shed under a memory budget,

and emits ``BENCH_recycler.json`` for the CI artifact.

Env knobs:
* ``BENCH_RECYCLER_SCALE`` — dataset scale multiplier (default 2;
  CI smoke sets 1).
* ``BENCH_RECYCLER_OUT`` — JSON output path
  (default ``BENCH_recycler.json``).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import CacheConfig, Database, ExecutionStrategy
from repro.workloads import ChBenchmark, ChConfig

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

_SCALE = max(1, int(os.environ.get("BENCH_RECYCLER_SCALE", "2")))
_OUT = os.environ.get("BENCH_RECYCLER_OUT", "BENCH_recycler.json")

#: The shared join core: identical FROM order, join edges, and filters.
_CORE = (
    "FROM customer c, orders o, orderline ol "
    "WHERE o.o_c_key = c.c_key AND ol.ol_o_key = o.o_key "
)
LEADER = (
    "SELECT o.o_year AS year, SUM(ol.ol_amount) AS revenue "
    + _CORE
    + "GROUP BY o.o_year"
)
FOLLOWERS = {
    "by_state": (
        "SELECT c.c_state AS state, SUM(ol.ol_amount) AS revenue, "
        "COUNT(*) AS n " + _CORE + "GROUP BY c.c_state"
    ),
    "by_nation": (
        "SELECT c.c_nationkey AS nation, SUM(ol.ol_amount) AS revenue "
        + _CORE
        + "GROUP BY c.c_nationkey"
    ),
}

_STATE = {}


def _make_db(recycler_on: bool) -> Database:
    db = Database(
        cache_config=CacheConfig(
            delta_memo=False, subjoin_recycler=recycler_on
        )
    )
    ChBenchmark(
        db,
        ChConfig(
            warehouses=2,
            districts_per_warehouse=3,
            customers_per_district=20 * _SCALE,
            orders_per_district=120 * _SCALE,
            orderlines_per_order=8,
            items=100 * _SCALE,
            suppliers=10,
            delta_fraction=0.5,
            seed=11,
            amount_quantum=0.25,
        ),
    ).load()
    return db


def _typed(rows):
    return [tuple((type(v).__name__, v) for v in row) for row in rows]


def _timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def get_pair():
    if "pair" not in _STATE:
        _STATE["pair"] = (_make_db(True), _make_db(False))
    return _STATE["pair"]


def test_steady_state_follower_speedup(figures):
    db_on, db_off = get_pair()
    # Warm-up: entries exist, the leader has published its subjoins.
    for db in (db_on, db_off):
        db.query(LEADER, strategy=FULL)
        for sql in FOLLOWERS.values():
            db.query(sql, strategy=FULL)
    assert db_on.cache.counters_snapshot()["recycler_stored"] > 0
    assert db_off.cache.recycler is None

    leader_on = _timed(lambda: db_on.query(LEADER, strategy=FULL))
    leader_off = _timed(lambda: db_off.query(LEADER, strategy=FULL))
    report = figures.report(
        "Subjoin recycler",
        "overlapping customer/orders/orderline aggregates, steady state",
        "the leader query publishes its compensation subjoins; followers "
        "replay the joined indices and re-aggregate into their own "
        "group-by shape (delta memos off in both configurations, so the "
        "full compensation union is the measured work)",
        ["query", "role", "recycler_off_s", "recycler_on_s", "speedup"],
    )
    cells = []
    for name, sql in FOLLOWERS.items():
        on_s = _timed(lambda: db_on.query(sql, strategy=FULL))
        off_s = _timed(lambda: db_off.query(sql, strategy=FULL))
        hit_report = db_on.query(sql, strategy=FULL).report
        assert hit_report.recycler_hits > 0, name
        speedup = off_s / on_s
        cells.append(
            {
                "query": name,
                "role": "follower",
                "seconds_recycler_off": off_s,
                "seconds_recycler_on": on_s,
                "speedup": speedup,
                "recycler_hits": hit_report.recycler_hits,
            }
        )
        report.add_row(
            name, "follower", round(off_s, 5), round(on_s, 5),
            round(speedup, 2),
        )
    report.add_row(
        "by_year", "leader", round(leader_off, 5), round(leader_on, 5),
        round(leader_off / leader_on, 2),
    )
    # The acceptance floor: each overlapping follower runs >= 2x faster.
    # As with the other benchmarks, the perf floor only binds at the
    # default scale — CI smoke (scale 1) still checks recycler hits,
    # bit-identity, and accounting, but sub-millisecond sections there
    # make the ratio jitter-bound.
    if _SCALE >= 2:
        for cell in cells:
            assert cell["speedup"] >= 2.0, cell
    _STATE["cells"] = cells
    _STATE["leader"] = {
        "query": "by_year",
        "role": "leader",
        "seconds_recycler_off": leader_off,
        "seconds_recycler_on": leader_on,
        "speedup": leader_off / leader_on,
    }


def test_bit_identity_on_off_uncached():
    db_on, db_off = get_pair()
    for sql in [LEADER, *FOLLOWERS.values()]:
        rows_on = db_on.query(sql, strategy=FULL).rows
        rows_off = db_off.query(sql, strategy=FULL).rows
        truth = db_on.query(sql, strategy=UNCACHED).rows
        assert _typed(rows_on) == _typed(rows_off) == _typed(truth)
    _STATE["bit_identical"] = True


def test_recycler_bytes_tracked_and_shed_first():
    db_on, _db_off = get_pair()
    db_on.query(LEADER, strategy=FULL)
    occupancy = db_on.cache.recycler.nbytes()
    assert occupancy > 0
    tracked = db_on.cache.tracked_bytes()
    assert tracked >= occupancy
    # Recycled subjoins are the cheapest derived state to rebuild: a budget
    # squeeze drops them before any memo, entry, or plan.
    entries_before = db_on.cache.entry_count()
    shed = db_on.cache.shed_to_budget(tracked - 1)
    assert shed["recycler"] >= 1
    assert shed["entry"] == 0
    assert db_on.cache.entry_count() == entries_before
    _STATE["shed"] = {
        "recycler_bytes_before_shed": occupancy,
        "tracked_bytes_before_shed": tracked,
        "shed_counts": shed,
    }


def test_write_bench_json():
    """Emit ``BENCH_recycler.json`` for the CI artifact."""
    cells = _STATE.get("cells")
    assert cells, "no benchmark cells ran before the JSON writer"
    assert _STATE.get("bit_identical")
    if _SCALE >= 2:
        assert all(cell["speedup"] >= 2.0 for cell in cells)
    payload = {
        "benchmark": "recycler",
        "scale": _SCALE,
        "delta_memo": False,
        "rows": sorted(cells, key=lambda c: c["query"]) + [_STATE["leader"]],
        "shed": _STATE.get("shed"),
    }
    path = Path(_OUT)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert path.exists()
