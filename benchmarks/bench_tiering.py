"""Tiered hot/cold storage — resident-memory ceiling and hot-path latency.

The paper's hot/cold multi-partitioning (Section 5.4, Fig. 11) assumes the
cold partitions are rarely touched; the tiered cold store makes that pay:
``age_out()`` demotes cold-group mains to memory-mapped files and lazy
dictionaries, keeping only the per-partition synopsis resident.

This benchmark builds the CH-benCHmark twice with a 1:3 hot/cold split
(``main_years`` 2010-2013, ``hot_year`` 2013) — one database all-resident,
one tiered — and asserts the tier contract:

* **bit identity**: Q3/Q5 return identical rows (values *and* types) on
  both layouts, uncached and cached, serial and parallel;
* **resident ceiling**: after demotion (cold handles released), the aged
  tables' resident bytes are <= ``CEILING_RATIO`` of the all-resident
  baseline — the synopsis is all that stays hot-RAM-resident of the cold
  mains;
* **hot-path latency**: warm cache hits never touch the mapped files
  (compensation scans deltas only), so the tiered hit path stays within a
  few percent of all-resident (recorded; asserted loosely at CI scale,
  < 5% at the documented 10^7-row scale, see EXPERIMENTS.md).

Results land in ``BENCH_tiering.json`` (env knobs ``BENCH_TIERING_SCALE``,
``BENCH_TIERING_ROUNDS``, ``BENCH_TIERING_OUT``).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import CH_QUERIES, ChBenchmark, ChConfig

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

QUERY_NAMES = ["Q3", "Q5"]
AGED_TABLES = ["orders", "orderline"]

#: Resident bytes of the aged tables after demotion, relative to the
#: all-resident baseline.  The documented 10^7-row run lands ~0.28 (hot is
#: a quarter of the data); 0.45 leaves headroom for the synopsis and the
#: small-dictionary overhead that dominates at CI scale.
CEILING_RATIO = 0.45

#: Warm-hit latency ratio asserted at any scale.  The 5 % target from the
#: acceptance criteria binds at the documented scale; CI-scale hits are
#: ~100 us where scheduler noise alone exceeds 5 %.
LATENCY_RATIO_CEILING = 1.5

_SCALE = int(os.environ.get("BENCH_TIERING_SCALE", "2"))
_ROUNDS = int(os.environ.get("BENCH_TIERING_ROUNDS", "30"))
_ITERS = 10
_OUT = os.environ.get("BENCH_TIERING_OUT", "BENCH_tiering.json")

_STATE = {}


def _config() -> ChConfig:
    return ChConfig(
        warehouses=_SCALE,
        districts_per_warehouse=4,
        customers_per_district=25,
        orders_per_district=60,
        orderlines_per_order=8,
        items=300,
        suppliers=20,
        delta_fraction=0.05,
        seed=77,
        amount_quantum=0.25,  # exact partial sums -> bit-identical folds
        main_years=(2010, 2011, 2012, 2013),  # 1:3 hot/cold split
        delta_years=(2014,),
        hot_year=2013,
    )


def get_pair(tmp_path_factory):
    """(all-resident db, tiered db): same data, same seed, one demoted.

    The tiered database also runs with two workers, so the bit-identity
    assertions cover serial-resident vs parallel-tiered in one sweep.
    """
    if "pair" not in _STATE:
        resident = Database()
        ChBenchmark(resident, _config()).load()

        cold_dir = tmp_path_factory.mktemp("coldstore")
        tiered = Database(cold_path=cold_dir, n_workers=2)
        ChBenchmark(tiered, _config()).load()

        _STATE["resident_baseline_bytes"] = sum(
            tiered.table(t).nbytes_resident() for t in AGED_TABLES
        )
        demoted = tiered.age_out()
        assert {t for t, _ in demoted} == set(AGED_TABLES)
        _STATE["pair"] = (resident, tiered)
    return _STATE["pair"]


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_bit_identity_across_layouts(tmp_path_factory, query_name):
    resident, tiered = get_pair(tmp_path_factory)
    sql = CH_QUERIES[query_name]
    for strategy in (UNCACHED, FULL):
        a = resident.query(sql, strategy=strategy)
        b = tiered.query(sql, strategy=strategy)
        assert a.columns == b.columns
        assert a.rows == b.rows
        for row_a, row_b in zip(a.rows, b.rows):
            assert [type(v) for v in row_a] == [type(v) for v in row_b]


def test_resident_memory_ceiling(tmp_path_factory, figures):
    resident, tiered = get_pair(tmp_path_factory)
    # The bit-identity queries above loaded dictionaries and mapped pages;
    # drop them the way the governor's cold shed would.
    from repro.storage.coldstore import release_table

    for name in AGED_TABLES:
        release_table(tiered.table(name))

    baseline = _STATE["resident_baseline_bytes"]
    tiered_resident = sum(
        tiered.table(t).nbytes_resident() for t in AGED_TABLES
    )
    mapped = sum(tiered.table(t).nbytes_mapped() for t in AGED_TABLES)
    ratio = tiered_resident / baseline
    _STATE["memory"] = {
        "baseline_resident_bytes": baseline,
        "tiered_resident_bytes": tiered_resident,
        "tiered_mapped_bytes": mapped,
        "resident_ratio": ratio,
    }
    assert mapped > 0
    assert ratio <= CEILING_RATIO, (
        f"tiered resident bytes {tiered_resident} are {ratio:.2f}x the "
        f"all-resident baseline {baseline} (ceiling {CEILING_RATIO})"
    )
    # Demotion accounting is honest: the all-resident database reports
    # zero mapped bytes.
    assert all(resident.table(t).nbytes_mapped() == 0 for t in AGED_TABLES)

    report = figures.report(
        "Tiered storage",
        "CH-benCHmark 1:3 hot/cold: resident bytes and hot-path latency, "
        "all-resident vs memory-mapped cold mains",
        "demotion keeps only the synopsis resident for cold mains; warm "
        "cache hits never touch the mapped files",
        ["metric", "layout", "value"],
    )
    report.add_row("aged-tables resident bytes", "all-resident", baseline)
    report.add_row("aged-tables resident bytes", "tiered", tiered_resident)
    report.add_row("resident ratio", "tiered/all-resident", round(ratio, 4))


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_hot_path_latency(tmp_path_factory, figures, query_name):
    """Warm-hit latency, paired and interleaved (same protocol as the
    governor bench): both layouts timed inside every round so clock drift
    cancels; best-of-round pairs are compared."""
    resident, tiered = get_pair(tmp_path_factory)
    sql = CH_QUERIES[query_name]
    for db in (resident, tiered):
        db.query(sql, strategy=FULL)  # warm the entries

    best = {"resident": float("inf"), "tiered": float("inf")}
    layouts = {"resident": resident, "tiered": tiered}
    for round_no in range(_ROUNDS):
        order = ("resident", "tiered")
        if round_no % 2:
            order = tuple(reversed(order))
        for label in order:
            db = layouts[label]
            started = time.perf_counter()
            for _ in range(_ITERS):
                db.query(sql, strategy=FULL)
            best[label] = min(
                best[label], (time.perf_counter() - started) / _ITERS
            )

    ratio = best["tiered"] / best["resident"]
    _STATE[("latency", query_name)] = (best["resident"], best["tiered"], ratio)
    assert ratio <= LATENCY_RATIO_CEILING, (
        f"{query_name}: tiered warm hit {best['tiered']:.6f}s vs resident "
        f"{best['resident']:.6f}s ({ratio:.2f}x)"
    )

    report = figures.report(
        "Tiered storage",
        "CH-benCHmark 1:3 hot/cold: resident bytes and hot-path latency, "
        "all-resident vs memory-mapped cold mains",
        "demotion keeps only the synopsis resident for cold mains; warm "
        "cache hits never touch the mapped files",
        ["metric", "layout", "value"],
    )
    report.add_row(f"{query_name} warm hit seconds", "all-resident", best["resident"])
    report.add_row(f"{query_name} warm hit seconds", "tiered", best["tiered"])


def test_write_bench_json(figures):
    rows = []
    for query_name in QUERY_NAMES:
        latency = _STATE.get(("latency", query_name))
        if latency is None:
            continue
        seconds_resident, seconds_tiered, ratio = latency
        rows.append(
            {
                "query": query_name,
                "seconds_resident": seconds_resident,
                "seconds_tiered": seconds_tiered,
                "latency_ratio": ratio,
            }
        )
    payload = {
        "benchmark": "tiered_storage",
        "scale": _SCALE,
        "rounds": _ROUNDS,
        "iterations": _ITERS,
        "ceiling_ratio": CEILING_RATIO,
        "latency_ratio_ceiling": LATENCY_RATIO_CEILING,
        "memory": _STATE.get("memory", {}),
        "rows": rows,
    }
    path = Path(_OUT)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert path.exists()

    report = figures.report(
        "Tiered storage",
        "CH-benCHmark 1:3 hot/cold: resident bytes and hot-path latency, "
        "all-resident vs memory-mapped cold mains",
        "demotion keeps only the synopsis resident for cold mains; warm "
        "cache hits never touch the mapped files",
        ["metric", "layout", "value"],
    )
    memory = _STATE.get("memory")
    if memory:
        report.note(
            f"resident ratio {memory['resident_ratio']:.3f} "
            f"(ceiling {CEILING_RATIO}); "
            f"{memory['tiered_mapped_bytes']} bytes mapped"
        )
    for row in rows:
        report.note(
            f"{row['query']}: warm-hit latency ratio "
            f"{row['latency_ratio']:.3f} (tiered/resident)"
        )
