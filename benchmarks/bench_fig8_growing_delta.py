"""Fig. 8 — join query performance under a continuously growing delta.

Paper setup: starting from empty Header/Item deltas, records are inserted
continuously (with tid lookups) while aggregate join queries run at varying
frequencies; query times are plotted against the Item-delta size reached at
that moment.  Paper results: empty-delta pruning gains little over no
pruning; full pruning outperforms both once deltas have non-trivial size;
uncached/unpruned runtimes show high variance.

Here one benchmark run replays the whole scenario: insert bursts grow the
delta to a series of checkpoints, and at each checkpoint every strategy
answers the Listing-1-style join.
"""

import time

import pytest

from repro import ExecutionStrategy
from repro.bench import STRATEGY_LABELS
from repro.database import Database
from repro.workloads import ErpConfig, ErpWorkload

MAIN_OBJECTS = 800
CHECKPOINTS = [200, 600, 1200, 2000, 2800]
STRATEGIES = [
    ExecutionStrategy.UNCACHED,
    ExecutionStrategy.CACHED_NO_PRUNING,
    ExecutionStrategy.CACHED_EMPTY_DELTA,
    ExecutionStrategy.CACHED_FULL_PRUNING,
]


def run_scenario(report):
    db = Database()
    workload = ErpWorkload(db, ErpConfig(seed=33, n_categories=25))
    workload.insert_objects(MAIN_OBJECTS, merge_after=True)
    query = db.parse(workload.header_item_sql())
    for strategy in STRATEGIES:
        db.query(query, strategy=strategy)  # create entries on empty deltas
    item_delta = db.table("Item").partition("delta")
    for checkpoint in CHECKPOINTS:
        while item_delta.row_count < checkpoint:
            workload.insert_objects(5)
        for strategy in STRATEGIES:
            best = float("inf")
            for _ in range(2):
                started = time.perf_counter()
                db.query(query, strategy=strategy)
                best = min(best, time.perf_counter() - started)
            report.add_row(item_delta.row_count, STRATEGY_LABELS[strategy], best)


def test_fig8_growing_delta(benchmark, figures):
    report = figures.report(
        "Fig. 8",
        "join performance while the delta grows under inserts",
        "full pruning beats no-pruning/empty-delta at non-trivial delta "
        "sizes; unpruned runtimes high and variable",
        ["delta_items", "strategy", "seconds"],
    )
    benchmark.pedantic(run_scenario, args=(report,), rounds=1, iterations=1)
