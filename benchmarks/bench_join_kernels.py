"""Vectorized vs. row-loop join/aggregation kernels on compensation-shaped scans.

The aggregate cache pays for a hit with delta-compensation subjoins: a large
orderline *delta* joined against small dimension *mains* and folded into a
grouped aggregate — exactly the shape of CH-benCHmark Q3/Q5 compensation.
This benchmark times that scan at 10^5 and 10^6 orderline rows under both
kernels (``kernel_override``), asserts the results are **bit-identical**,
and asserts the vectorized speedup floor (>= 10x at 10^6 rows).

Partitions are bulk-built (no per-row insert path) so the measured time is
join + aggregation, not load.  Amounts sit on a 0.25 quantum so float sums
are exact and order-independent, making the bit-identity assertion
meaningful rather than tolerance-based.

Env knobs:
* ``BENCH_JOIN_KERNELS_ROWS`` — orderline rows at the largest scale
  (default 1_000_000; CI smoke sets 20_000).
* ``BENCH_JOIN_KERNELS_OUT`` — JSON output path
  (default ``BENCH_join_kernels.json``).
"""

import json
import os
import random
import time
from pathlib import Path

import numpy as np
import pytest

from repro.query import (
    AggFunc,
    AggregateQuery,
    AggregateSpec,
    Col,
    ComboSpec,
    JoinEdge,
    QueryExecutor,
    TableRef,
)
from repro.query.operators import (
    KERNEL_ROWLOOP,
    KERNEL_VECTORIZED,
    kernel_override,
)
from repro.storage import Catalog, ColumnDef, Partition, Schema, SqlType
from repro.storage.partition import LIVE

_MAX_ROWS = int(os.environ.get("BENCH_JOIN_KERNELS_ROWS", "1000000"))
_OUT = os.environ.get("BENCH_JOIN_KERNELS_OUT", "BENCH_join_kernels.json")

#: Orderline-delta scales measured; the issue's headline number is the
#: largest one.  Deduplicated so a reduced CI run measures one scale once.
SCALES = sorted({min(100_000, _MAX_ROWS), _MAX_ROWS})

SNAPSHOT = 10**9

_STATE = {}


def _bulk_delta(name: str, schema: Schema, columns, n: int) -> Partition:
    """Bulk-build a write-optimized partition (append-order dictionaries)
    without going through the per-row insert path."""
    part = Partition(name, "delta", schema)
    for col_name, values in columns.items():
        frag = part.column(col_name)
        dictionary = frag.dictionary
        codes = np.empty(n, dtype=np.int64)
        encode = dictionary.encode
        for i, value in enumerate(values):
            codes[i] = encode(value)
        frag._codes.extend(codes)
    part._cts.extend(np.full(n, 1, dtype=np.int64))
    part._dts.extend(np.full(n, LIVE, dtype=np.int64))
    return part


def _build_main(name: str, schema: Schema, columns, n: int) -> Partition:
    rows = [{k: columns[k][i] for k in columns} for i in range(n)]
    return Partition.build_main(name, schema, rows, cts=[1] * n, dts=[LIVE] * n)


def _dataset(n_orderlines: int):
    """Orderline delta + orders/customer/supplier mains, CH-Q3/Q5 shaped.

    Returns ``(catalog, parts)``: the catalog registers the schemas so the
    binder can resolve columns, while the combos carry the bulk-built
    partitions directly (the catalog tables themselves stay empty).
    """
    rng = random.Random(1234)
    n_orders = max(n_orderlines // 8, 4)
    n_customers = max(n_orders // 20, 4)
    n_suppliers = 100

    customer_schema = Schema(
        [ColumnDef("c_id", SqlType.INT, nullable=False), ColumnDef("c_state", SqlType.TEXT)],
        primary_key="c_id",
    )
    states = [f"S{i:02d}" for i in range(25)]
    customer = _build_main(
        "customer_main",
        customer_schema,
        {
            "c_id": list(range(n_customers)),
            "c_state": [rng.choice(states) for _ in range(n_customers)],
        },
        n_customers,
    )

    orders_schema = Schema(
        [
            ColumnDef("o_id", SqlType.INT, nullable=False),
            ColumnDef("o_c_id", SqlType.INT),
            ColumnDef("o_entry_d", SqlType.DATE),
        ],
        primary_key="o_id",
    )
    dates = [f"2013-06-{d:02d}" for d in range(1, 31)]
    orders = _build_main(
        "orders_main",
        orders_schema,
        {
            "o_id": list(range(n_orders)),
            "o_c_id": [rng.randrange(n_customers) for _ in range(n_orders)],
            "o_entry_d": [rng.choice(dates) for _ in range(n_orders)],
        },
        n_orders,
    )

    supplier_schema = Schema(
        [ColumnDef("s_id", SqlType.INT, nullable=False), ColumnDef("s_region", SqlType.TEXT)],
        primary_key="s_id",
    )
    supplier = _build_main(
        "supplier_main",
        supplier_schema,
        {
            "s_id": list(range(n_suppliers)),
            "s_region": [f"R{i % 5}" for i in range(n_suppliers)],
        },
        n_suppliers,
    )

    orderline_schema = Schema(
        [
            ColumnDef("ol_o_id", SqlType.INT),
            ColumnDef("ol_supply_id", SqlType.INT),
            ColumnDef("ol_amount", SqlType.FLOAT),
        ]
    )

    def ol_key():
        roll = rng.random()
        if roll < 0.01:
            return None  # NULL join key
        if roll < 0.03:
            return 10**8 + rng.randrange(n_orders)  # dangling key
        return rng.randrange(n_orders)

    orderline = _bulk_delta(
        "orderline_delta",
        orderline_schema,
        {
            "ol_o_id": [ol_key() for _ in range(n_orderlines)],
            "ol_supply_id": [rng.randrange(n_suppliers) for _ in range(n_orderlines)],
            "ol_amount": [rng.randrange(0, 40000) / 4.0 for _ in range(n_orderlines)],
        },
        n_orderlines,
    )
    catalog = Catalog()
    catalog.create_table("orderline", orderline_schema)
    catalog.create_table("orders", orders_schema)
    catalog.create_table("customer", customer_schema)
    catalog.create_table("supplier", supplier_schema)
    parts = {
        "orderline": orderline,
        "orders": orders,
        "customer": customer,
        "supplier": supplier,
    }
    return catalog, parts


def q3_shape() -> AggregateQuery:
    """Orderline ⋈ orders ⋈ customer, revenue by entry date and state."""
    return AggregateQuery(
        tables=[TableRef("orderline", "ol"), TableRef("orders", "o"), TableRef("customer", "c")],
        aggregates=[
            AggregateSpec(AggFunc.SUM, Col("ol_amount", "ol"), "revenue"),
            AggregateSpec(AggFunc.COUNT, None, "n"),
        ],
        group_by=[Col("o_entry_d", "o"), Col("c_state", "c")],
        join_edges=[
            JoinEdge("ol", "ol_o_id", "o", "o_id"),
            JoinEdge("o", "o_c_id", "c", "c_id"),
        ],
    )


def q5_shape() -> AggregateQuery:
    """Q3 plus the supplier dimension, revenue by region and state."""
    return AggregateQuery(
        tables=[
            TableRef("orderline", "ol"),
            TableRef("orders", "o"),
            TableRef("customer", "c"),
            TableRef("supplier", "s"),
        ],
        aggregates=[
            AggregateSpec(AggFunc.SUM, Col("ol_amount", "ol"), "revenue"),
            AggregateSpec(AggFunc.AVG, Col("ol_amount", "ol"), "avg_amount"),
            AggregateSpec(AggFunc.COUNT, None, "n"),
        ],
        group_by=[Col("s_region", "s"), Col("c_state", "c")],
        join_edges=[
            JoinEdge("ol", "ol_o_id", "o", "o_id"),
            JoinEdge("o", "o_c_id", "c", "c_id"),
            JoinEdge("ol", "ol_supply_id", "s", "s_id"),
        ],
    )


SHAPES = {"Q3-shape": q3_shape, "Q5-shape": q5_shape}


def get_dataset(n_rows: int):
    key = ("parts", n_rows)
    if key not in _STATE:
        _STATE[key] = _dataset(n_rows)
    return _STATE[key]


def _timed(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


CELLS = [(shape, n) for shape in SHAPES for n in SCALES]


@pytest.mark.parametrize("shape,n_rows", CELLS, ids=[f"{s}-{n}" for s, n in CELLS])
def test_join_kernel_speedup(benchmark, figures, shape, n_rows):
    catalog, parts = get_dataset(n_rows)
    query = SHAPES[shape]()
    alias_map = {ref.alias: parts[ref.table] for ref in query.tables}
    executor = QueryExecutor(catalog)

    def run_kernel(kernel):
        with kernel_override(kernel):
            combo = ComboSpec(dict(alias_map))
            return executor.execute(query, SNAPSHOT, combos=[combo]).finalize()

    # The row loop is the yardstick: once is enough at 10^6 rows (seconds),
    # twice at smaller scales to shave scheduler noise.
    repeats = 1 if n_rows >= 500_000 else 2
    rowloop_rows, rowloop_s = _timed(lambda: run_kernel(KERNEL_ROWLOOP), repeats)
    vector_rows, vector_s = _timed(lambda: run_kernel(KERNEL_VECTORIZED), max(repeats, 3))

    # Bit-identity: same rows, same order, same value types.
    assert vector_rows == rowloop_rows
    for row_a, row_b in zip(vector_rows, rowloop_rows):
        for va, vb in zip(row_a, row_b):
            assert type(va) is type(vb), (va, vb)
    assert vector_rows, "degenerate benchmark: empty join result"

    speedup = rowloop_s / vector_s if vector_s > 0 else float("inf")
    if n_rows >= 1_000_000:
        assert speedup >= 10.0, f"{shape}@{n_rows}: speedup {speedup:.1f}x < 10x"
    elif n_rows >= 100_000:
        assert speedup >= 3.0, f"{shape}@{n_rows}: speedup {speedup:.1f}x < 3x"

    benchmark.pedantic(lambda: run_kernel(KERNEL_VECTORIZED), rounds=3, iterations=1)

    _STATE[("cell", shape, n_rows)] = {
        "shape": shape,
        "rows": n_rows,
        "groups": len(vector_rows),
        "seconds_rowloop": rowloop_s,
        "seconds_vectorized": vector_s,
        "speedup": speedup,
        "bit_identical": True,
    }
    report = figures.report(
        "Join kernels",
        "Q3/Q5-shaped compensation scans: row-loop vs. code-space kernels",
        "probe codes are bridged between dictionaries and matches expanded "
        "with repeat/prefix-sums; results are bit-identical by assertion",
        ["shape", "rows", "rowloop_s", "vectorized_s", "speedup"],
    )
    report.add_row(shape, n_rows, rowloop_s, vector_s, round(speedup, 1))


def test_write_bench_json():
    """Emit ``BENCH_join_kernels.json`` for the CI artifact."""
    cells = [value for key, value in _STATE.items() if key[0] == "cell"]
    assert cells, "no benchmark cells ran before the JSON writer"
    assert all(cell["bit_identical"] for cell in cells)
    payload = {
        "benchmark": "join_kernels",
        "max_rows": _MAX_ROWS,
        "scales": SCALES,
        "speedup_floor": {"1000000": 10.0, "100000": 3.0},
        "rows": sorted(cells, key=lambda c: (c["shape"], c["rows"])),
    }
    path = Path(_OUT)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert path.exists()
