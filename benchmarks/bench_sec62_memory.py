"""Section 6.2 — memory-consumption overhead of the MD tid columns.

Paper result: the five additional temporal attributes (Header[tidHeader],
Item[tidItem? -> here: tid_Header + tid_ProductCategory], ProductCategory
[tidProductCategory]) cost about +13 % in the delta partitions and +10 % in
the main partitions (mains compress better).

The bench builds the ERP dataset twice — with and without matching
dependencies — and compares the approximate column-store byte sizes.
"""

import pytest

from repro import Database
from repro.workloads import ErpConfig, ErpWorkload


def build(with_mds: bool, merged: bool):
    db = Database()
    workload = ErpWorkload(
        db, ErpConfig(seed=5, n_categories=20), install_mds=with_mds
    )
    workload.insert_objects(150, merge_after=merged)
    return db


def total_bytes(db: Database, kind: str) -> int:
    total = 0
    for table in db.catalog.tables():
        for partition in table.partitions():
            if partition.kind == kind:
                total += partition.nbytes()
    return total


@pytest.mark.parametrize("store", ["delta", "main"])
def test_sec62_memory_overhead(benchmark, figures, store):
    merged = store == "main"

    def measure():
        with_md = build(with_mds=True, merged=merged)
        without_md = build(with_mds=False, merged=merged)
        return total_bytes(with_md, store), total_bytes(without_md, store)

    with_md_bytes, plain_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = (with_md_bytes - plain_bytes) / plain_bytes * 100.0
    report = figures.report(
        "Sec. 6.2",
        "memory overhead of temporal (tid) columns",
        "+13% in delta partitions, +10% in main partitions (better "
        "compression in the main)",
        ["store", "bytes_with_tids", "bytes_without", "overhead_percent"],
    )
    report.add_row(store, with_md_bytes, plain_bytes, round(overhead, 1))
    assert 0.0 < overhead < 40.0
