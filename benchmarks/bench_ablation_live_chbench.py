"""Ablation (intro / Section 1) — the live CH-benCHmark mixed workload.

The paper motivates the aggregate cache with mixed OLTP/OLAP scalability:
"the execution of expensive aggregations that may be done by many hundreds
of users in parallel is problematic".  This bench runs the analytical Q5
*while* TPC-C-style transactions (new-order / payment / delivery) modify
the data, comparing the sustainable analytical throughput (queries per
second) of the uncached engine against the object-aware cached engine.
"""

import time

import pytest

from repro import Database, ExecutionStrategy
from repro.bench import STRATEGY_LABELS
from repro.workloads import CH_QUERIES, ChBenchmark, ChConfig, ChTransactionDriver

STRATEGIES = [
    ExecutionStrategy.UNCACHED,
    ExecutionStrategy.CACHED_FULL_PRUNING,
]
TRANSACTIONS_PER_ROUND = 15
ROUNDS = 4


def build():
    db = Database()
    benchmark = ChBenchmark(
        db,
        ChConfig(
            warehouses=2,
            districts_per_warehouse=4,
            customers_per_district=20,
            orders_per_district=50,
            orderlines_per_order=8,
            items=250,
            suppliers=20,
            seed=31,
        ),
    )
    benchmark.load()
    return db, benchmark


def run_live(db, benchmark, strategy) -> float:
    """Interleave transaction bursts with analytical queries; returns the
    total analytical query time."""
    driver = ChTransactionDriver(benchmark, seed=13)
    query = CH_QUERIES["Q5"]
    db.query(query, strategy=strategy)  # warm
    total = 0.0
    for _round in range(ROUNDS):
        driver.run(TRANSACTIONS_PER_ROUND)
        started = time.perf_counter()
        db.query(query, strategy=strategy)
        total += time.perf_counter() - started
    return total


@pytest.mark.parametrize(
    "strategy", STRATEGIES, ids=[s.value for s in STRATEGIES]
)
def test_ablation_live_chbench(benchmark, figures, strategy):
    state = {}

    def setup():
        state["db"], state["bench"] = build()
        return (state["db"], state["bench"], strategy), {}

    benchmark.pedantic(run_live, setup=setup, rounds=2, iterations=1)
    query_time = benchmark.stats.stats.min
    throughput = ROUNDS / query_time
    report = figures.report(
        "Ablation 1",
        "live CH-benCHmark: analytics under TPC-C transaction load",
        "the aggregate cache sustains far higher analytical throughput "
        "in a mixed workload (the paper's scalability motivation)",
        ["strategy", "analytics_seconds", "queries_per_second"],
    )
    report.add_row(STRATEGY_LABELS[strategy], query_time, round(throughput, 1))
    # Correctness spot check on the final state.
    db = state["db"]
    assert db.query(CH_QUERIES["Q5"], strategy=strategy) == db.query(
        CH_QUERIES["Q5"], strategy=ExecutionStrategy.UNCACHED
    )
