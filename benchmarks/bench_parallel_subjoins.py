"""Parallel subjoin execution — serial vs. sharded compensation joins.

A query over ``t`` partitioned tables decomposes into ``2^t`` independent
subjoins (Section 2.3.1), which is exactly the shape the paper's 64-core
HANA box exploits.  This benchmark runs CH-benCHmark Q3 (4 tables, 16
subjoins) and Q5 (7 tables, 128 subjoins) through the executor serially
and with worker pools of increasing size, in both memo-sharing modes:

* ``shared``  — one lock-striped scan/hash memo for all workers (no
  duplicated work, stripes contend);
* ``private`` — per-worker memos (no contention, scans/builds may repeat
  once per worker).

Results are asserted bit-identical to the serial run — the parallel path
merges per-subjoin partials in combination order, so it performs the same
floating-point operations in the same order.  Speedups require physical
cores; on a single-CPU container the GIL serializes the workers and the
parallel numbers only measure dispatch overhead (recorded as such in
EXPERIMENTS.md).
"""

import os

import pytest

from repro import Database
from repro.query import ParallelConfig
from repro.workloads import CH_QUERIES, ChBenchmark, ChConfig

#: (label, worker count, memo mode); n_workers=1 is the serial baseline.
MODES = [
    ("serial", 1, "shared"),
    ("2w-shared", 2, "shared"),
    ("2w-private", 2, "private"),
    ("4w-shared", 4, "shared"),
    ("4w-private", 4, "private"),
]

#: Q3 joins 4 tables, Q5 joins 7 — the widths the tentpole targets.
QUERY_NAMES = ["Q3", "Q5"]

_SCALE = int(os.environ.get("BENCH_PARALLEL_SCALE", "2"))

_STATE = {}


def get_ch_database() -> Database:
    if "db" not in _STATE:
        db = Database()
        ChBenchmark(
            db,
            ChConfig(
                warehouses=_SCALE,
                districts_per_warehouse=4,
                customers_per_district=25,
                orders_per_district=60,
                orderlines_per_order=8,
                items=300,
                suppliers=20,
                delta_fraction=0.05,
                seed=77,
            ),
        ).load()
        _STATE["db"] = db
        _STATE["queries"] = {
            name: db.executor.bind(db.parse(CH_QUERIES[name]))
            for name in QUERY_NAMES
        }
        _STATE["serial"] = {}
    return _STATE["db"]


CELLS = [(name, mode) for name in QUERY_NAMES for mode in MODES]


@pytest.mark.parametrize(
    "query_name,mode", CELLS, ids=[f"{n}-{m[0]}" for n, m in CELLS]
)
def test_parallel_subjoins(benchmark, figures, query_name, mode):
    label, n_workers, memo = mode
    db = get_ch_database()
    query = _STATE["queries"][query_name]
    snapshot = db.transactions.global_snapshot()
    config = (
        None
        if n_workers == 1
        else ParallelConfig(n_workers=n_workers, min_combos=2, min_rows=0, memo=memo)
    )

    def run():
        return db.executor.execute(query, snapshot, parallel=config)

    grouped = run()  # warm OS caches; also the bit-identity witness
    if n_workers == 1:
        _STATE["serial"][query_name] = grouped.finalize()
    else:
        serial_rows = _STATE["serial"].get(query_name)
        if serial_rows is not None:
            assert grouped.finalize() == serial_rows, (
                f"{query_name} {label}: parallel result diverged from serial"
            )
    benchmark.pedantic(run, rounds=3, iterations=1)
    # stats is None under --benchmark-disable (CI smoke mode).
    elapsed = benchmark.stats.stats.min if benchmark.stats is not None else float("nan")
    report = figures.report(
        "Parallel subjoins",
        "CH-benCHmark Q3/Q5: serial vs. sharded subjoin execution",
        "independent subjoins shard across a worker pool; partials merge "
        "in combination order, so results are bit-identical to serial",
        ["query", "mode", "seconds"],
    )
    report.add_row(query_name, label, elapsed)
    db.executor.close()
