"""Ablation (Sections 3.2 / 5) — temporal-locality violations ("late items").

The tid-range pruning is guaranteed *correct* regardless of the temporal
soft-constraint, but its *success rate* depends on it: items inserted long
after their header overlap the tid ranges of main and delta, keeping the
cross subjoins alive.  This bench sweeps the late-item rate and reports
pruning success and query time — the graceful-degradation story behind the
paper's "if the temporal soft-constraint doesn't hold, the dynamic pruning
will not be possible; in both cases the join pruning will be correct".
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import ErpConfig, ErpWorkload

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
LATE_RATES = [0.0, 0.1, 0.5]


def build(late_rate: float):
    db = Database()
    workload = ErpWorkload(db, ErpConfig(seed=61, n_categories=15))
    workload.insert_objects(400, merge_after=True)
    workload.insert_objects(60)
    # Cross-merge late items: additions to *already merged* business objects
    # (a customer adds products to an old order, Section 3.2).  Their
    # tid_Header values are old, so the Header_main x Item_delta tid ranges
    # overlap and that subjoin becomes unprunable.
    n_late = int(60 * workload.config.items_per_header * late_rate)
    next_iid = 1_000_000
    for k in range(n_late):
        db.insert(
            "Item",
            {
                "ItemID": next_iid + k,
                "HeaderID": (k % 400) + 1,  # a merged header
                "CategoryID": k % 15,
                "FiscalYear": 2013,
                "Amount": 1,
                "Price": 3.5,
            },
        )
    query = db.parse(workload.header_item_sql())
    return db, query


@pytest.mark.parametrize("late_rate", LATE_RATES, ids=lambda r: f"late{int(r*100)}")
def test_ablation_late_items(benchmark, figures, late_rate):
    db, query = build(late_rate)
    db.query(query, strategy=FULL)
    benchmark.pedantic(lambda: db.query(query, strategy=FULL), rounds=3, iterations=1)
    elapsed = benchmark.stats.stats.min
    db.query(query, strategy=FULL)
    prune = db.last_report.prune
    reference = db.query(query, strategy=ExecutionStrategy.UNCACHED)
    cached = db.query(query, strategy=FULL)
    assert cached == reference  # correctness never depends on the soft constraint
    report = figures.report(
        "Ablation 3.2",
        "pruning success under temporal-locality violations",
        "late items reduce pruning success, never correctness",
        ["late_item_rate", "subjoins_pruned", "subjoins_evaluated", "seconds"],
    )
    report.add_row(late_rate, prune.pruned_total, prune.evaluated, elapsed)
    if late_rate == 0.0:
        assert prune.evaluated == 1
    if late_rate >= 0.5:
        assert prune.evaluated >= 2
