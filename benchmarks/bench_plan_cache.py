"""Plan cache — repeated-query throughput with and without cached plans.

The aggregate cache exists because workloads repeat their queries; the
plan cache removes the *other* fixed cost of a repeated statement: parse,
bind, subjoin enumeration, prune decisions, and cost-seeded join-order
selection.  This benchmark runs CH-benCHmark Q3 (4 tables, 16 subjoins)
and Q5 (7 tables, 128 subjoins) through the full ``Database.query`` path
repeatedly — the steady state is all plan-cache hits — against an
identical database with the plan cache disabled (``plan_cache_size=0``),
serially and with a 4-worker subjoin pool.

Results are asserted bit-identical across all four modes: a cached plan
replays the same subjoin list in the same combination order, so caching
(and parallelism) cannot change a single bit of the answer.
"""

import os

import pytest

from repro import Database
from repro.core.strategies import CacheConfig
from repro.query import ParallelConfig
from repro.workloads import CH_QUERIES, ChBenchmark, ChConfig

#: (label, plan cache capacity, worker pool).
MODES = [
    ("serial-nocache", 0, None),
    ("serial-cached", 128, None),
    ("4w-nocache", 0, ParallelConfig(n_workers=4, min_combos=2, min_rows=0)),
    ("4w-cached", 128, ParallelConfig(n_workers=4, min_combos=2, min_rows=0)),
]

QUERY_NAMES = ["Q3", "Q5"]

_SCALE = int(os.environ.get("BENCH_PLAN_CACHE_SCALE", "2"))

_STATE = {}


def get_database(capacity: int, parallel) -> Database:
    key = (capacity, parallel is not None)
    if key not in _STATE:
        db = Database(
            cache_config=CacheConfig(plan_cache_size=capacity), parallel=parallel
        )
        ChBenchmark(
            db,
            ChConfig(
                warehouses=_SCALE,
                districts_per_warehouse=4,
                customers_per_district=25,
                orders_per_district=60,
                orderlines_per_order=8,
                items=300,
                suppliers=20,
                delta_fraction=0.05,
                seed=77,
            ),
        ).load()
        _STATE[key] = db
    return _STATE[key]


CELLS = [(name, mode) for name in QUERY_NAMES for mode in MODES]


@pytest.mark.parametrize(
    "query_name,mode", CELLS, ids=[f"{n}-{m[0]}" for n, m in CELLS]
)
def test_plan_cache_throughput(benchmark, figures, query_name, mode):
    label, capacity, parallel = mode
    db = get_database(capacity, parallel)
    sql = CH_QUERIES[query_name]

    def run():
        return db.query(sql)

    result = run()  # warm: admits the aggregate-cache entry and the plan
    reference = _STATE.setdefault(("rows", query_name), result.rows)
    # Bit-identity across cache on/off and serial/parallel.
    assert result.rows == reference, f"{query_name} {label} diverged"
    if capacity:
        before = db.plan_cache.stats()
        assert run().rows == reference
        after = db.plan_cache.stats()
        assert after["hits"] > before["hits"], "steady state must hit the plan cache"
    else:
        assert len(db.plan_cache) == 0
    benchmark.pedantic(run, rounds=5, iterations=2)
    elapsed = benchmark.stats.stats.min if benchmark.stats is not None else float("nan")
    report = figures.report(
        "Plan cache",
        "CH-benCHmark Q3/Q5: repeated-query latency, plan cache on vs. off",
        "a plan-cache hit skips parse, bind, subjoin enumeration, pruning, "
        "and join-order selection; results are bit-identical in all modes",
        ["query", "mode", "seconds"],
    )
    report.add_row(query_name, label, elapsed)
