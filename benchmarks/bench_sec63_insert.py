"""Section 6.3 — insert overhead of matching-dependency enforcement.

Paper results: inserting an Item row *without* the tidHeader lookup and
without referential-integrity checks takes about 50 % of the time of an
insert with RI checks; the tid look-up alone costs 20 % of the RI check
(rising towards 30 % as the Header table grows), and the two can be
combined into a single primary-key probe — which is exactly how this
engine implements enforcement.

Three modes are measured per Header-table size:

* ``plain``       — no MDs, no RI: the raw insert path;
* ``ri_check``    — a parent-existence probe before the plain insert;
* ``md_enforced`` — full enforcement: one probe serving both the RI check
  and the tid copy (the paper's "combined" design).
"""

import pytest

from repro import Database
from repro.workloads import ErpConfig, ErpWorkload

HEADER_COUNTS = [500, 2000, 8000]
INSERTS = 300


def build(with_mds: bool, n_headers: int):
    db = Database()
    workload = ErpWorkload(
        db,
        ErpConfig(seed=3, n_categories=10, items_per_header=1),
        install_mds=with_mds,
    )
    workload.insert_objects(n_headers, merge_after=True)
    return db


def item_rows(start: int, n_headers: int):
    return [
        {
            "ItemID": 10_000_000 + start + i,
            "HeaderID": (i % n_headers) + 1,
            "CategoryID": i % 10,
            "FiscalYear": 2013,
            "Amount": 1,
            "Price": 9.99,
        }
        for i in range(INSERTS)
    ]


def run_plain(db, rows):
    for row in rows:
        db.insert("Item", row)


def run_ri_check(db, rows):
    header = db.table("Header")
    for row in rows:
        if header.get_row(row["HeaderID"]) is None:  # referential integrity
            raise AssertionError("missing parent")
        db.insert("Item", row)


@pytest.mark.parametrize("n_headers", HEADER_COUNTS, ids=lambda n: f"headers{n}")
@pytest.mark.parametrize("mode", ["plain", "ri_check", "md_enforced"])
def test_sec63_insert_overhead(benchmark, figures, mode, n_headers):
    counter = {"round": 0}

    def setup():
        db = build(with_mds=(mode == "md_enforced"), n_headers=n_headers)
        rows = item_rows(counter["round"] * INSERTS, n_headers)
        counter["round"] += 1
        return (db, rows), {}

    if mode == "ri_check":
        target = run_ri_check
    else:
        target = run_plain
    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)
    per_insert_us = benchmark.stats.stats.min / INSERTS * 1e6
    report = figures.report(
        "Sec. 6.3",
        "per-insert overhead of RI checks and tid lookup",
        "plain insert ~50% of RI-checked insert; tid lookup ~20-30% of the "
        "RI check and combinable with it",
        ["mode", "header_rows", "microseconds_per_insert"],
    )
    report.add_row(mode, n_headers, round(per_insert_us, 1))
