"""Ablation (Section 8, future work — implemented here) — the separate
update-delta partition under mixed insert/update traffic.

Without it, updated rows' old tids land in the single delta partition and
destroy the delta's tid-range freshness: the Header_main x Item_delta
subjoin becomes unprunable for *every* query, even though the fresh insert
business alone would prune.  With the separate update delta, the insert
delta stays prunable and only the (small) update-delta subjoins are
evaluated.
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import ErpConfig

FULL = ExecutionStrategy.CACHED_FULL_PRUNING

SQL = (
    "SELECT i.cid AS cid, SUM(i.price) AS profit, COUNT(*) AS n "
    "FROM header h, item i WHERE h.hid = i.hid GROUP BY i.cid"
)

MAIN_OBJECTS = 1500
UPDATE_BAND = 50  # corrections hit the oldest 50 business objects
FRESH_OBJECTS = 60
ITEMS_PER_OBJECT = 6


def build(separate_update_delta: bool) -> Database:
    db = Database()
    db.create_table(
        "header",
        [("hid", "INT"), ("year", "INT")],
        primary_key="hid",
        separate_update_delta=separate_update_delta,
    )
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("cid", "INT"), ("price", "FLOAT")],
        primary_key="iid",
        separate_update_delta=separate_update_delta,
    )
    db.add_matching_dependency("header", "hid", "item", "hid")
    iid = 0
    for hid in range(MAIN_OBJECTS):
        items = []
        for k in range(ITEMS_PER_OBJECT):
            items.append(
                {"iid": iid, "hid": hid, "cid": iid % 20, "price": float(k + 1)}
            )
            iid += 1
        db.insert_business_object("header", {"hid": hid, "year": 2013}, "item", items)
    db.merge()
    db.query(SQL, strategy=FULL)  # entry on the mains
    # Update traffic: price corrections against the *oldest* objects (a
    # narrow, old tid band).  In a single delta these old tids widen the
    # delta's range across the whole history; segregated, they form a tight
    # update-delta range that predicate pushdown exploits.
    for hid in range(UPDATE_BAND):
        for k in range(3):
            db.update("item", hid * ITEMS_PER_OBJECT + k, {"price": 0.5})
    # Fresh insert business.
    for hid in range(MAIN_OBJECTS, MAIN_OBJECTS + FRESH_OBJECTS):
        items = []
        for k in range(ITEMS_PER_OBJECT):
            items.append(
                {"iid": iid, "hid": hid, "cid": iid % 20, "price": float(k + 1)}
            )
            iid += 1
        db.insert_business_object("header", {"hid": hid, "year": 2014}, "item", items)
    return db


@pytest.mark.parametrize(
    "separate", [False, True], ids=["single_delta", "separate_update_delta"]
)
def test_ablation_update_delta(benchmark, figures, separate):
    db = build(separate)
    db.query(SQL, strategy=FULL)
    benchmark.pedantic(lambda: db.query(SQL, strategy=FULL), rounds=3, iterations=1)
    elapsed = benchmark.stats.stats.min
    db.query(SQL, strategy=FULL)
    prune = db.last_report.prune
    report = figures.report(
        "Ablation 8",
        "separate update-delta (negative delta) under update traffic",
        "future work in the paper: segregating update versions keeps the "
        "insert delta's tid ranges prunable",
        ["layout", "subjoins_pruned", "subjoins_evaluated", "seconds"],
    )
    report.add_row(
        "separate update delta" if separate else "single delta",
        prune.pruned_total,
        prune.evaluated,
        elapsed,
    )
