"""Star-join variant reduction on the wide CH-benCHmark joins.

Delta compensation enumerates ``2^t - 1`` subjoin variants for a
``t``-table join; the star-join reduction pins every provably-delta-free
table to its main partition and enumerates ``2^k - 1`` over the ``k``
tables that can actually contribute delta rows.  This benchmark runs the
wide queries (Q5: 7 tables, Q7: 6, Q8: 7, Q9: 6) with the reduction on
and off, asserts the hard combo collapse (Q7: 63 -> 7 with exactly 3
delta-bearing tables), asserts the two variant sets are **bit-identical**
to each other and to the uncached truth (values, types, and row order),
and times cold-plan and warm-hit executions under both settings.

Amounts sit on a 0.25 quantum so float sums are exact and
order-independent, making the bit-identity assertion meaningful rather
than tolerance-based.

Env knobs:
* ``BENCH_STAR_JOIN_SCALE`` — dataset scale multiplier (default 2;
  CI smoke sets 1).
* ``BENCH_STAR_JOIN_OUT`` — JSON output path
  (default ``BENCH_star_join.json``).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import Database, ExecutionStrategy
from repro.workloads import CH_QUERIES, CH_QUERY_TABLES, ChBenchmark, ChConfig

FULL = ExecutionStrategy.CACHED_FULL_PRUNING
UNCACHED = ExecutionStrategy.UNCACHED

_SCALE = max(1, int(os.environ.get("BENCH_STAR_JOIN_SCALE", "2")))
_OUT = os.environ.get("BENCH_STAR_JOIN_OUT", "BENCH_star_join.json")

#: The wide joins — every one joins >= 6 tables, most of them static
#: dimensions whose deltas stay empty in the generator's steady state.
WIDE_QUERIES = ["Q5", "Q7", "Q8", "Q9"]

#: The issue's hard acceptance pin: Q7 joins 6 tables of which exactly 3
#: (stock, orderline, orders) carry delta rows -> 63 enumerated variants
#: must collapse to 7.
HARD_COLLAPSE = {"Q7": (63, 7)}

_STATE = {}


def get_db() -> Database:
    if "db" not in _STATE:
        db = Database()
        ChBenchmark(
            db,
            ChConfig(
                warehouses=2,
                districts_per_warehouse=3,
                customers_per_district=10 * _SCALE,
                orders_per_district=30 * _SCALE,
                orderlines_per_order=5,
                items=100 * _SCALE,
                suppliers=10,
                delta_fraction=0.05,
                seed=11,
                amount_quantum=0.25,
            ),
        ).load()
        _STATE["db"] = db
    return _STATE["db"]


def _typed(rows):
    return [tuple((type(v).__name__, v) for v in row) for row in rows]


def _timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(db, sql, star_join_tables):
    """Cold-plan and warm-hit timings plus the final prune report."""
    run = lambda: db.query(sql, strategy=FULL, star_join_tables=star_join_tables)
    db.plan_cache.clear()
    cold = _timed(lambda: (db.plan_cache.clear(), run()))
    warm = _timed(run)
    result = run()
    return cold, warm, result


@pytest.mark.parametrize("name", WIDE_QUERIES)
def test_star_join_collapse(figures, name):
    db = get_db()
    sql = CH_QUERIES[name]
    tables = CH_QUERY_TABLES[name]

    cold_red, warm_red, reduced = _measure(db, sql, None)
    report_red = reduced.report.prune
    cold_exh, warm_exh, exhaustive = _measure(db, sql, ())
    report_exh = exhaustive.report.prune

    # The exhaustive run enumerates the full product; the reduced run
    # enumerates 2^k - 1 and accounts for every skipped variant.
    assert report_exh.combos_total == 2**tables - 1
    assert report_exh.excluded_tables == 0
    assert report_red.excluded_tables > 0
    assert report_red.combos_total < report_exh.combos_total
    assert (
        report_red.combos_total + report_red.combos_excluded
        == report_exh.combos_total
    )
    if name in HARD_COLLAPSE:
        full, collapsed = HARD_COLLAPSE[name]
        assert report_exh.combos_total == full
        assert report_red.combos_total == collapsed

    # Bit-identity: values, types, and row order all agree with the
    # uncached truth.
    reference = db.query(sql, strategy=UNCACHED)
    assert _typed(reduced.rows) == _typed(reference.rows)
    assert _typed(exhaustive.rows) == _typed(reference.rows)

    _STATE[("cell", name)] = {
        "query": name,
        "tables": tables,
        "combos_exhaustive": report_exh.combos_total,
        "combos_reduced": report_red.combos_total,
        "combos_excluded": report_red.combos_excluded,
        "excluded_tables": report_red.excluded_tables,
        "seconds_cold_exhaustive": cold_exh,
        "seconds_cold_reduced": cold_red,
        "seconds_warm_exhaustive": warm_exh,
        "seconds_warm_reduced": warm_red,
        "bit_identical": True,
    }
    report = figures.report(
        "Star join",
        "wide CH-benCHmark joins: exhaustive vs star-join-reduced variants",
        "tables with provably empty deltas are pinned to their mains, so "
        "2^t-1 compensation variants collapse to 2^k-1 over the k "
        "delta-bearing tables; results are bit-identical by assertion",
        ["query", "t", "combos_full", "combos_reduced", "cold_full_s",
         "cold_reduced_s", "warm_full_s", "warm_reduced_s"],
    )
    report.add_row(
        name, tables, report_exh.combos_total, report_red.combos_total,
        round(cold_exh, 5), round(cold_red, 5),
        round(warm_exh, 5), round(warm_red, 5),
    )


def test_write_bench_json():
    """Emit ``BENCH_star_join.json`` for the CI artifact."""
    cells = [value for key, value in _STATE.items() if key[0] == "cell"]
    assert cells, "no benchmark cells ran before the JSON writer"
    assert all(cell["bit_identical"] for cell in cells)
    q7 = next(cell for cell in cells if cell["query"] == "Q7")
    assert (q7["combos_exhaustive"], q7["combos_reduced"]) == (63, 7)
    payload = {
        "benchmark": "star_join",
        "scale": _SCALE,
        "hard_collapse": {"Q7": [63, 7]},
        "rows": sorted(cells, key=lambda c: c["query"]),
    }
    path = Path(_OUT)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert path.exists()
