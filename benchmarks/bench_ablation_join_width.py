"""Ablation (Section 2.3) — compensation cost versus number of joined tables.

Delta compensation must evaluate ``2^t - 1`` subjoins for a ``t``-table
join, which is why the paper's Fig. 9 focuses on queries joining more than
three tables.  This bench measures the cached query with and without
pruning for t = 2, 3, 4 over a chained star schema, showing the exponential
subjoin count and that pruning flattens it.
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.bench import STRATEGY_LABELS

STRATEGIES = [
    ExecutionStrategy.CACHED_NO_PRUNING,
    ExecutionStrategy.CACHED_FULL_PRUNING,
]

_STATE = {}


def get_db() -> Database:
    """Chain: grand -> header -> item -> detail, MDs along every edge."""
    if "db" in _STATE:
        return _STATE["db"]
    db = Database()
    db.create_table("grand", [("gid", "INT"), ("region", "TEXT")], primary_key="gid")
    db.create_table(
        "header", [("hid", "INT"), ("gid", "INT"), ("year", "INT")], primary_key="hid"
    )
    db.create_table(
        "item",
        [("iid", "INT"), ("hid", "INT"), ("price", "FLOAT")],
        primary_key="iid",
    )
    db.create_table(
        "detail", [("did", "INT"), ("iid", "INT"), ("note", "TEXT")], primary_key="did"
    )
    db.add_matching_dependency("grand", "gid", "header", "gid")
    db.add_matching_dependency("header", "hid", "item", "hid")
    db.add_matching_dependency("item", "iid", "detail", "iid")
    did = 0
    for gid in range(40):
        txn = db.begin()
        db.insert("grand", {"gid": gid, "region": f"r{gid % 4}"}, txn=txn)
        for h in range(5):
            hid = gid * 5 + h
            db.insert("header", {"hid": hid, "gid": gid, "year": 2013}, txn=txn)
            for i in range(4):
                iid = hid * 4 + i
                db.insert(
                    "item", {"iid": iid, "hid": hid, "price": float(i + 1)}, txn=txn
                )
                for _d in range(2):
                    db.insert(
                        "detail", {"did": did, "iid": iid, "note": "x"}, txn=txn
                    )
                    did += 1
        txn.commit()
    db.merge()
    # Fresh business objects in every delta.
    for gid in range(40, 44):
        txn = db.begin()
        db.insert("grand", {"gid": gid, "region": "rn"}, txn=txn)
        hid = gid * 5
        db.insert("header", {"hid": hid, "gid": gid, "year": 2014}, txn=txn)
        iid = hid * 4
        db.insert("item", {"iid": iid, "hid": hid, "price": 9.0}, txn=txn)
        db.insert("detail", {"did": did, "iid": iid, "note": "y"}, txn=txn)
        did += 1
        txn.commit()
    _STATE["db"] = db
    return db


QUERIES = {
    2: (
        "SELECT h.year AS y, SUM(i.price) AS s FROM header h, item i "
        "WHERE h.hid = i.hid GROUP BY h.year"
    ),
    3: (
        "SELECT g.region AS r, SUM(i.price) AS s FROM grand g, header h, item i "
        "WHERE g.gid = h.gid AND h.hid = i.hid GROUP BY g.region"
    ),
    4: (
        "SELECT g.region AS r, SUM(i.price) AS s, COUNT(*) AS n "
        "FROM grand g, header h, item i, detail d "
        "WHERE g.gid = h.gid AND h.hid = i.hid AND i.iid = d.iid "
        "GROUP BY g.region"
    ),
}

CELLS = [(t, s) for t in QUERIES for s in STRATEGIES]


@pytest.mark.parametrize(
    "tables,strategy", CELLS, ids=[f"t{t}-{s.value}" for t, s in CELLS]
)
def test_ablation_join_width(benchmark, figures, tables, strategy):
    db = get_db()
    query = db.parse(QUERIES[tables])
    db.query(query, strategy=strategy)
    benchmark.pedantic(lambda: db.query(query, strategy=strategy), rounds=3, iterations=1)
    elapsed = benchmark.stats.stats.min
    db.query(query, strategy=strategy)
    prune = db.last_report.prune
    report = figures.report(
        "Ablation 2.3",
        "compensation subjoins vs number of joined tables",
        "2^t - 1 compensation subjoins without pruning; pruning keeps the "
        "evaluated count near-constant",
        ["tables", "strategy", "subjoins_total", "evaluated", "seconds"],
    )
    report.add_row(
        tables, STRATEGY_LABELS[strategy], prune.combos_total, prune.evaluated, elapsed
    )
    assert prune.combos_total == 2**tables - 1
    if strategy is ExecutionStrategy.CACHED_FULL_PRUNING:
        assert prune.evaluated <= tables
