"""Fig. 10 — join predicate pushdown for the unprunable subjoin
Header_delta x Item_main.

Paper setup: the Header delta holds recent headers whose matching items were
already merged into the Item main (the Fig. 5 overlap: "table I has been
merged before H"), so the tid ranges overlap and dynamic pruning correctly
fails.  The subjoin is executed with and without the MD-derived local tid
filters (Section 5.3) for three Item-main sizes and a varying number of
matching records.  Paper result: pushdown accelerates the subjoin up to 4x,
the more the fewer records match relative to the main's size.
"""

import pytest

from repro import Database, ExecutionStrategy
from repro.core import JoinPruner
from repro.query.executor import ComboSpec
from repro.workloads import ErpConfig, ErpWorkload

# (item_main_rows, matching_item_rows) — scaled from the paper's
# 10M/50M/100M mains with 0-2.5M matching records.
CELLS = [
    (5_000, 250),
    (5_000, 1_000),
    (20_000, 250),
    (20_000, 1_000),
    (20_000, 2_500),
    (40_000, 1_000),
    (40_000, 2_500),
]


def build(main_rows: int, matching_rows: int):
    """Old objects fully merged; new objects merged on the Item side only."""
    db = Database()
    workload = ErpWorkload(db, ErpConfig(seed=55, n_categories=20))
    old_objects = (main_rows - matching_rows) // workload.config.items_per_header
    workload.insert_objects(old_objects, merge_after=True)
    new_objects = matching_rows // workload.config.items_per_header
    workload.insert_objects(new_objects)
    db.merge("Item")  # unsynchronized merge: items to main, headers stay in delta
    query = db.executor.bind(db.parse(workload.header_item_sql()))
    assignment = {
        "H": db.table("Header").partition("delta"),
        "I": db.table("Item").partition("main"),
    }
    pruner = JoinPruner(
        query,
        db.cache.matching_dependencies,
        [],
        ExecutionStrategy.CACHED_FULL_PRUNING,
        predicate_pushdown=True,
    )
    reason, pushdown = pruner.check(assignment)
    assert reason is None, "the overlap subjoin must not be prunable"
    assert pushdown, "pushdown filters must be derived"
    return db, query, assignment, pushdown


@pytest.mark.parametrize("use_pushdown", [False, True], ids=["regular", "pushdown"])
@pytest.mark.parametrize(
    "main_rows,matching", CELLS, ids=[f"main{m}-match{k}" for m, k in CELLS]
)
def test_fig10_predicate_pushdown(
    benchmark, figures, main_rows, matching, use_pushdown
):
    key = (main_rows, matching)
    cache = test_fig10_predicate_pushdown.__dict__.setdefault("_envs", {})
    if key not in cache:
        cache[key] = build(main_rows, matching)
    db, query, assignment, pushdown = cache[key]
    combo = ComboSpec(dict(assignment), extra_filters=pushdown if use_pushdown else {})
    snapshot = db.transactions.global_snapshot()

    benchmark.pedantic(
        lambda: db.executor.execute(query, snapshot, combos=[combo]),
        rounds=3,
        iterations=1,
    )
    elapsed = benchmark.stats.stats.min
    report = figures.report(
        "Fig. 10",
        "Header_delta x Item_main subjoin: regular vs predicate pushdown",
        "pushdown accelerates the unprunable subjoin up to 4x; benefit "
        "grows as matching records shrink relative to the main size",
        ["item_main_rows", "matching_rows", "mode", "seconds"],
    )
    report.add_row(
        main_rows, matching, "pushdown" if use_pushdown else "regular", elapsed
    )
