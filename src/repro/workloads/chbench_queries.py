"""The CH-benCHmark analytical queries: the paper's Fig. 9 four, plus
two wide star-join variants.

Q3, Q5, Q9, and Q10 were selected by the paper because they are fully
supported by the aggregate cache and join more than three tables.  Q7 and
Q8 (adapted from the CH-benCHmark's trade-volume and market-share
queries) join 6 and 7 tables and exist to exercise the star-join variant
reduction: most of their tables are static dimensions with empty deltas,
so compensation enumeration collapses from 2^t-1 to 2^k-1.  The SQL
below follows the CH-benCHmark formulations adapted to this repository's
dialect and surrogate-key schema (see ``chbench.py``):

* composite TPC-C keys -> surrogate key equi-joins,
* ``LIKE`` prefix filters -> equality filters on the generated categorical
  columns,
* ``EXTRACT(YEAR ...)`` -> the materialized ``o_year`` column.

Each query remains a 4-to-6-table join with SUM/COUNT aggregates, which is
the property the experiment measures (compensation-subjoin explosion and
its pruning).
"""

from __future__ import annotations

from typing import Dict

# Q3: unshipped-order revenue by order, for customers of one state.
Q3 = """
SELECT o.o_key AS o_key, o.o_entry_d AS entry_d, SUM(ol.ol_amount) AS revenue
FROM customer c, orders o, neworder n, orderline ol
WHERE o.o_c_key = c.c_key
  AND n.no_o_key = o.o_key
  AND ol.ol_o_key = o.o_key
  AND c.c_state = 'CA'
GROUP BY o.o_key, o.o_entry_d
ORDER BY revenue DESC
"""

# Q5: local-supplier revenue per nation within one region.
Q5 = """
SELECT na.n_name AS nation, SUM(ol.ol_amount) AS revenue
FROM customer c, orders o, orderline ol, stock s, supplier su, nation na, region r
WHERE o.o_c_key = c.c_key
  AND ol.ol_o_key = o.o_key
  AND ol.ol_s_key = s.s_key
  AND s.s_su_suppkey = su.su_suppkey
  AND su.su_nationkey = na.n_nationkey
  AND na.n_regionkey = r.r_regionkey
  AND r.r_name = 'EUROPE'
GROUP BY na.n_name
ORDER BY revenue DESC
"""

# Q9: profit per nation and year for one product category.
Q9 = """
SELECT na.n_name AS nation, o.o_year AS year, SUM(ol.ol_amount) AS profit
FROM item i, stock s, supplier su, orderline ol, orders o, nation na
WHERE ol.ol_i_id = i.i_id
  AND ol.ol_s_key = s.s_key
  AND s.s_su_suppkey = su.su_suppkey
  AND su.su_nationkey = na.n_nationkey
  AND ol.ol_o_key = o.o_key
  AND i.i_category = 'premium'
GROUP BY na.n_name, o.o_year
ORDER BY nation, year DESC
"""

# Q10: returned-item reporting: revenue per customer and nation.
Q10 = """
SELECT c.c_key AS c_key, c.c_last AS c_last, na.n_name AS nation,
       SUM(ol.ol_amount) AS revenue
FROM customer c, orders o, orderline ol, nation na
WHERE o.o_c_key = c.c_key
  AND ol.ol_o_key = o.o_key
  AND c.c_nationkey = na.n_nationkey
  AND o.o_year >= 2013
GROUP BY c.c_key, c.c_last, na.n_name
ORDER BY revenue DESC
"""

# Q7: bi-lateral trade volume — revenue shipped by suppliers of one
# nation, split by supplier nation and customer state.  Six tables of
# which only stock/orderline/orders carry delta rows in the generator's
# steady state: the star-join reduction's showcase (2^6-1 = 63 variants
# collapse to 2^3-1 = 7).
Q7 = """
SELECT su.su_nationkey AS supp_nation, c.c_state AS cust_state,
       SUM(ol.ol_amount) AS revenue
FROM supplier su, stock s, orderline ol, orders o, customer c, nation na
WHERE ol.ol_s_key = s.s_key
  AND s.s_su_suppkey = su.su_suppkey
  AND su.su_nationkey = na.n_nationkey
  AND ol.ol_o_key = o.o_key
  AND o.o_c_key = c.c_key
  AND na.n_name = 'GERMANY'
GROUP BY su.su_nationkey, c.c_state
ORDER BY revenue DESC
"""

# Q8: market share — yearly revenue for one product category sold to
# customers of one region.  The widest join in the suite (7 tables,
# 2^7-1 = 127 variants, of which 2^4-1 = 15 survive the reduction).
Q8 = """
SELECT o.o_year AS year, SUM(ol.ol_amount) AS revenue
FROM item i, stock s, orderline ol, orders o, customer c, nation na, region r
WHERE ol.ol_i_id = i.i_id
  AND ol.ol_s_key = s.s_key
  AND ol.ol_o_key = o.o_key
  AND o.o_c_key = c.c_key
  AND c.c_nationkey = na.n_nationkey
  AND na.n_regionkey = r.r_regionkey
  AND r.r_name = 'EUROPE'
  AND i.i_category = 'premium'
GROUP BY o.o_year
ORDER BY year
"""

CH_QUERIES: Dict[str, str] = {
    "Q3": Q3,
    "Q5": Q5,
    "Q7": Q7,
    "Q8": Q8,
    "Q9": Q9,
    "Q10": Q10,
}

# Tables joined per query — Fig. 9's point is that all join > 3 tables.
CH_QUERY_TABLES: Dict[str, int] = {
    "Q3": 4,
    "Q5": 7,
    "Q7": 6,
    "Q8": 7,
    "Q9": 6,
    "Q10": 4,
}
