"""Workload traces: record DML + merges, replay them elsewhere.

The paper's ERP benchmark replays customer inserts "by using the timestamps
in the base data"; this module provides the generic machinery: a
:class:`TraceRecorder` attached to a live database captures every insert,
update, delete, and merge as one JSON line, and a :class:`TraceReplayer`
applies a trace to another database with the same schema — reproducing the
exact partition topology (what is in which delta when) that the pruning
experiments depend on.

The trace records *state changes* only; queries are read-only and do not
belong in it.  Schemas are not recorded either — replay targets are created
by the same application code that created the original.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ReproError
from ..storage.merge import MergeEvent


class TraceRecorder:
    """Write/merge listener serializing operations to a JSONL file."""

    def __init__(self, db, path):
        self._db = db
        self._path = Path(path)
        self._handle = self._path.open("w")
        self.operations = 0
        db.register_write_listener(self)
        db.register_merge_listener(self)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the database and flush the trace file."""
        self._db.unregister_write_listener(self)
        self._db.unregister_merge_listener(self)
        self._handle.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _emit(self, record: Dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self.operations += 1

    # ------------------------------------------------------------------
    # write-listener protocol
    # ------------------------------------------------------------------
    def on_insert(self, table: str, row: Dict[str, object], tid: int) -> None:
        """Record an insert (business columns only; tids are re-stamped on replay)."""
        business = {
            name: row[name]
            for name in self._db.table(table).schema.business_column_names()
        }
        self._emit({"op": "insert", "table": table, "row": business})

    def on_update(self, table: str, old_row, new_row, tid: int) -> None:
        """Record an update as (pk, changed business columns)."""
        schema = self._db.table(table).schema
        pk = schema.primary_key
        if pk is None:
            raise ReproError(f"cannot trace updates on keyless table {table!r}")
        changes = {
            name: new_row[name]
            for name in schema.business_column_names()
            if new_row[name] != old_row[name]
        }
        self._emit(
            {"op": "update", "table": table, "pk": old_row[pk], "changes": changes}
        )

    def on_delete(self, table: str, old_row, tid: int) -> None:
        """Record a delete by primary key."""
        pk = self._db.table(table).schema.primary_key
        if pk is None:
            raise ReproError(f"cannot trace deletes on keyless table {table!r}")
        self._emit({"op": "delete", "table": table, "pk": old_row[pk]})

    # ------------------------------------------------------------------
    # merge-listener protocol (one trace record per merged table)
    # ------------------------------------------------------------------
    def before_merge(self, event: MergeEvent) -> None:
        """Merge-listener hook (state captured after the merge instead)."""
        return None

    def after_merge(self, event: MergeEvent) -> None:
        """Record a completed group merge."""
        key = (event.table.name, event.group_name)
        self._emit(
            {
                "op": "merge",
                "table": event.table.name,
                "group": event.group_name,
                "keep_history": event.keep_history,
            }
        )


class TraceReplayer:
    """Applies a recorded trace to a database with the same schema."""

    def __init__(self, db):
        self._db = db

    def replay(self, path) -> Dict[str, int]:
        """Apply every operation in file order; returns per-op counts."""
        counts: Dict[str, int] = {"insert": 0, "update": 0, "delete": 0, "merge": 0}
        merged_groups_this_round: set = set()
        with Path(path).open() as handle:
            for line_no, line in enumerate(handle, start=1):
                record = json.loads(line)
                op = record.get("op")
                if op == "insert":
                    self._db.insert(record["table"], record["row"])
                elif op == "update":
                    self._db.update(record["table"], record["pk"], record["changes"])
                elif op == "delete":
                    self._db.delete(record["table"], record["pk"])
                elif op == "merge":
                    group = record["group"]
                    self._db.merge(
                        record["table"],
                        group_name=None if group == "default" else group,
                        keep_history=record["keep_history"],
                    )
                else:
                    raise ReproError(
                        f"unknown trace operation {op!r} at line {line_no}"
                    )
                counts[op] += 1
        return counts
