"""The ERP benchmark: schema, data generator, and query family.

Models the financial/managerial-accounting workload of the paper's second
benchmark (Section 6): a ``Header`` table, an ``Item`` table roughly ten
times larger, and a small, static ``ProductCategory`` dimension (the paper's
production dataset had 35 M headers, 330 M items, and < 2000 categories —
we keep the 1:10:tiny shape at laptop scale).  Business objects (one header
plus its items) are inserted in a single transaction, which is the temporal
locality the matching dependencies exploit; a configurable *late-item rate*
violates that locality on purpose (Section 3.2: "items may be added to a
header at a later point in time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..database import Database
from ..storage.table import AgingRule
from .rng import iso_date, make_rng

LANGUAGES = ("ENG", "GER", "FRA")
DOC_TYPES = ("invoice", "credit_memo", "goods_movement", "journal")


@dataclass
class ErpConfig:
    """Shape of the generated ERP dataset."""

    n_categories: int = 20
    items_per_header: int = 10  # the paper's ~1:10 header:item ratio
    years: Tuple[int, ...] = (2012, 2013, 2014)
    price_range: Tuple[float, float] = (1.0, 500.0)
    late_item_rate: float = 0.0  # fraction of items inserted out-of-object
    seed: int = 7


class ErpWorkload:
    """Creates the schema, generates business objects, and builds queries."""

    def __init__(self, db: Database, config: Optional[ErpConfig] = None,
                 header_aging: Optional[AgingRule] = None,
                 item_aging: Optional[AgingRule] = None,
                 install_mds: bool = True):
        self.db = db
        self.config = config if config is not None else ErpConfig()
        self._rng = make_rng(self.config.seed)
        self._next_header_id = 1
        self._next_item_id = 1
        self._categories_loaded = False
        self._create_schema(header_aging, item_aging, install_mds)

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def _create_schema(self, header_aging, item_aging, install_mds: bool = True) -> None:
        self.db.create_table(
            "ProductCategory",
            [("CategoryID", "INT"), ("Name", "TEXT"), ("Language", "TEXT")],
            primary_key="CategoryID",
        )
        self.db.create_table(
            "Header",
            [
                ("HeaderID", "INT"),
                ("FiscalYear", "INT"),
                ("DocType", "TEXT"),
                ("PostingDate", "DATE"),
            ],
            primary_key="HeaderID",
            aging_rule=header_aging,
        )
        self.db.create_table(
            "Item",
            [
                ("ItemID", "INT"),
                ("HeaderID", "INT"),
                ("CategoryID", "INT"),
                ("FiscalYear", "INT"),
                ("Amount", "INT"),
                ("Price", "FLOAT"),
            ],
            primary_key="ItemID",
            aging_rule=item_aging,
        )
        if install_mds:
            self.db.add_matching_dependency("Header", "HeaderID", "Item", "HeaderID")
            self.db.add_matching_dependency(
                "ProductCategory", "CategoryID", "Item", "CategoryID"
            )
        if header_aging is not None and item_aging is not None:
            self.db.declare_consistent_aging("Header", "Item")

    # ------------------------------------------------------------------
    # data generation
    # ------------------------------------------------------------------
    def load_categories(self) -> int:
        """Insert the static dimension rows (idempotent)."""
        if self._categories_loaded:
            return 0
        for cid in range(self.config.n_categories):
            self.db.insert(
                "ProductCategory",
                {
                    "CategoryID": cid,
                    "Name": f"category-{cid:03d}",
                    "Language": LANGUAGES[cid % len(LANGUAGES)],
                },
            )
        self._categories_loaded = True
        return self.config.n_categories

    def _make_object(self, year: int) -> Tuple[Dict, List[Dict]]:
        config = self.config
        rng = self._rng
        hid = self._next_header_id
        self._next_header_id += 1
        header = {
            "HeaderID": hid,
            "FiscalYear": year,
            "DocType": rng.choice(DOC_TYPES),
            "PostingDate": iso_date(rng, year),
        }
        items = []
        for _ in range(config.items_per_header):
            items.append(
                {
                    "ItemID": self._next_item_id,
                    "HeaderID": hid,
                    "CategoryID": rng.randrange(config.n_categories),
                    "FiscalYear": year,
                    "Amount": rng.randint(1, 20),
                    "Price": round(rng.uniform(*config.price_range), 2),
                }
            )
            self._next_item_id += 1
        return header, items

    def insert_objects(
        self,
        count: int,
        year: Optional[int] = None,
        merge_after: bool = False,
    ) -> Tuple[int, int]:
        """Insert ``count`` business objects; returns (headers, items).

        A fraction ``late_item_rate`` of items is withheld from the object
        transaction and inserted afterwards in separate transactions,
        modelling the late-item pattern that defeats tid-range pruning but
        must never break correctness.
        """
        self.load_categories()
        rng = self._rng
        late_items: List[Dict] = []
        items_inserted = 0
        for _ in range(count):
            chosen_year = year if year is not None else rng.choice(self.config.years)
            header, items = self._make_object(chosen_year)
            in_object = [
                item for item in items if rng.random() >= self.config.late_item_rate
            ]
            late_items.extend(item for item in items if item not in in_object)
            self.db.insert_business_object("Header", header, "Item", in_object)
            items_inserted += len(in_object)
        for item in late_items:
            self.db.insert("Item", item)
            items_inserted += 1
        if merge_after:
            self.db.merge()
        return count, items_inserted

    def object_stream(self, year: Optional[int] = None) -> Iterator[Tuple[Dict, List[Dict]]]:
        """Endless stream of (header, items) pairs for mixed workloads."""
        while True:
            chosen_year = (
                year if year is not None else self._rng.choice(self.config.years)
            )
            yield self._make_object(chosen_year)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @staticmethod
    def profit_and_loss_sql(
        year: Optional[int] = 2013, language: str = "ENG"
    ) -> str:
        """The paper's Listing-1 query: profit per product category."""
        filters = [f"D.Language = '{language}'"]
        if year is not None:
            filters.append(f"H.FiscalYear = {year}")
        where = " AND ".join(
            ["I.HeaderID = H.HeaderID", "I.CategoryID = D.CategoryID"] + filters
        )
        return (
            "SELECT D.Name AS Category, SUM(I.Price) AS Profit "
            "FROM Header AS H, Item AS I, ProductCategory AS D "
            f"WHERE {where} GROUP BY D.Name"
        )

    @staticmethod
    def header_item_sql(year: Optional[int] = None) -> str:
        """Two-table header/item rollup (the Fig. 5/7 join shape)."""
        where = "I.HeaderID = H.HeaderID"
        if year is not None:
            where += f" AND H.FiscalYear = {year}"
        return (
            "SELECT I.CategoryID AS Category, SUM(I.Price) AS Profit, "
            "COUNT(*) AS N "
            f"FROM Header AS H, Item AS I WHERE {where} GROUP BY I.CategoryID"
        )

    @staticmethod
    def single_table_sql() -> str:
        """Single-table rollup used by the Fig. 6 maintenance experiment."""
        return (
            "SELECT CategoryID, SUM(Price) AS Revenue, COUNT(*) AS N, "
            "AVG(Price) AS AvgPrice FROM Item GROUP BY CategoryID"
        )

    @staticmethod
    def doc_type_sql(year: int = 2013) -> str:
        """Alternate analysis dimension: profit per document type."""
        return (
            "SELECT H.DocType AS DocType, SUM(I.Price) AS Profit "
            "FROM Header AS H, Item AS I "
            f"WHERE I.HeaderID = H.HeaderID AND H.FiscalYear = {year} "
            "GROUP BY H.DocType"
        )
