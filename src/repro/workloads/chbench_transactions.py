"""TPC-C-style transactions over the CH-benCHmark schema.

The real CH-benCHmark runs the analytical queries *while* TPC-C business
transactions modify the data.  This driver provides the three transaction
types that matter for the delta-main engine's behaviour:

* ``new_order``  — insert an order, its orderlines, and a neworder entry in
  one transaction (the business-object insert pattern: temporal locality
  holds, so the resulting delta rows stay prunable);
* ``payment``    — update a customer's balance (a main invalidation: main
  compensation / maintenance territory);
* ``delivery``   — take the oldest undelivered order: delete its neworder
  row, stamp the carrier, and set the delivery date on its orderlines
  (a burst of updates and one delete).

``run(n)`` executes a weighted mix modelled on the TPC-C transaction blend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..database import Database
from .chbench import ChBenchmark
from .rng import iso_date, make_rng


@dataclass
class TransactionCounts:
    """How many of each transaction type a ``run`` executed."""

    new_order: int = 0
    payment: int = 0
    delivery: int = 0

    @property
    def total(self) -> int:
        """Total transactions executed."""
        return self.new_order + self.payment + self.delivery


class ChTransactionDriver:
    """Executes TPC-C-style transactions against a loaded ChBenchmark."""

    def __init__(self, benchmark: ChBenchmark, seed: int = 1):
        self.db: Database = benchmark.db
        self.benchmark = benchmark
        self._rng = make_rng(seed)
        self.counts = TransactionCounts()

    # ------------------------------------------------------------------
    def new_order(self, year: int = 2014) -> int:
        """One NEW-ORDER transaction; returns the order's surrogate key."""
        db = self.db
        bench = self.benchmark
        rng = self._rng
        config = bench.config
        o_key = bench._next["orders"]
        bench._next["orders"] += 1
        warehouse = rng.randint(1, config.warehouses)
        txn = db.begin()
        db.insert(
            "orders",
            {
                "o_key": o_key,
                "o_w_id": warehouse,
                "o_d_id": rng.randint(1, config.districts_per_warehouse),
                "o_id": o_key,
                "o_c_key": rng.choice(bench._customer_keys),
                "o_entry_d": iso_date(rng, year),
                "o_year": year,
                "o_carrier_id": None,
            },
            txn=txn,
        )
        no_key = bench._next["neworder"]
        bench._next["neworder"] += 1
        db.insert("neworder", {"no_key": no_key, "no_o_key": o_key}, txn=txn)
        for _line in range(config.orderlines_per_order):
            i_id = rng.choice(bench._item_keys)
            ol_key = bench._next["orderline"]
            bench._next["orderline"] += 1
            db.insert(
                "orderline",
                {
                    "ol_key": ol_key,
                    "ol_o_key": o_key,
                    "ol_i_id": i_id,
                    "ol_s_key": bench._stock_key_by_item_wh[(i_id, warehouse)],
                    "ol_quantity": rng.randint(1, 10),
                    "ol_amount": round(rng.uniform(10.0, 500.0), 2),
                    "ol_delivery_d": None,
                },
                txn=txn,
            )
        txn.commit()
        self.counts.new_order += 1
        return o_key

    def payment(self) -> Optional[int]:
        """One PAYMENT transaction; returns the paid customer key."""
        bench = self.benchmark
        if not bench._customer_keys:
            return None
        c_key = self._rng.choice(bench._customer_keys)
        row = self.db.table("customer").get_row(c_key)
        amount = round(self._rng.uniform(1.0, 5000.0), 2)
        self.db.update(
            "customer", c_key, {"c_balance": row["c_balance"] - amount}
        )
        self.counts.payment += 1
        return c_key

    def delivery(self) -> Optional[int]:
        """One DELIVERY transaction; returns the delivered order key, or
        None if no undelivered orders remain."""
        db = self.db
        target = self._oldest_neworder()
        if target is None:
            return None
        no_key, o_key = target
        txn = db.begin()
        db.delete("neworder", no_key, txn=txn)
        db.update(
            "orders",
            o_key,
            {"o_carrier_id": self._rng.randint(1, 10)},
            txn=txn,
        )
        for ol_key in self._orderlines_of(o_key):
            db.update(
                "orderline", ol_key, {"ol_delivery_d": iso_date(self._rng, 2014)},
                txn=txn,
            )
        txn.commit()
        self.counts.delivery += 1
        return o_key

    # ------------------------------------------------------------------
    def run(self, transactions: int) -> TransactionCounts:
        """Execute a TPC-C-flavoured weighted mix of transactions."""
        for _ in range(transactions):
            draw = self._rng.random()
            if draw < 0.45:
                self.new_order()
            elif draw < 0.88:
                self.payment()
            else:
                if self.delivery() is None:
                    self.new_order()
        return self.counts

    # ------------------------------------------------------------------
    def _oldest_neworder(self) -> Optional[tuple]:
        """The smallest live (no_key, no_o_key) pair, scanning visibly."""
        table = self.db.table("neworder")
        snapshot = self.db.transactions.global_snapshot()
        best = None
        for partition in table.partitions():
            keys = partition.column("no_key")
            orders = partition.column("no_o_key")
            for row in partition.visible_rows(snapshot):
                candidate = (keys.value_at(int(row)), orders.value_at(int(row)))
                if best is None or candidate[0] < best[0]:
                    best = candidate
        return best

    def _orderlines_of(self, o_key: int) -> List[int]:
        table = self.db.table("orderline")
        snapshot = self.db.transactions.global_snapshot()
        found: List[int] = []
        for partition in table.partitions():
            mask = partition.column("ol_o_key").equality_mask(o_key)
            visible = partition.visible_mask(snapshot)
            keys = partition.column("ol_key")
            import numpy as np

            for row in np.flatnonzero(mask & visible):
                found.append(keys.value_at(int(row)))
        return found
