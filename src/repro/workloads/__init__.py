"""Workload generators and drivers for the paper's experiments."""

from .chbench import ChBenchmark, ChConfig
from .chbench_transactions import ChTransactionDriver, TransactionCounts
from .chbench_queries import CH_QUERIES, CH_QUERY_TABLES, Q3, Q5, Q9, Q10
from .erp import ErpConfig, ErpWorkload
from .mixed import (
    AggregateCacheSystem,
    EagerViewSystem,
    LazyViewSystem,
    MixedWorkloadResult,
    UncachedSystem,
    run_mixed_workload,
)
from .rng import iso_date, make_rng, tpcc_last_name
from .trace import TraceRecorder, TraceReplayer

__all__ = [
    "AggregateCacheSystem",
    "CH_QUERIES",
    "CH_QUERY_TABLES",
    "ChBenchmark",
    "ChConfig",
    "ChTransactionDriver",
    "TransactionCounts",
    "EagerViewSystem",
    "ErpConfig",
    "ErpWorkload",
    "LazyViewSystem",
    "MixedWorkloadResult",
    "Q10",
    "Q3",
    "Q5",
    "Q9",
    "TraceRecorder",
    "TraceReplayer",
    "UncachedSystem",
    "iso_date",
    "make_rng",
    "run_mixed_workload",
    "tpcc_last_name",
]
