"""Mixed insert/aggregate workload driver (Fig. 6 and Fig. 8).

Runs an interleaved stream of insert and aggregate-read operations against
one of three "systems" — eager materialized view, lazy materialized view,
or the aggregate cache — and accounts insert-side and read-side time
separately, which is exactly the comparison of Section 6.1: classical view
maintenance pays on the write (eager) or at read-after-write (lazy), the
aggregate cache pays a bounded delta-compensation cost per read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Tuple

from ..core.strategies import ExecutionStrategy
from ..database import Database
from ..mv.eager import EagerIncrementalView
from ..mv.lazy import LazyIncrementalView
from ..query.result import QueryResult
from ..query.sql import parse_sql
from .rng import make_rng


class WorkloadSystem(Protocol):
    """One competitor in the mixed-workload comparison."""

    name: str

    def insert(self, table: str, row: Dict[str, object]) -> None:
        """Apply one row insert to this system."""
        ...

    def read(self) -> QueryResult:
        """Serve one consistent aggregate read."""
        ...


class AggregateCacheSystem:
    """Answers reads through the aggregate cache (delta compensation)."""

    def __init__(
        self,
        db: Database,
        sql: str,
        strategy: ExecutionStrategy = ExecutionStrategy.CACHED_FULL_PRUNING,
    ):
        self.name = f"aggregate_cache[{strategy.value}]"
        self._db = db
        self._query = parse_sql(sql) if isinstance(sql, str) else sql
        self._strategy = strategy

    def insert(self, table: str, row: Dict[str, object]) -> None:
        """Plain engine insert; the cache needs no write-side work."""
        self._db.insert(table, row)

    def read(self) -> QueryResult:
        """Answer through the aggregate cache (compensated)."""
        return self._db.query(self._query, strategy=self._strategy)


class UncachedSystem:
    """Answers reads by full on-the-fly aggregation."""

    def __init__(self, db: Database, sql: str):
        self.name = "uncached"
        self._db = db
        self._query = parse_sql(sql) if isinstance(sql, str) else sql

    def insert(self, table: str, row: Dict[str, object]) -> None:
        """Plain engine insert."""
        self._db.insert(table, row)

    def read(self) -> QueryResult:
        """Aggregate on the fly over all partitions."""
        return self._db.query(self._query, strategy=ExecutionStrategy.UNCACHED)


class EagerViewSystem:
    """Classical eager incremental view maintenance."""

    def __init__(self, db: Database, sql: str, backing: str = "table"):
        self.name = "eager_view"
        self._db = db
        self._view = EagerIncrementalView(db, sql, backing=backing)

    def insert(self, table: str, row: Dict[str, object]) -> None:
        """Engine insert; the eager view maintains inline via its listener."""
        self._db.insert(table, row)  # the view listener maintains inline

    def read(self) -> QueryResult:
        """Serve from the always-fresh view extent."""
        return self._view.read()

    def close(self) -> None:
        """Detach the view from the database's write path."""
        self._view.close()


class LazyViewSystem:
    """Classical lazy (log + apply-before-read) view maintenance."""

    def __init__(self, db: Database, sql: str, backing: str = "table"):
        self.name = "lazy_view"
        self._db = db
        self._view = LazyIncrementalView(db, sql, backing=backing)

    def insert(self, table: str, row: Dict[str, object]) -> None:
        """Engine insert; the change lands in the view's log."""
        self._db.insert(table, row)

    def read(self) -> QueryResult:
        """Drain the change log, then serve from the extent."""
        return self._view.read()

    def close(self) -> None:
        """Detach the view from the database's write path."""
        self._view.close()


@dataclass
class MixedWorkloadResult:
    """Outcome of one mixed-workload run."""

    system: str
    operations: int
    inserts: int
    reads: int
    insert_time: float = 0.0
    read_time: float = 0.0
    read_times: List[float] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Insert-side plus read-side seconds."""
        return self.insert_time + self.read_time


def run_mixed_workload(
    system: WorkloadSystem,
    row_stream: Iterator[Tuple[str, Dict[str, object]]],
    operations: int,
    insert_ratio: float,
    seed: int = 1,
    read_callback: Optional[Callable[[QueryResult], None]] = None,
) -> MixedWorkloadResult:
    """Interleave inserts and reads at the given ratio.

    ``row_stream`` yields ``(table, row_or_rows)`` per insert *operation*;
    a list of rows models the paper's enterprise insert transactions, which
    persist whole business objects (a header and its items) in one statement
    burst.  ``insert_ratio`` is the fraction of the ``operations`` that are
    inserts (the x-axis of Fig. 6).  Operation order is a deterministic
    shuffle per ``seed``.
    """
    if not 0.0 <= insert_ratio <= 1.0:
        raise ValueError("insert_ratio must be within [0, 1]")
    rng = make_rng(seed)
    n_inserts = round(operations * insert_ratio)
    plan = ["insert"] * n_inserts + ["read"] * (operations - n_inserts)
    rng.shuffle(plan)
    result = MixedWorkloadResult(
        system=system.name,
        operations=operations,
        inserts=n_inserts,
        reads=operations - n_inserts,
    )
    for op in plan:
        if op == "insert":
            table, payload = next(row_stream)
            rows = payload if isinstance(payload, list) else [payload]
            started = time.perf_counter()
            for row in rows:
                system.insert(table, row)
            result.insert_time += time.perf_counter() - started
        else:
            started = time.perf_counter()
            data = system.read()
            elapsed = time.perf_counter() - started
            result.read_time += elapsed
            result.read_times.append(elapsed)
            if read_callback is not None:
                read_callback(data)
    return result
