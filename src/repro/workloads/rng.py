"""Deterministic random helpers for the workload generators.

Every generator takes an explicit seed and builds its own ``random.Random``
so that test runs and benchmark sweeps are exactly reproducible.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

_SYLLABLES = [
    "bar", "ought", "able", "pri", "pres", "ese", "anti", "cally", "ation", "eing",
]


def make_rng(seed: int) -> random.Random:
    """A fresh deterministic generator for the given seed."""
    return random.Random(seed)


def tpcc_last_name(number: int) -> str:
    """The TPC-C customer last-name syllable encoding of a number 0..999."""
    number %= 1000
    return (
        _SYLLABLES[number // 100]
        + _SYLLABLES[(number // 10) % 10]
        + _SYLLABLES[number % 10]
    )


def weighted_choice(rng: random.Random, options: Sequence[T], weights: Sequence[float]) -> T:
    """One weighted draw (thin wrapper keeping call sites terse)."""
    return rng.choices(list(options), weights=list(weights), k=1)[0]


def iso_date(rng: random.Random, year: int) -> str:
    """A uniform ISO date inside the given year (28-day months for simplicity)."""
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"
