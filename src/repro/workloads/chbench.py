"""CH-benCHmark-style schema and generator (Funke et al. [10]).

The paper's third experiment runs four analytical TPC-H-derived queries of
the CH-benCHmark (Q3, Q5, Q9, Q10) over a TPC-C-shaped schema, with the
delta partitions of ``orders``, ``neworder``, ``orderline``, and ``stock``
populated with 5 % of each table's rows.

Adaptations (documented in DESIGN.md):

* **Surrogate keys.**  TPC-C uses composite keys (``o_w_id, o_d_id, o_id``);
  our engine's primary keys and matching dependencies are single-column, so
  every table carries a surrogate integer key (``o_key``, ``ol_key``, ...)
  and children carry the parent surrogate as foreign key.  Join shapes and
  cardinalities are unchanged.
* **Scale.**  ``ChConfig`` scales the row counts; defaults are laptop-sized
  rather than the paper's scale factor 200 (60 M orderlines).
* **Delta population.**  The generator loads a main phase, merges, then
  inserts the configured delta fraction as *recent business* — new orders
  with orderlines referencing mostly existing items/stock plus some freshly
  introduced ones, which reproduces the subjoin structure (some mixed
  main/delta subjoins prunable, others legitimately non-empty).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..database import Database
from ..storage.aging import threshold_aging
from .rng import iso_date, make_rng, tpcc_last_name

NATIONS = [
    ("GERMANY", "EUROPE"),
    ("FRANCE", "EUROPE"),
    ("UNITED_KINGDOM", "EUROPE"),
    ("UNITED_STATES", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("JAPAN", "ASIA"),
    ("CHINA", "ASIA"),
]
REGIONS = ["EUROPE", "AMERICA", "ASIA"]
ITEM_CATEGORIES = ["standard", "premium", "budget"]
STATES = ["CA", "NY", "TX", "WA"]


@dataclass
class ChConfig:
    """Scaled-down CH-benCHmark sizing knobs."""

    warehouses: int = 2
    districts_per_warehouse: int = 3
    customers_per_district: int = 10
    orders_per_district: int = 30
    orderlines_per_order: int = 5
    items: int = 100
    suppliers: int = 10
    delta_fraction: float = 0.05  # the paper's 5 % delta population
    new_order_fraction: float = 0.3  # orders still in neworder
    seed: int = 42
    # Year pools for the main-phase and delta-phase order generators.  The
    # defaults match the historical hard-coded values, so existing
    # benchmarks stay byte-identical.
    main_years: Tuple[int, ...] = (2012, 2013)
    delta_years: Tuple[int, ...] = (2014,)
    # When set, ``orders`` and ``orderline`` are created with hot/cold
    # aging rules: orders with ``o_year >= hot_year`` are hot, and
    # orderlines with ``ol_delivery_d >= "<hot_year>-01-01"`` are hot.
    # Both rules classify by the order's business year, so the pair is
    # declared consistently aged (paper §5.4) and cold mains become
    # eligible for ``Database.age_out()`` demotion to the cold store.
    hot_year: Optional[int] = None
    # When set, prices/amounts are multiples of this quantum instead of
    # cent-rounded uniforms.  A power-of-two fraction (0.25, 0.5) makes
    # every value — and every partial sum — exactly representable, so
    # benchmarks can assert bit-identical aggregates across execution
    # modes that fold partials in different orders.
    amount_quantum: Optional[float] = None


class ChBenchmark:
    """Creates the schema and loads the scaled dataset."""

    def __init__(self, db: Database, config: Optional[ChConfig] = None):
        self.db = db
        self.config = config if config is not None else ChConfig()
        self._rng = make_rng(self.config.seed)
        self._next: Dict[str, int] = {
            "customer": 1, "orders": 1, "neworder": 1, "orderline": 1,
            "stock": 1, "item": 1,
        }
        self._customer_keys: List[int] = []
        self._item_keys: List[int] = []
        self._stock_key_by_item_wh: Dict[Tuple[int, int], int] = {}
        self._create_schema()
        self._load_static()

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def _create_schema(self) -> None:
        db = self.db
        hot_year = self.config.hot_year
        orders_aging = (
            threshold_aging("o_year", hot_year) if hot_year is not None else None
        )
        # Orderlines carry their order's business year in the delivery
        # date, so thresholding on the ISO date string classifies each
        # orderline exactly like its parent order.
        orderline_aging = (
            threshold_aging("ol_delivery_d", f"{hot_year:04d}-01-01")
            if hot_year is not None
            else None
        )
        db.create_table(
            "region",
            [("r_regionkey", "INT"), ("r_name", "TEXT")],
            primary_key="r_regionkey",
        )
        db.create_table(
            "nation",
            [("n_nationkey", "INT"), ("n_name", "TEXT"), ("n_regionkey", "INT")],
            primary_key="n_nationkey",
        )
        db.create_table(
            "supplier",
            [
                ("su_suppkey", "INT"),
                ("su_name", "TEXT"),
                ("su_nationkey", "INT"),
            ],
            primary_key="su_suppkey",
        )
        db.create_table(
            "item",
            [
                ("i_id", "INT"),
                ("i_name", "TEXT"),
                ("i_price", "FLOAT"),
                ("i_category", "TEXT"),
            ],
            primary_key="i_id",
        )
        db.create_table(
            "customer",
            [
                ("c_key", "INT"),
                ("c_w_id", "INT"),
                ("c_d_id", "INT"),
                ("c_id", "INT"),
                ("c_last", "TEXT"),
                ("c_state", "TEXT"),
                ("c_nationkey", "INT"),
                ("c_balance", "FLOAT"),
            ],
            primary_key="c_key",
        )
        db.create_table(
            "stock",
            [
                ("s_key", "INT"),
                ("s_i_id", "INT"),
                ("s_w_id", "INT"),
                ("s_quantity", "INT"),
                ("s_su_suppkey", "INT"),
            ],
            primary_key="s_key",
        )
        db.create_table(
            "orders",
            [
                ("o_key", "INT"),
                ("o_w_id", "INT"),
                ("o_d_id", "INT"),
                ("o_id", "INT"),
                ("o_c_key", "INT"),
                ("o_entry_d", "DATE"),
                ("o_year", "INT"),
                ("o_carrier_id", "INT"),
            ],
            primary_key="o_key",
            aging_rule=orders_aging,
        )
        db.create_table(
            "neworder",
            [("no_key", "INT"), ("no_o_key", "INT")],
            primary_key="no_key",
        )
        db.create_table(
            "orderline",
            [
                ("ol_key", "INT"),
                ("ol_o_key", "INT"),
                ("ol_i_id", "INT"),
                ("ol_s_key", "INT"),
                ("ol_quantity", "INT"),
                ("ol_amount", "FLOAT"),
                ("ol_delivery_d", "DATE"),
            ],
            primary_key="ol_key",
            aging_rule=orderline_aging,
        )
        # Object-aware matching dependencies along the business-object edges.
        db.add_matching_dependency("customer", "c_key", "orders", "o_c_key")
        db.add_matching_dependency("orders", "o_key", "neworder", "no_o_key")
        db.add_matching_dependency("orders", "o_key", "orderline", "ol_o_key")
        db.add_matching_dependency("stock", "s_key", "orderline", "ol_s_key")
        if hot_year is not None:
            db.declare_consistent_aging("orders", "orderline")

    # ------------------------------------------------------------------
    # static dimensions
    # ------------------------------------------------------------------
    def _load_static(self) -> None:
        db = self.db
        for idx, name in enumerate(REGIONS):
            db.insert("region", {"r_regionkey": idx, "r_name": name})
        for idx, (nation, region) in enumerate(NATIONS):
            db.insert(
                "nation",
                {
                    "n_nationkey": idx,
                    "n_name": nation,
                    "n_regionkey": REGIONS.index(region),
                },
            )
        for key in range(1, self.config.suppliers + 1):
            db.insert(
                "supplier",
                {
                    "su_suppkey": key,
                    "su_name": f"supplier-{key:04d}",
                    "su_nationkey": (key - 1) % len(NATIONS),
                },
            )

    # ------------------------------------------------------------------
    # load phases
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, int]:
        """Main phase + merge + delta phase; returns per-table row counts."""
        config = self.config
        main_items = max(1, int(config.items * (1.0 - config.delta_fraction)))
        self._load_items_and_stock(main_items)
        self._load_customers()
        main_orders = int(
            config.warehouses
            * config.districts_per_warehouse
            * config.orders_per_district
            * (1.0 - config.delta_fraction)
        )
        self._load_orders(main_orders, year_pool=config.main_years)
        self.db.merge()
        # Delta phase: recent business.
        delta_items = config.items - main_items
        self._load_items_and_stock(delta_items)
        total_orders = (
            config.warehouses
            * config.districts_per_warehouse
            * config.orders_per_district
        )
        self._load_orders(total_orders - main_orders, year_pool=config.delta_years)
        return self.row_counts()

    def _money(self, lo: float, hi: float) -> float:
        """A price/amount in [lo, hi] honoring ``amount_quantum``."""
        quantum = self.config.amount_quantum
        if quantum is None:
            return round(self._rng.uniform(lo, hi), 2)
        steps = int((hi - lo) / quantum)
        return lo + quantum * self._rng.randint(0, steps)

    def grow_delta(self, orders: int) -> None:
        """Append ``orders`` fresh orders (with orderlines) to the deltas.

        No merge: the rows land in the delta partitions, growing the
        compensation workload of every cached query — exactly what the
        delta-memo benchmark varies between timed hits.
        """
        self._load_orders(orders, year_pool=self.config.delta_years)

    def _load_items_and_stock(self, count: int) -> None:
        db = self.db
        rng = self._rng
        for _ in range(count):
            i_id = self._next["item"]
            self._next["item"] += 1
            db.insert(
                "item",
                {
                    "i_id": i_id,
                    "i_name": f"item-{i_id:05d}",
                    "i_price": self._money(1.0, 100.0),
                    "i_category": rng.choice(ITEM_CATEGORIES),
                },
            )
            self._item_keys.append(i_id)
            for warehouse in range(1, self.config.warehouses + 1):
                s_key = self._next["stock"]
                self._next["stock"] += 1
                db.insert(
                    "stock",
                    {
                        "s_key": s_key,
                        "s_i_id": i_id,
                        "s_w_id": warehouse,
                        "s_quantity": rng.randint(10, 100),
                        "s_su_suppkey": rng.randint(1, self.config.suppliers),
                    },
                )
                self._stock_key_by_item_wh[(i_id, warehouse)] = s_key

    def _load_customers(self) -> None:
        db = self.db
        rng = self._rng
        for warehouse in range(1, self.config.warehouses + 1):
            for district in range(1, self.config.districts_per_warehouse + 1):
                for c_id in range(1, self.config.customers_per_district + 1):
                    key = self._next["customer"]
                    self._next["customer"] += 1
                    db.insert(
                        "customer",
                        {
                            "c_key": key,
                            "c_w_id": warehouse,
                            "c_d_id": district,
                            "c_id": c_id,
                            "c_last": tpcc_last_name(key),
                            "c_state": rng.choice(STATES),
                            "c_nationkey": rng.randrange(len(NATIONS)),
                            "c_balance": 0.0,
                        },
                    )
                    self._customer_keys.append(key)

    def _load_orders(self, count: int, year_pool: Tuple[int, ...]) -> None:
        db = self.db
        rng = self._rng
        config = self.config
        for _ in range(count):
            o_key = self._next["orders"]
            self._next["orders"] += 1
            year = rng.choice(year_pool)
            warehouse = rng.randint(1, config.warehouses)
            order = {
                "o_key": o_key,
                "o_w_id": warehouse,
                "o_d_id": rng.randint(1, config.districts_per_warehouse),
                "o_id": o_key,
                "o_c_key": rng.choice(self._customer_keys),
                "o_entry_d": iso_date(rng, year),
                "o_year": year,
                "o_carrier_id": rng.randint(1, 10),
            }
            is_new = rng.random() < config.new_order_fraction
            txn = db.begin()
            db.insert("orders", order, txn=txn)
            if is_new:
                no_key = self._next["neworder"]
                self._next["neworder"] += 1
                db.insert("neworder", {"no_key": no_key, "no_o_key": o_key}, txn=txn)
            for _line in range(config.orderlines_per_order):
                i_id = rng.choice(self._item_keys)
                ol_key = self._next["orderline"]
                self._next["orderline"] += 1
                db.insert(
                    "orderline",
                    {
                        "ol_key": ol_key,
                        "ol_o_key": o_key,
                        "ol_i_id": i_id,
                        "ol_s_key": self._stock_key_by_item_wh[(i_id, warehouse)],
                        "ol_quantity": rng.randint(1, 10),
                        "ol_amount": self._money(10.0, 500.0),
                        "ol_delivery_d": iso_date(rng, year),
                    },
                    txn=txn,
                )
            txn.commit()

    # ------------------------------------------------------------------
    def row_counts(self) -> Dict[str, int]:
        """Visible rows per table at the current snapshot."""
        snapshot = self.db.transactions.global_snapshot()
        return {
            name: self.db.table(name).visible_row_count(snapshot)
            for name in self.db.catalog.table_names()
        }

    def delta_counts(self) -> Dict[str, int]:
        """Physical rows currently in each table's delta partitions."""
        return {
            name: sum(
                p.row_count for p in self.db.table(name).delta_partitions()
            )
            for name in self.db.catalog.table_names()
        }
