"""The aggregate-query model.

An :class:`AggregateQuery` is the normalized form every entry point (SQL
text or programmatic builder) reduces to: a set of table references, equi-
join edges, filter conjuncts, group-by columns, and aggregate specs.  It is
the unit the aggregate cache keys on and the executor evaluates per
partition combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import QueryError
from .aggregates import AggregateSpec
from .expr import Col, Expr, single_alias_of


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause with its alias."""

    table: str
    alias: str

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        return f"{self.table} AS {self.alias}"


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join condition ``left_alias.left_col = right_alias.right_col``."""

    left_alias: str
    left_col: str
    right_alias: str
    right_col: str

    def canonical(self) -> str:
        """Order-normalized textual form of the join condition."""
        left = f"{self.left_alias}.{self.left_col}"
        right = f"{self.right_alias}.{self.right_col}"
        return f"{left} = {right}" if left <= right else f"{right} = {left}"

    def aliases(self) -> Tuple[str, str]:
        """The two alias names this edge connects."""
        return (self.left_alias, self.right_alias)

    def side_for(self, alias: str) -> str:
        """Column name of this edge on the given alias' side."""
        if alias == self.left_alias:
            return self.left_col
        if alias == self.right_alias:
            return self.right_col
        raise QueryError(f"alias {alias!r} not part of edge {self.canonical()}")

    def other(self, alias: str) -> Tuple[str, str]:
        """The (alias, column) of the opposite side."""
        if alias == self.left_alias:
            return (self.right_alias, self.right_col)
        if alias == self.right_alias:
            return (self.left_alias, self.left_col)
        raise QueryError(f"alias {alias!r} not part of edge {self.canonical()}")


@dataclass(frozen=True)
class OrderItem:
    """ORDER BY element over an output column name."""

    column: str
    descending: bool = False


class AggregateQuery:
    """Normalized aggregate query over one or more joined tables."""

    def __init__(
        self,
        tables: Sequence[TableRef],
        aggregates: Sequence[AggregateSpec],
        group_by: Sequence[Col] = (),
        join_edges: Sequence[JoinEdge] = (),
        filters: Sequence[Expr] = (),
        order_by: Sequence[OrderItem] = (),
        limit: Optional[int] = None,
        group_labels: Optional[Sequence[str]] = None,
        having: Optional[Expr] = None,
    ):
        self.tables: List[TableRef] = list(tables)
        self.aggregates: List[AggregateSpec] = list(aggregates)
        self.group_by: List[Col] = list(group_by)
        self.join_edges: List[JoinEdge] = list(join_edges)
        self.filters: List[Expr] = list(filters)
        self.order_by: List[OrderItem] = list(order_by)
        self.limit = limit
        # HAVING references *output* column names (group labels / aggregate
        # outputs); like ORDER BY it does not change the cached extent.
        self.having = having
        if group_labels is None:
            self.group_labels: List[str] = [c.name for c in self.group_by]
        else:
            self.group_labels = list(group_labels)
        if len(self.group_labels) != len(self.group_by):
            raise QueryError("group_labels must match group_by in length")
        self._canonical_key: Optional[str] = None
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.tables:
            raise QueryError("query needs at least one table")
        if not self.aggregates:
            raise QueryError("aggregate query needs at least one aggregate")
        aliases = [t.alias for t in self.tables]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate table aliases: {aliases}")
        alias_set = set(aliases)
        for edge in self.join_edges:
            for alias in edge.aliases():
                if alias not in alias_set:
                    raise QueryError(f"join edge references unknown alias {alias!r}")
        for expr in self.filters:
            for alias, _col in expr.column_refs():
                if alias is not None and alias not in alias_set:
                    raise QueryError(f"filter references unknown alias {alias!r}")
        for col in self.group_by:
            if col.alias is not None and col.alias not in alias_set:
                raise QueryError(f"group-by references unknown alias {col.alias!r}")
        if len(self.tables) > 1:
            self._require_connected()
        outputs = [spec.output for spec in self.aggregates]
        if len(set(outputs)) != len(outputs):
            raise QueryError(f"duplicate aggregate output names: {outputs}")

    def _require_connected(self) -> None:
        """The join graph must connect every table (no cross products)."""
        adjacency: Dict[str, Set[str]] = {t.alias: set() for t in self.tables}
        for edge in self.join_edges:
            left, right = edge.aliases()
            adjacency[left].add(right)
            adjacency[right].add(left)
        start = self.tables[0].alias
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        missing = {t.alias for t in self.tables} - seen
        if missing:
            raise QueryError(
                f"join graph is disconnected; unreachable aliases: {sorted(missing)}"
            )

    # ------------------------------------------------------------------
    @property
    def aliases(self) -> List[str]:
        """The table aliases in FROM order."""
        return [t.alias for t in self.tables]

    def table_of(self, alias: str) -> str:
        """Table name behind an alias (QueryError if unknown)."""
        for ref in self.tables:
            if ref.alias == alias:
                return ref.table
        raise QueryError(f"unknown alias {alias!r}")

    def edges_of(self, alias: str) -> List[JoinEdge]:
        """The join edges touching an alias."""
        return [e for e in self.join_edges if alias in e.aliases()]

    def local_filters(self, alias: str) -> List[Expr]:
        """Filter conjuncts that only touch the given alias."""
        return [f for f in self.filters if single_alias_of(f) == alias]

    def residual_filters(self) -> List[Expr]:
        """Filter conjuncts touching several (or zero) aliases — evaluated post-join."""
        return [f for f in self.filters if single_alias_of(f) is None]

    def output_columns(self) -> List[str]:
        """Result column names: group-by labels then aggregate outputs."""
        return list(self.group_labels) + [s.output for s in self.aggregates]

    def is_self_maintainable(self) -> bool:
        """True if every aggregate qualifies for the aggregate cache."""
        return all(spec.self_maintainable for spec in self.aggregates)

    # ------------------------------------------------------------------
    def clone(self) -> "AggregateQuery":
        """An independent shallow copy sharing only immutable parts.

        The constructor list-copies every sequence, so mutating the clone's
        ``tables``/``filters``/... lists cannot reach the original — which
        is what lets the SQL parse cache hand out clones of one cached
        template without risking poisoning.  Element objects (TableRef,
        JoinEdge, Col, Expr trees) are immutable by convention and shared.
        Binding markers are *not* copied: a clone is always unbound.
        """
        dup = AggregateQuery(
            tables=self.tables,
            aggregates=self.aggregates,
            group_by=self.group_by,
            join_edges=self.join_edges,
            filters=self.filters,
            order_by=self.order_by,
            limit=self.limit,
            group_labels=self.group_labels,
            having=self.having,
        )
        dup._canonical_key = self._canonical_key
        return dup

    def canonical_key(self) -> str:
        """Stable canonical form (without ORDER BY / LIMIT, which do not
        change the cached extent).  Memoized — queries are treated as
        immutable once constructed."""
        if self._canonical_key is not None:
            return self._canonical_key
        tables = ", ".join(sorted(t.canonical() for t in self.tables))
        edges = " AND ".join(sorted(e.canonical() for e in self.join_edges))
        filters = " AND ".join(sorted(f.canonical() for f in self.filters))
        groups = ", ".join(c.canonical() for c in self.group_by)
        aggs = ", ".join(s.canonical() for s in self.aggregates)
        self._canonical_key = (
            f"TABLES[{tables}] JOIN[{edges}] WHERE[{filters}] "
            f"GROUP[{groups}] AGG[{aggs}]"
        )
        return self._canonical_key

    def __repr__(self) -> str:
        return f"AggregateQuery({self.canonical_key()})"
