"""Partition-aware query execution (Section 2.3.1).

A query over partitioned tables is the union of its *subjoins*: one join per
combination of partitions, one partition per referenced table.  The executor
takes an explicit list of :class:`ComboSpec` combinations — the plain path
evaluates all ``k1 × ... × kt`` of them, the aggregate cache passes the
compensation subset (everything except the cached all-main combination),
and the object-aware layer passes a pruned subset plus per-combination
pushdown filters (Section 5.3).

Work that repeats across combinations referencing the same partition —
visible-row scans with local filters and join-side hash tables — is memoized
per ``execute`` call, which mirrors how a real engine would share scans
across union branches.

Subjoins are mutually independent, so the executor can shard the
combination list across a thread pool (:class:`ParallelConfig`): each
worker folds its subjoins into a private grouped partial and the partials
are merged back **in combination order**, making parallel results
bit-identical to serial ones.  Workers either share one lock-striped memo
or keep per-worker memos, per configuration.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..concurrency import DictMemo, StripedMemo
from ..errors import QueryError
from ..obs.trace import Span
from ..plan.cost import choose_join_order, tier_weighted_costs
from ..plan.logical import Binder
from ..storage.catalog import Catalog
from ..storage.partition import Partition
from .aggregates import GroupedAggregates
from .expr import Expr
from .operators import (
    JoinedProvider,
    aggregate_into,
    build_hash_table,
    join_kernel,
    probe_hash_join,
    scan_partition,
)
from .parallel import MEMO_PRIVATE, ParallelConfig
from .query import AggregateQuery


@dataclass(frozen=True)
class RowRange:
    """A contiguous physical row interval ``[start, stop)`` of one partition.

    Used as a ``ComboSpec.fixed_rows`` value: unlike an explicit index
    array (which bypasses visibility entirely), a range restricts the
    normal *snapshot-visibility* scan to the interval, and the stamp
    vectors are sliced before the visibility compare — the scan never
    materializes rows outside the range.  Delta-memo compensation uses
    this to touch only the rows appended since a watermark.
    """

    start: int
    stop: int

    def __len__(self) -> int:
        return max(0, self.stop - self.start)


@dataclass
class ComboSpec:
    """One subjoin: a partition per alias, plus per-alias pushdown filters.

    ``extra_filters`` carries combination-specific local predicates — the
    join-predicate-pushdown ranges derived from matching dependencies — that
    must be applied to that alias' scan *for this subjoin only*.

    ``fixed_rows`` pins an alias to an explicit row-index set *instead of*
    the snapshot-visibility scan.  The aggregate cache uses this for main
    compensation: the "invalidated rows" side and the "rows visible at entry
    creation" sides of the subtraction are both fixed sets that no current
    snapshot describes.  Local and extra filters still apply on top.
    A :class:`RowRange` value instead *keeps* the snapshot-visibility scan
    but restricts it to the contiguous interval (delta-memo compensation).
    """

    partitions: Dict[str, Partition]
    extra_filters: Dict[str, List[Expr]] = field(default_factory=dict)
    fixed_rows: Dict[str, Union[np.ndarray, RowRange]] = field(default_factory=dict)

    def describe(self) -> str:
        """Compact '(alias:partition, ...)' rendering for stats/plans."""
        return describe_partitions(self.partitions)


def describe_partitions(partitions: Dict[str, Partition]) -> str:
    """Canonical '(alias:partition, ...)' label of a partition assignment —
    shared by stats, plans, and trace spans so they compare textually."""
    inner = ", ".join(
        f"{alias}:{part.name}" for alias, part in sorted(partitions.items())
    )
    return f"({inner})"


@dataclass
class ExecutionStats:
    """Counters filled during one ``execute`` call.

    In parallel executions every subjoin fills a private instance which is
    folded back via :meth:`merge` in combination order, so serial and
    parallel runs of the same query produce *identical* stats — including
    the order of ``subjoins`` and ``probe_sides``.
    """

    combos_evaluated: int = 0
    combos_empty: int = 0
    rows_aggregated: int = 0
    subjoins: List[str] = field(default_factory=list)
    #: Per subjoin, the alias chosen as the probe (non-hashed) side.
    probe_sides: List[str] = field(default_factory=list)

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another stats object into this one (order-preserving)."""
        self.combos_evaluated += other.combos_evaluated
        self.combos_empty += other.combos_empty
        self.rows_aggregated += other.rows_aggregated
        self.subjoins.extend(other.subjoins)
        self.probe_sides.extend(other.probe_sides)


def all_partition_combos(
    query: AggregateQuery, catalog: Catalog
) -> List[Dict[str, Partition]]:
    """The full cartesian product of partitions per referenced table."""
    per_alias: List[List[Tuple[str, Partition]]] = []
    for ref in query.tables:
        table = catalog.table(ref.table)
        per_alias.append([(ref.alias, p) for p in table.partitions()])
    return [dict(chosen) for chosen in itertools.product(*per_alias)]


def main_only_combos(
    query: AggregateQuery, catalog: Catalog
) -> List[Dict[str, Partition]]:
    """Combinations in which every alias reads a main partition.

    A plain table contributes its one main; an aged table contributes its
    hot and cold mains, so a query over aged tables has several all-main
    combinations (one aggregate cache entry each, Section 5.4).
    """
    return [
        combo
        for combo in all_partition_combos(query, catalog)
        if all(p.kind == "main" for p in combo.values())
    ]


def _fixed_rows_key(fixed) -> object:
    """Memo-key component for a ``fixed_rows`` value.

    Ranges key by value — two subjoins pinning the same interval share one
    scan — while index arrays key by identity (their contents are not
    hashable and callers reuse the same array object across subjoins).
    ``None`` (plain snapshot scan) stays None so it cannot collide with an
    array id.
    """
    if fixed is None:
        return None
    if isinstance(fixed, RowRange):
        return (fixed.start, fixed.stop)
    return id(fixed)


def _filter_fixed_rows(
    alias: str,
    partition: Partition,
    rows: np.ndarray,
    filters: Sequence[Expr],
) -> np.ndarray:
    """Apply local filters to an explicitly pinned row set."""
    from .operators import PartitionProvider

    rows = np.asarray(rows, dtype=np.int64)
    if not filters or not len(rows):
        return rows
    provider = PartitionProvider(alias, partition, rows)
    keep = np.ones(len(rows), dtype=bool)
    for expr in filters:
        keep &= expr.evaluate(provider).astype(bool)
    return rows[keep]


class QueryExecutor:
    """Evaluates aggregate queries over explicit partition combinations."""

    def __init__(self, catalog: Catalog, parallel: Optional[ParallelConfig] = None):
        self._catalog = catalog
        self._binder = Binder(catalog)
        self._parallel = parallel
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------
    @property
    def parallel_config(self) -> Optional[ParallelConfig]:
        """The default parallel configuration (None = always serial)."""
        return self._parallel

    def _ensure_pool(self, n_workers: int) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None or self._pool_size != n_workers:
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                self._pool = ThreadPoolExecutor(
                    max_workers=n_workers, thread_name_prefix="repro-subjoin"
                )
                self._pool_size = n_workers
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; executor stays usable —
        a later parallel execute recreates the pool)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_size = 0

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, query: AggregateQuery) -> AggregateQuery:
        """Resolve and validate column references; see
        :meth:`repro.plan.logical.Binder.bind` (the executor delegates to
        the planner layer's binder, which owns the binding rules)."""
        return self._binder.bind(query)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: AggregateQuery,
        snapshot: int,
        combos: Optional[Sequence[ComboSpec]] = None,
        into: Optional[GroupedAggregates] = None,
        sign: int = 1,
        stats: Optional[ExecutionStats] = None,
        parallel: Optional[ParallelConfig] = None,
        span_sink: Optional[List[Span]] = None,
        cancel=None,
        recycle=None,
    ) -> GroupedAggregates:
        """Evaluate the union of the given subjoins into a grouped state.

        ``combos`` defaults to the full partition product.  ``into`` lets
        the aggregate cache fold compensation contributions into (a copy of)
        a cached value; ``sign=-1`` subtracts, for main compensation.

        ``parallel`` overrides the executor's default
        :class:`ParallelConfig` for this call.  Every subjoin is evaluated
        into a private partial which is merged into the result **in
        combination order**, for serial and parallel runs alike — the two
        modes perform the same floating-point operations in the same order
        and return bit-identical results and stats.

        ``span_sink`` collects one trace :class:`Span` per evaluated
        subjoin (partition assignment, rows scanned, probe side, pushdown
        filter counts, worker id).  Spans are appended in combination
        order, so serial and parallel runs produce the same span sequence
        up to timings and worker names.

        ``cancel`` is an optional
        :class:`~repro.governor.deadline.CancelToken`: it is checked
        before every subjoin — in the serial fold loop and inside every
        parallel worker task — so a cancelled or timed-out query aborts
        at the next subjoin boundary with a typed
        :class:`~repro.errors.QueryAborted` instead of running to
        completion.  An abort folds nothing further into ``into``.

        ``recycle`` is an optional
        :class:`~repro.core.recycler.RecycleContext`: each subjoin probes
        the shared cross-query recycler before evaluating and publishes its
        joined index state after.  A hit replays the stored tuples through
        a fresh aggregation (same floats, same fold order), so results and
        stats are bit-identical with recycling on or off.
        """
        if cancel is not None:
            cancel.check()
        bound = self.bind(query)
        if combos is None:
            combos = [
                ComboSpec(partitions)
                for partitions in all_partition_combos(bound, self._catalog)
            ]
        else:
            combos = list(combos)
        grouped = into if into is not None else GroupedAggregates(bound.aggregates)
        residuals = bound.residual_filters()
        local_filters = {ref.alias: bound.local_filters(ref.alias) for ref in bound.tables}
        want_stats = stats is not None
        want_spans = span_sink is not None
        config = parallel if parallel is not None else self._parallel
        partial_factory = grouped.new_like
        if config is not None and config.should_parallelize(
            len(combos), _physical_rows(combos)
        ):
            partials = self._run_parallel(
                bound, residuals, local_filters, snapshot, combos, sign,
                want_stats, config, partial_factory, want_spans, cancel,
                recycle,
            )
        else:
            scan_memo, hash_memo = DictMemo(), DictMemo()
            partials = (
                self._execute_combo(
                    bound, residuals, local_filters, snapshot, combo, sign,
                    scan_memo, hash_memo, want_stats, partial_factory,
                    want_spans, recycle,
                )
                for combo in combos
            )
        for partial, combo_stats, span in partials:
            if cancel is not None:
                cancel.check()  # serial subjoin boundary (parallel workers check in-task)
            if want_stats:
                stats.merge(combo_stats)
            if want_spans and span is not None:
                span_sink.append(span)
            if partial is not None:
                grouped.merge(partial)
        return grouped

    def _run_parallel(
        self,
        query: AggregateQuery,
        residuals: List[Expr],
        local_filters: Dict[str, List[Expr]],
        snapshot: int,
        combos: Sequence[ComboSpec],
        sign: int,
        want_stats: bool,
        config: ParallelConfig,
        partial_factory,
        want_spans: bool = False,
        cancel=None,
        recycle=None,
    ):
        """Submit one task per subjoin; yield results in combination order."""
        if config.memo == MEMO_PRIVATE:
            per_thread: Dict[int, Tuple[DictMemo, DictMemo]] = {}

            def memos() -> Tuple[DictMemo, DictMemo]:
                ident = threading.get_ident()
                pair = per_thread.get(ident)
                if pair is None:
                    # setdefault keeps the first pair if two tasks on a new
                    # thread race (they cannot: one thread, one task at a
                    # time — but stay defensive).
                    pair = per_thread.setdefault(ident, (DictMemo(), DictMemo()))
                return pair

        else:
            shared = (StripedMemo(), StripedMemo())

            def memos() -> Tuple[StripedMemo, StripedMemo]:
                return shared

        def task(combo: ComboSpec):
            if cancel is not None:
                cancel.check()  # parallel subjoin boundary, on the worker
            scan_memo, hash_memo = memos()
            return self._execute_combo(
                query, residuals, local_filters, snapshot, combo, sign,
                scan_memo, hash_memo, want_stats, partial_factory, want_spans,
                recycle,
            )

        pool = self._ensure_pool(config.n_workers)
        futures = [pool.submit(task, combo) for combo in combos]
        for future in futures:
            yield future.result()

    def _scan(
        self,
        alias: str,
        combo: ComboSpec,
        local_filters: Dict[str, List[Expr]],
        snapshot: int,
        scan_memo,
    ) -> np.ndarray:
        partition = combo.partitions[alias]
        extra = combo.extra_filters.get(alias, [])
        fixed = combo.fixed_rows.get(alias)
        key = (
            alias,
            id(partition),
            tuple(sorted(e.canonical() for e in extra)),
            _fixed_rows_key(fixed),
        )

        def compute() -> np.ndarray:
            if isinstance(fixed, RowRange):
                rows = partition.visible_rows_in(snapshot, fixed.start, fixed.stop)
                return _filter_fixed_rows(
                    alias, partition, rows, local_filters[alias] + extra
                )
            if fixed is not None:
                return _filter_fixed_rows(
                    alias, partition, fixed, local_filters[alias] + extra
                )
            return scan_partition(
                alias, partition, snapshot, local_filters[alias] + extra
            )

        return scan_memo.get_or_compute(key, compute)

    def _execute_combo(
        self,
        query: AggregateQuery,
        residuals: List[Expr],
        local_filters: Dict[str, List[Expr]],
        snapshot: int,
        combo: ComboSpec,
        sign: int,
        scan_memo,
        hash_memo,
        want_stats: bool,
        partial_factory,
        want_spans: bool = False,
        recycle=None,
    ) -> Tuple[Optional[GroupedAggregates], Optional[ExecutionStats], Optional[Span]]:
        """Evaluate one subjoin into a fresh partial grouped state.

        Returns ``(partial, stats, span)``; the partial is None when the
        subjoin is empty and the span is None unless requested.  The
        caller folds everything back in combination order.
        """
        if not want_spans:
            return (*self._execute_combo_inner(
                query, residuals, local_filters, snapshot, combo, sign,
                scan_memo, hash_memo, want_stats, partial_factory, None,
                recycle,
            ), None)
        attrs: Dict[str, object] = {
            "combo": combo.describe(),
            "status": "evaluated",
            "worker": threading.current_thread().name,
            "kernel": join_kernel(),
        }
        if combo.extra_filters:
            attrs["pushdown_filters"] = {
                alias: len(filters)
                for alias, filters in sorted(combo.extra_filters.items())
                if filters
            }
        if combo.fixed_rows:
            attrs["fixed_rows"] = sorted(combo.fixed_rows)
        if sign != 1:
            attrs["sign"] = sign
        started = time.perf_counter()
        partial, stats = self._execute_combo_inner(
            query, residuals, local_filters, snapshot, combo, sign,
            scan_memo, hash_memo, want_stats, partial_factory, attrs,
            recycle,
        )
        span = Span(
            name="subjoin",
            start=started,
            duration=time.perf_counter() - started,
            attrs=attrs,
        )
        return partial, stats, span

    def _execute_combo_inner(
        self,
        query: AggregateQuery,
        residuals: List[Expr],
        local_filters: Dict[str, List[Expr]],
        snapshot: int,
        combo: ComboSpec,
        sign: int,
        scan_memo,
        hash_memo,
        want_stats: bool,
        partial_factory,
        attrs: Optional[Dict[str, object]],
        recycle=None,
    ) -> Tuple[Optional[GroupedAggregates], Optional[ExecutionStats]]:
        missing = {ref.alias for ref in query.tables} - set(combo.partitions)
        if missing:
            raise QueryError(f"combo misses partitions for aliases {sorted(missing)}")
        stats = ExecutionStats() if want_stats else None
        if stats is not None:
            stats.combos_evaluated += 1
            stats.subjoins.append(combo.describe())
        # Cross-query recycling: probe the shared subjoin store before doing
        # any work.  A hit replays the stored joined indices through a fresh
        # aggregation — deterministic evaluation means the recycled tuples
        # are the exact tuples this subjoin would have produced, so results
        # (and stats, and span attrs apart from ``recycled``) match the
        # recompute bit for bit.
        recycle_key = None
        if recycle is not None:
            recycle_key = recycle.key_for(combo)
            if recycle_key is not None:
                hit = recycle.lookup(recycle_key, combo)
                if hit is not None:
                    return self._replay_recycled(
                        query, hit, sign, stats, attrs, partial_factory
                    )
        # Scan every alias up front (memoized across subjoins): the counts
        # drive build-side selection, and any empty input empties the join.
        scans = {
            ref.alias: self._scan(ref.alias, combo, local_filters, snapshot, scan_memo)
            for ref in query.tables
        }
        row_counts = {alias: len(rows) for alias, rows in scans.items()}
        # Runtime ordering ranks tier-weighted costs: identical to raw
        # counts while every partition is resident, biased toward probing
        # the memory-mapped side (hash tables built on hot inputs) once
        # cold mains participate.
        first, steps = choose_join_order(
            query, tier_weighted_costs(row_counts, combo.partitions)
        )
        if stats is not None:
            stats.probe_sides.append(first)
        if attrs is not None:
            attrs["rows_scanned"] = dict(sorted(row_counts.items()))
            attrs["probe_side"] = first
            mapped = sorted(
                alias
                for alias, partition in combo.partitions.items()
                if getattr(partition, "storage_tier", "resident") == "mapped"
            )
            if mapped:
                attrs["tier"] = {alias: "mapped" for alias in mapped}
        if row_counts[first] == 0:
            if stats is not None:
                stats.combos_empty += 1
            if attrs is not None:
                attrs["status"] = "empty"
            if recycle_key is not None:
                recycle.store(recycle_key, combo, None, row_counts, first)
            return None, stats
        provider = JoinedProvider(
            {first: combo.partitions[first]}, {first: scans[first]}
        )
        for step in steps:
            partition = combo.partitions[step.alias]
            key_columns = tuple(edge.side_for(step.alias) for edge in step.edges)
            extra = combo.extra_filters.get(step.alias, [])
            fixed = combo.fixed_rows.get(step.alias)
            hash_key = (
                step.alias,
                id(partition),
                key_columns,
                tuple(sorted(e.canonical() for e in extra)),
                _fixed_rows_key(fixed),
                join_kernel(),  # never serve one kernel a table the other built
            )
            table = hash_memo.get_or_compute(
                hash_key,
                lambda: build_hash_table(partition, scans[step.alias], key_columns),
            )
            if not table:
                if stats is not None:
                    stats.combos_empty += 1
                if attrs is not None:
                    attrs["status"] = "empty"
                if recycle_key is not None:
                    recycle.store(recycle_key, combo, None, row_counts, first)
                return None, stats
            probe_columns = [edge.other(step.alias) for edge in step.edges]
            provider = probe_hash_join(
                provider, probe_columns, step.alias, partition, table
            )
            if provider.row_count() == 0:
                if stats is not None:
                    stats.combos_empty += 1
                if attrs is not None:
                    attrs["status"] = "empty"
                if recycle_key is not None:
                    recycle.store(recycle_key, combo, None, row_counts, first)
                return None, stats
        for residual in residuals:
            mask = residual.evaluate(provider).astype(bool)
            provider = provider.select(mask)
            if provider.row_count() == 0:
                if stats is not None:
                    stats.combos_empty += 1
                if attrs is not None:
                    attrs["status"] = "empty"
                if recycle_key is not None:
                    recycle.store(recycle_key, combo, None, row_counts, first)
                return None, stats
        if recycle_key is not None:
            recycle.store(recycle_key, combo, provider, row_counts, first)
        partial = partial_factory()
        n = aggregate_into(partial, provider, query.group_by, query.aggregates, sign)
        if stats is not None:
            stats.rows_aggregated += n
        if attrs is not None:
            attrs["rows_aggregated"] = n
        return partial, stats

    def _replay_recycled(
        self,
        query: AggregateQuery,
        hit,
        sign: int,
        stats: Optional[ExecutionStats],
        attrs: Optional[Dict[str, object]],
        partial_factory,
    ) -> Tuple[Optional[GroupedAggregates], Optional[ExecutionStats]]:
        """Fold a recycled subjoin: replay the stored stats/attrs the
        recompute would have produced, then aggregate the stored joined
        tuples live (group-by and aggregates belong to *this* query, not
        the producer's)."""
        if stats is not None:
            stats.probe_sides.append(hit.probe_side)
        if attrs is not None:
            attrs["rows_scanned"] = dict(sorted(hit.row_counts.items()))
            attrs["probe_side"] = hit.probe_side
            mapped = sorted(
                alias
                for alias, partition in hit.partitions.items()
                if getattr(partition, "storage_tier", "resident") == "mapped"
            )
            if mapped:
                attrs["tier"] = {alias: "mapped" for alias in mapped}
            attrs["recycled"] = True
        if hit.indices is None:
            if stats is not None:
                stats.combos_empty += 1
            if attrs is not None:
                attrs["status"] = "empty"
            return None, stats
        provider = JoinedProvider(dict(hit.partitions), dict(hit.indices))
        partial = partial_factory()
        n = aggregate_into(partial, provider, query.group_by, query.aggregates, sign)
        if stats is not None:
            stats.rows_aggregated += n
        if attrs is not None:
            attrs["rows_aggregated"] = n
        return partial, stats


def _physical_rows(combos: Sequence[ComboSpec]) -> int:
    """Summed physical row count over the distinct partitions referenced —
    a cheap upper bound on the scan work a combination list implies."""
    seen: Dict[int, int] = {}
    for combo in combos:
        for partition in combo.partitions.values():
            seen[id(partition)] = partition.row_count
    return sum(seen.values())
