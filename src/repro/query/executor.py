"""Partition-aware query execution (Section 2.3.1).

A query over partitioned tables is the union of its *subjoins*: one join per
combination of partitions, one partition per referenced table.  The executor
takes an explicit list of :class:`ComboSpec` combinations — the plain path
evaluates all ``k1 × ... × kt`` of them, the aggregate cache passes the
compensation subset (everything except the cached all-main combination),
and the object-aware layer passes a pruned subset plus per-combination
pushdown filters (Section 5.3).

Work that repeats across combinations referencing the same partition —
visible-row scans with local filters and join-side hash tables — is memoized
per ``execute`` call, which mirrors how a real engine would share scans
across union branches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..storage.catalog import Catalog
from ..storage.partition import Partition
from .aggregates import GroupedAggregates
from .expr import Col, Expr
from .operators import (
    JoinedProvider,
    aggregate_into,
    build_hash_table,
    probe_hash_join,
    scan_partition,
)
from .query import AggregateQuery, JoinEdge


@dataclass
class ComboSpec:
    """One subjoin: a partition per alias, plus per-alias pushdown filters.

    ``extra_filters`` carries combination-specific local predicates — the
    join-predicate-pushdown ranges derived from matching dependencies — that
    must be applied to that alias' scan *for this subjoin only*.

    ``fixed_rows`` pins an alias to an explicit row-index set *instead of*
    the snapshot-visibility scan.  The aggregate cache uses this for main
    compensation: the "invalidated rows" side and the "rows visible at entry
    creation" sides of the subtraction are both fixed sets that no current
    snapshot describes.  Local and extra filters still apply on top.
    """

    partitions: Dict[str, Partition]
    extra_filters: Dict[str, List[Expr]] = field(default_factory=dict)
    fixed_rows: Dict[str, np.ndarray] = field(default_factory=dict)

    def describe(self) -> str:
        """Compact '(alias:partition, ...)' rendering for stats/plans."""
        inner = ", ".join(
            f"{alias}:{part.name}" for alias, part in sorted(self.partitions.items())
        )
        return f"({inner})"


@dataclass
class ExecutionStats:
    """Counters filled during one ``execute`` call."""

    combos_evaluated: int = 0
    combos_empty: int = 0
    rows_aggregated: int = 0
    subjoins: List[str] = field(default_factory=list)


def all_partition_combos(
    query: AggregateQuery, catalog: Catalog
) -> List[Dict[str, Partition]]:
    """The full cartesian product of partitions per referenced table."""
    per_alias: List[List[Tuple[str, Partition]]] = []
    for ref in query.tables:
        table = catalog.table(ref.table)
        per_alias.append([(ref.alias, p) for p in table.partitions()])
    return [dict(chosen) for chosen in itertools.product(*per_alias)]


def main_only_combos(
    query: AggregateQuery, catalog: Catalog
) -> List[Dict[str, Partition]]:
    """Combinations in which every alias reads a main partition.

    A plain table contributes its one main; an aged table contributes its
    hot and cold mains, so a query over aged tables has several all-main
    combinations (one aggregate cache entry each, Section 5.4).
    """
    return [
        combo
        for combo in all_partition_combos(query, catalog)
        if all(p.kind == "main" for p in combo.values())
    ]


def _filter_fixed_rows(
    alias: str,
    partition: Partition,
    rows: np.ndarray,
    filters: Sequence[Expr],
) -> np.ndarray:
    """Apply local filters to an explicitly pinned row set."""
    from .operators import PartitionProvider

    rows = np.asarray(rows, dtype=np.int64)
    if not filters or not len(rows):
        return rows
    provider = PartitionProvider(alias, partition, rows)
    keep = np.ones(len(rows), dtype=bool)
    for expr in filters:
        keep &= expr.evaluate(provider).astype(bool)
    return rows[keep]


class _JoinStep:
    """One step of the left-deep join plan: the alias to add and its edges."""

    __slots__ = ("alias", "edges")

    def __init__(self, alias: str, edges: List[JoinEdge]):
        self.alias = alias
        self.edges = edges


class QueryExecutor:
    """Evaluates aggregate queries over explicit partition combinations."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, query: AggregateQuery) -> AggregateQuery:
        """Resolve unqualified column references and validate columns.

        Returns a new query in which every ``Col`` carries the alias of the
        unique table that owns the column; raises ``QueryError`` for unknown
        or ambiguous names.  Binding is idempotent: a query produced by this
        method is returned unchanged, so hot paths may re-bind freely.
        """
        if getattr(query, "_bound_by", None) is self._catalog:
            return query
        schemas = {
            ref.alias: self._catalog.table(ref.table).schema for ref in query.tables
        }

        def resolve(col: Col) -> Col:
            if col.alias is not None:
                schema = schemas.get(col.alias)
                if schema is None:
                    raise QueryError(f"unknown alias {col.alias!r}")
                if not schema.has_column(col.name):
                    raise QueryError(
                        f"table alias {col.alias!r} has no column {col.name!r}"
                    )
                return col
            owners = [
                alias for alias, schema in schemas.items() if schema.has_column(col.name)
            ]
            if not owners:
                raise QueryError(f"unknown column {col.name!r}")
            if len(owners) > 1:
                raise QueryError(
                    f"ambiguous column {col.name!r} (owned by {sorted(owners)})"
                )
            return Col(col.name, owners[0])

        for edge in query.join_edges:
            for alias, col in (
                (edge.left_alias, edge.left_col),
                (edge.right_alias, edge.right_col),
            ):
                if not schemas[alias].has_column(col):
                    raise QueryError(
                        f"join edge references missing column {alias}.{col}"
                    )
        bound = AggregateQuery(
            tables=query.tables,
            aggregates=[
                spec if spec.arg is None else type(spec)(
                    spec.func, spec.arg.map_columns(resolve), spec.output,
                    spec.distinct,
                )
                for spec in query.aggregates
            ],
            group_by=[resolve(col) for col in query.group_by],
            join_edges=query.join_edges,
            filters=[f.map_columns(resolve) for f in query.filters],
            order_by=query.order_by,
            limit=query.limit,
            group_labels=query.group_labels,
            having=query.having,
        )
        bound._bound_by = self._catalog
        return bound

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _join_plan(self, query: AggregateQuery) -> Tuple[str, List[_JoinStep]]:
        """Left-deep join order following the (connected) join graph."""
        remaining = [ref.alias for ref in query.tables]
        first = remaining.pop(0)
        joined = {first}
        steps: List[_JoinStep] = []
        while remaining:
            progressed = False
            for alias in list(remaining):
                edges = [
                    edge
                    for edge in query.join_edges
                    if alias in edge.aliases() and edge.other(alias)[0] in joined
                ]
                if edges:
                    steps.append(_JoinStep(alias, edges))
                    joined.add(alias)
                    remaining.remove(alias)
                    progressed = True
            if not progressed:  # pragma: no cover - guarded by query validation
                raise QueryError(f"disconnected join graph at {remaining}")
        return first, steps

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: AggregateQuery,
        snapshot: int,
        combos: Optional[Sequence[ComboSpec]] = None,
        into: Optional[GroupedAggregates] = None,
        sign: int = 1,
        stats: Optional[ExecutionStats] = None,
    ) -> GroupedAggregates:
        """Evaluate the union of the given subjoins into a grouped state.

        ``combos`` defaults to the full partition product.  ``into`` lets
        the aggregate cache fold compensation contributions into (a copy of)
        a cached value; ``sign=-1`` subtracts, for main compensation.
        """
        bound = self.bind(query)
        if combos is None:
            combos = [
                ComboSpec(partitions)
                for partitions in all_partition_combos(bound, self._catalog)
            ]
        grouped = into if into is not None else GroupedAggregates(bound.aggregates)
        first, steps = self._join_plan(bound)
        residuals = bound.residual_filters()
        local_filters = {ref.alias: bound.local_filters(ref.alias) for ref in bound.tables}
        scan_memo: Dict[Tuple, np.ndarray] = {}
        hash_memo: Dict[Tuple, Dict] = {}
        for combo in combos:
            self._execute_combo(
                bound,
                first,
                steps,
                residuals,
                local_filters,
                snapshot,
                combo,
                grouped,
                sign,
                scan_memo,
                hash_memo,
                stats,
            )
        return grouped

    def _scan(
        self,
        alias: str,
        combo: ComboSpec,
        local_filters: Dict[str, List[Expr]],
        snapshot: int,
        scan_memo: Dict[Tuple, np.ndarray],
    ) -> np.ndarray:
        partition = combo.partitions[alias]
        extra = combo.extra_filters.get(alias, [])
        fixed = combo.fixed_rows.get(alias)
        key = (
            alias,
            id(partition),
            tuple(sorted(e.canonical() for e in extra)),
            id(fixed) if fixed is not None else None,
        )
        rows = scan_memo.get(key)
        if rows is None:
            if fixed is not None:
                rows = _filter_fixed_rows(
                    alias, partition, fixed, local_filters[alias] + extra
                )
            else:
                rows = scan_partition(
                    alias, partition, snapshot, local_filters[alias] + extra
                )
            scan_memo[key] = rows
        return rows

    def _execute_combo(
        self,
        query: AggregateQuery,
        first: str,
        steps: List[_JoinStep],
        residuals: List[Expr],
        local_filters: Dict[str, List[Expr]],
        snapshot: int,
        combo: ComboSpec,
        grouped: GroupedAggregates,
        sign: int,
        scan_memo: Dict[Tuple, np.ndarray],
        hash_memo: Dict[Tuple, Dict],
        stats: Optional[ExecutionStats],
    ) -> None:
        missing = {ref.alias for ref in query.tables} - set(combo.partitions)
        if missing:
            raise QueryError(f"combo misses partitions for aliases {sorted(missing)}")
        if stats is not None:
            stats.combos_evaluated += 1
            stats.subjoins.append(combo.describe())
        rows = self._scan(first, combo, local_filters, snapshot, scan_memo)
        provider = JoinedProvider(
            {first: combo.partitions[first]}, {first: rows}
        )
        if provider.row_count() == 0:
            if stats is not None:
                stats.combos_empty += 1
            return
        for step in steps:
            partition = combo.partitions[step.alias]
            key_columns = tuple(edge.side_for(step.alias) for edge in step.edges)
            extra = combo.extra_filters.get(step.alias, [])
            fixed = combo.fixed_rows.get(step.alias)
            hash_key = (
                step.alias,
                id(partition),
                key_columns,
                tuple(sorted(e.canonical() for e in extra)),
                id(fixed) if fixed is not None else None,
            )
            table = hash_memo.get(hash_key)
            if table is None:
                hashed_rows = self._scan(
                    step.alias, combo, local_filters, snapshot, scan_memo
                )
                table = build_hash_table(partition, hashed_rows, key_columns)
                hash_memo[hash_key] = table
            if not table:
                if stats is not None:
                    stats.combos_empty += 1
                return
            probe_columns = [edge.other(step.alias) for edge in step.edges]
            provider = probe_hash_join(
                provider, probe_columns, step.alias, partition, table
            )
            if provider.row_count() == 0:
                if stats is not None:
                    stats.combos_empty += 1
                return
        for residual in residuals:
            mask = residual.evaluate(provider).astype(bool)
            provider = provider.select(mask)
            if provider.row_count() == 0:
                if stats is not None:
                    stats.combos_empty += 1
                return
        n = aggregate_into(grouped, provider, query.group_by, query.aggregates, sign)
        if stats is not None:
            stats.rows_aggregated += n
