"""Query model, SQL parser, and partition-aware execution."""

from .aggregates import AggFunc, AggregateSpec, GroupedAggregates
from .executor import (
    ComboSpec,
    ExecutionStats,
    QueryExecutor,
    all_partition_combos,
    main_only_combos,
)
from .expr import (
    And,
    Arith,
    Cmp,
    Col,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
    conjuncts_of,
    single_alias_of,
)
from .parallel import ParallelConfig, default_workers
from .query import AggregateQuery, JoinEdge, OrderItem, TableRef
from .result import QueryResult
from .sql import clear_parse_cache, parse_cache_stats, parse_sql

__all__ = [
    "AggFunc",
    "AggregateQuery",
    "AggregateSpec",
    "And",
    "Arith",
    "Cmp",
    "Col",
    "ComboSpec",
    "ExecutionStats",
    "Expr",
    "GroupedAggregates",
    "InList",
    "IsNull",
    "JoinEdge",
    "Lit",
    "Not",
    "Or",
    "OrderItem",
    "ParallelConfig",
    "QueryExecutor",
    "QueryResult",
    "TableRef",
    "all_partition_combos",
    "clear_parse_cache",
    "conjuncts_of",
    "default_workers",
    "main_only_combos",
    "parse_cache_stats",
    "parse_sql",
    "single_alias_of",
]
