"""Aggregate functions, accumulators, and grouped aggregation state.

The aggregate cache only admits queries whose aggregate functions are
*self-maintainable* (Section 2.1): SUM, COUNT, and AVG (kept internally as
SUM + COUNT).  Self-maintainability is what makes both directions of
compensation algebraic — delta records are *added* into the cached groups,
invalidated main records are *subtracted* — without touching base data
beyond the changed rows.  Every cached value carries COUNT(*) per group
(Fig. 2) so a group whose row count reaches zero can be retired.

MIN and MAX are supported by the plain executor but are rejected by the
cache, exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CacheError, QueryError
from .expr import Expr


class AggFunc(enum.Enum):
    """Supported aggregate functions."""

    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"

    @property
    def self_maintainable(self) -> bool:
        """Whether incremental add/subtract maintenance is possible."""
        return self in (AggFunc.SUM, AggFunc.COUNT, AggFunc.AVG)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in the SELECT list.

    ``arg`` is ``None`` for ``COUNT(*)``.  ``output`` is the result-column
    name (the AS alias, or a generated one).  ``distinct`` marks
    ``COUNT(DISTINCT expr)`` — supported by the executor but *not*
    self-maintainable (a distinct set cannot be subtracted from), so such
    queries fall back to uncached execution like MIN/MAX.
    """

    func: AggFunc
    arg: Optional[Expr]
    output: str
    distinct: bool = False

    def __post_init__(self):
        if self.arg is None and self.func is not AggFunc.COUNT:
            raise QueryError(f"{self.func.value} requires an argument")
        if self.distinct and (self.func is not AggFunc.COUNT or self.arg is None):
            raise QueryError("DISTINCT is only supported for COUNT(expr)")

    @property
    def is_count_star(self) -> bool:
        """True for COUNT(*)."""
        return self.func is AggFunc.COUNT and self.arg is None

    @property
    def self_maintainable(self) -> bool:
        """Whether this aggregate supports signed incremental maintenance."""
        return self.func.self_maintainable and not self.distinct

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        arg = "*" if self.arg is None else self.arg.canonical()
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func.value}({prefix}{arg})"

    def rebind(self, alias_map) -> "AggregateSpec":
        """Copy with table aliases substituted per ``alias_map``."""
        arg = self.arg.rebind(alias_map) if self.arg is not None else None
        return AggregateSpec(self.func, arg, self.output, self.distinct)


# Internal accumulator state per (group, aggregate):
#   SUM / AVG        -> [sum, non-null count]
#   COUNT            -> [count]
#   COUNT DISTINCT   -> [set of seen values]
#   MIN              -> [value or None]
#   MAX              -> [value or None]
GroupKey = Tuple


class GroupedAggregates:
    """Mutable grouped aggregation state supporting signed accumulation.

    This object is both the executor's aggregation sink and the *aggregate
    cache value*: an entry stores one of these (computed on the mains), a
    query-time copy absorbs delta compensation with ``sign=+1`` and main
    compensation with ``sign=-1``, and ``finalize`` renders the result rows.
    """

    __slots__ = ("specs", "_groups", "_count_star")

    def __init__(self, specs: Sequence[AggregateSpec]):
        self.specs: List[AggregateSpec] = list(specs)
        self._groups: Dict[GroupKey, List[list]] = {}
        self._count_star: Dict[GroupKey, int] = {}

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def _new_states(self) -> List[list]:
        states: List[list] = []
        for spec in self.specs:
            if spec.func in (AggFunc.SUM, AggFunc.AVG):
                # The sum starts at integer 0, not 0.0: integer columns then
                # accumulate through Python's arbitrary-precision ints and
                # stay exact past 2**53, while float contributions promote
                # the state to float with bit-identical results (0 + x and
                # 0.0 + x round the same for every float x).
                states.append([0, 0])
            elif spec.func is AggFunc.COUNT:
                states.append([set()] if spec.distinct else [0])
            else:  # MIN / MAX
                states.append([None])
        return states

    def accumulate(
        self,
        keys: Sequence[GroupKey],
        agg_columns: Sequence[np.ndarray],
        sign: int = 1,
    ) -> None:
        """Fold rows into the groups.

        ``keys`` has one group key per row; ``agg_columns`` has one value
        array per aggregate spec (ignored entry for COUNT(*)).  ``sign=-1``
        subtracts — only legal when every aggregate is self-maintainable.
        """
        if sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")
        if sign == -1:
            self._require_self_maintainable("subtract from")
        groups = self._groups
        count_star = self._count_star
        specs = self.specs
        for row, key in enumerate(keys):
            states = groups.get(key)
            if states is None:
                states = self._new_states()
                groups[key] = states
                count_star[key] = 0
            count_star[key] += sign
            for i, spec in enumerate(specs):
                state = states[i]
                if spec.func in (AggFunc.SUM, AggFunc.AVG):
                    value = agg_columns[i][row]
                    if value is not None:
                        state[0] += sign * value
                        state[1] += sign
                elif spec.func is AggFunc.COUNT:
                    if spec.arg is None:
                        state[0] += sign
                    elif spec.distinct:
                        value = agg_columns[i][row]
                        if value is not None:
                            state[0].add(value)
                    else:
                        value = agg_columns[i][row]
                        if value is not None:
                            state[0] += sign
                elif spec.func is AggFunc.MIN:
                    value = agg_columns[i][row]
                    if value is not None and (state[0] is None or value < state[0]):
                        state[0] = value
                else:  # MAX
                    value = agg_columns[i][row]
                    if value is not None and (state[0] is None or value > state[0]):
                        state[0] = value
        self._retire_empty_groups()

    def accumulate_groups(
        self,
        keys: Sequence[GroupKey],
        spec_states: Sequence[Sequence],
        count_star: Sequence[int],
        sign: int = 1,
    ) -> None:
        """Fold *pre-aggregated* group contributions (vectorized fast path).

        ``spec_states[i][g]`` is the aggregated contribution of group ``g``
        for spec ``i``: a ``(sum, non-null count)`` pair for SUM/AVG, a bare
        count for COUNT.  Only self-maintainable specs are supported — the
        executor falls back to :meth:`accumulate` otherwise.
        """
        if sign == -1:
            self._require_self_maintainable("subtract from")
        groups = self._groups
        stars = self._count_star
        specs = self.specs
        for g, key in enumerate(keys):
            states = groups.get(key)
            if states is None:
                states = self._new_states()
                groups[key] = states
                stars[key] = 0
            stars[key] += sign * int(count_star[g])
            for i, spec in enumerate(specs):
                state = states[i]
                contribution = spec_states[i][g]
                if spec.func in (AggFunc.SUM, AggFunc.AVG):
                    state[0] += sign * contribution[0]
                    state[1] += sign * int(contribution[1])
                elif spec.func is AggFunc.COUNT:
                    state[0] += sign * int(contribution)
                else:  # pragma: no cover - guarded by caller
                    raise CacheError(
                        "accumulate_groups requires self-maintainable specs"
                    )
        self._retire_empty_groups()

    def merge(self, other: "GroupedAggregates", sign: int = 1) -> None:
        """Fold another grouped state into this one (cache compensation).

        ``other`` is not mutated.  Spec compatibility is checked by object
        identity first (the common case: both sides were built from the same
        bound query) before falling back to canonical comparison.
        """
        if self.specs is not other.specs and [
            s.canonical() for s in self.specs
        ] != [s.canonical() for s in other.specs]:
            raise CacheError("cannot merge grouped aggregates with different specs")
        if sign == -1:
            self._require_self_maintainable("subtract from")
        for key, other_states in other._groups.items():
            states = self._groups.get(key)
            if states is None:
                states = self._new_states()
                self._groups[key] = states
                self._count_star[key] = 0
            self._count_star[key] += sign * other._count_star[key]
            for i, spec in enumerate(self.specs):
                state = states[i]
                other_state = other_states[i]
                if spec.func in (AggFunc.SUM, AggFunc.AVG):
                    state[0] += sign * other_state[0]
                    state[1] += sign * other_state[1]
                elif spec.func is AggFunc.COUNT:
                    if spec.distinct:
                        state[0] |= other_state[0]
                    else:
                        state[0] += sign * other_state[0]
                elif spec.func is AggFunc.MIN:
                    if other_state[0] is not None and (
                        state[0] is None or other_state[0] < state[0]
                    ):
                        state[0] = other_state[0]
                else:  # MAX
                    if other_state[0] is not None and (
                        state[0] is None or other_state[0] > state[0]
                    ):
                        state[0] = other_state[0]
        self._retire_empty_groups()

    def _require_self_maintainable(self, action: str) -> None:
        for spec in self.specs:
            if not spec.self_maintainable:
                raise CacheError(
                    f"cannot {action} non-self-maintainable aggregate "
                    f"{spec.canonical()}"
                )

    def _retire_empty_groups(self) -> None:
        dead = [key for key, n in self._count_star.items() if n == 0]
        for key in dead:
            del self._groups[key]
            del self._count_star[key]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def group_count(self) -> int:
        """Number of live groups."""
        return len(self._groups)

    def count_star(self, key: GroupKey) -> int:
        """COUNT(*) of one group (0 if absent)."""
        return self._count_star.get(key, 0)

    def keys(self) -> Iterable[GroupKey]:
        """The live group keys."""
        return self._groups.keys()

    def raw_states(self, key: GroupKey) -> List[list]:
        """The internal accumulator states of one group (copied)."""
        return [list(state) for state in self._groups[key]]

    def finalize(self) -> List[Tuple]:
        """Render result rows: group key columns followed by aggregate values.

        AVG resolves to sum/count (NULL for empty), SUM over no non-null
        input is NULL per SQL semantics.
        """
        rows: List[Tuple] = []
        for key, states in self._groups.items():
            out: List[object] = list(key)
            for i, spec in enumerate(self.specs):
                state = states[i]
                if spec.func is AggFunc.SUM:
                    out.append(state[0] if state[1] > 0 else None)
                elif spec.func is AggFunc.AVG:
                    out.append(state[0] / state[1] if state[1] > 0 else None)
                elif spec.func is AggFunc.COUNT:
                    out.append(len(state[0]) if spec.distinct else state[0])
                else:
                    out.append(state[0])
            rows.append(tuple(out))
        return rows

    def new_like(self) -> "GroupedAggregates":
        """An empty grouped state *sharing* this one's specs list.

        The parallel executor builds per-subjoin partials this way so that
        folding them back hits :meth:`merge`'s fast identity check instead
        of comparing canonical spec forms on every subjoin.
        """
        fresh = GroupedAggregates(())
        fresh.specs = self.specs
        return fresh

    def copy(self) -> "GroupedAggregates":
        """Deep copy (independent accumulator states; specs list shared)."""
        out = self.new_like()
        out._groups = {k: [list(s) for s in states] for k, states in self._groups.items()}
        out._count_star = dict(self._count_star)
        return out

    def total_rows_aggregated(self) -> int:
        """Sum of COUNT(*) over all groups (a cache-metrics input)."""
        return sum(self._count_star.values())

    def approximate_nbytes(self) -> int:
        """Rough size of the grouped state, used by cache metrics/eviction."""
        per_group = 48 + 24 * max(1, len(self.specs))
        return len(self._groups) * per_group

    def __repr__(self) -> str:
        return (
            f"GroupedAggregates(groups={len(self._groups)}, "
            f"specs=[{', '.join(s.canonical() for s in self.specs)}])"
        )
