"""Query results: ordered rows with named columns.

Wraps a finalized :class:`GroupedAggregates` into something applications can
consume — stable ordering, dict access, text rendering — and that tests can
compare across execution strategies.
"""

from __future__ import annotations

import math
import numbers
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from .aggregates import GroupedAggregates
from .query import AggregateQuery, OrderItem


def _sort_key_for(value):
    """Total order with NULLs first and mixed types grouped by type name.

    All real numbers share one group regardless of machine type: execution
    paths that fold partials differently may yield a Python ``float`` where
    another yields a NumPy ``float64`` for the same quantity, and ORDER BY
    must not split equal-valued rows into per-type blocks.
    """
    if isinstance(value, numbers.Real) and not isinstance(value, bool):
        return (True, "number", value)
    return (value is not None, type(value).__name__, value)


class QueryResult:
    """Immutable tabular result of an aggregate query."""

    def __init__(self, columns: Sequence[str], rows: Sequence[Tuple]):
        self.columns: List[str] = list(columns)
        self.rows: List[Tuple] = list(rows)
        #: The CacheQueryReport of the query that produced this result.
        #: Attached by ``Database.query`` so concurrent callers each get
        #: their own report with their own result (``db.last_report`` is
        #: only a convenience view of the calling thread's last query).
        self.report = None
        #: The QueryTrace when the result came from ``explain_analyze``.
        self.trace = None
        for row in self.rows:
            if len(row) != len(self.columns):
                raise QueryError(
                    f"row width {len(row)} != column count {len(self.columns)}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_grouped(
        cls,
        query: AggregateQuery,
        grouped: GroupedAggregates,
    ) -> "QueryResult":
        """Finalize grouped state and apply the query's ORDER BY / LIMIT."""
        return cls.from_rows(query, grouped.finalize())

    @classmethod
    def from_rows(
        cls,
        query: AggregateQuery,
        rows: Sequence[Tuple],
    ) -> "QueryResult":
        """Wrap pre-finalized rows, applying HAVING / ORDER BY / LIMIT."""
        columns = query.output_columns()
        if query.having is not None:
            rows = _apply_having(query.having, columns, rows)
        result = cls(columns, rows)
        if query.order_by:
            result = result.sorted_by(query.order_by)
        else:
            # Deterministic default order (by group key) so repeated runs and
            # different execution strategies compare equal.
            result = result.sorted_by(
                [OrderItem(c) for c in columns[: len(query.group_by)]]
            )
        if query.limit is not None:
            result = cls(result.columns, result.rows[: query.limit])
        return result

    # ------------------------------------------------------------------
    def column_index(self, name: str) -> int:
        """Position of an output column (QueryError if absent)."""
        try:
            return self.columns.index(name)
        except ValueError:
            raise QueryError(f"result has no column {name!r}") from None

    def column_values(self, name: str) -> List[object]:
        """All values of one output column, row order."""
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, object]]:
        """Rows as dicts keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted_by(self, order: Sequence[OrderItem]) -> "QueryResult":
        """Copy sorted by the given ORDER BY items (NULLs first)."""
        rows = list(self.rows)
        for item in reversed(order):
            idx = self.column_index(item.column)
            rows.sort(key=lambda row: _sort_key_for(row[idx]), reverse=item.descending)
        return QueryResult(self.columns, rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        """Order-insensitive comparison with float tolerance.

        Incremental maintenance adds and subtracts float contributions, so
        SUM/AVG values may drift by a few ULPs relative to a from-scratch
        computation; ``==`` treats such values as equal.
        """
        if not isinstance(other, QueryResult):
            return NotImplemented
        if self.columns != other.columns or len(self.rows) != len(other.rows):
            return False
        mine = sorted(self.rows, key=lambda r: tuple(_sort_key_for(v) for v in r))
        theirs = sorted(other.rows, key=lambda r: tuple(_sort_key_for(v) for v in r))
        return all(
            _values_close(a, b) for row_a, row_b in zip(mine, theirs)
            for a, b in zip(row_a, row_b)
        )

    def __hash__(self):  # pragma: no cover
        raise TypeError("QueryResult is unhashable")

    # ------------------------------------------------------------------
    def to_text(self, max_rows: Optional[int] = 25) -> str:
        """Plain-text table rendering for examples and debugging."""
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in cells
        ]
        footer = []
        if max_rows is not None and len(self.rows) > max_rows:
            footer.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join([header, rule] + body + footer)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"


class _RowsProvider:
    """Column provider over finalized result rows, keyed by output name."""

    def __init__(self, columns, rows):
        self._index = {name: i for i, name in enumerate(columns)}
        self._rows = rows

    def get(self, alias, name):
        """Values of one output column (QueryError for unknown names)."""
        try:
            idx = self._index[name]
        except KeyError:
            raise QueryError(f"HAVING references unknown output column {name!r}")
        import numpy as np

        out = np.empty(len(self._rows), dtype=object)
        for pos, row in enumerate(self._rows):
            out[pos] = row[idx]
        return out

    def row_count(self):
        """Number of result rows."""
        return len(self._rows)


def _apply_having(having, columns, rows) -> List[Tuple]:
    rows = list(rows)
    if not rows:
        return rows
    mask = having.evaluate(_RowsProvider(columns, rows))
    return [row for row, keep in zip(rows, mask) if keep]


def _values_close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(b, float) and isinstance(a, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def _fmt(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
