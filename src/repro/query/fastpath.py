"""Code-space filter evaluation — scanning compressed data.

A column store evaluates simple predicates against the *dictionary* rather
than the decoded rows: an equality looks the literal up once (absence means
an all-false mask without touching a single row), and a range comparison on
a sorted main dictionary reduces to a code-rank comparison.  This module
recognizes the predicate shapes that allow it —

    Col <op> Lit      and      Lit <op> Col

— and produces the row mask from the fragment's code vector directly.
Anything else falls back to the generic decoded-array evaluation.  The
paper's join predicate pushdown (Section 5.3: evaluating the derived tid
filters on the partitions) benefits the most: the pushed-down range is
evaluated without decompressing the column.
"""

from __future__ import annotations

import bisect
from typing import Optional

import numpy as np

from ..storage.column import ColumnFragment
from ..storage.dictionary import MainDictionary
from .expr import Cmp, Col, Expr, Lit

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _normalize(expr: Expr):
    """Return (column name, op, literal value) for a Col-vs-Lit comparison."""
    if not isinstance(expr, Cmp):
        return None
    if isinstance(expr.left, Col) and isinstance(expr.right, Lit):
        return expr.left.name, expr.op, expr.right.value
    if isinstance(expr.left, Lit) and isinstance(expr.right, Col):
        return expr.right.name, _FLIP[expr.op], expr.left.value
    return None


def fast_filter_mask(
    expr: Expr, partition, alias: Optional[str] = None
) -> Optional[np.ndarray]:
    """Row mask for a simple comparison, or ``None`` if not applicable.

    The mask covers *all* physical rows of the partition; the caller
    intersects it with visibility.  NULL rows never pass (code ``-1`` maps
    to the always-false slot), matching SQL comparison semantics.
    """
    normalized = _normalize(expr)
    if normalized is None:
        return None
    name, op, value = normalized
    if value is None:
        return None  # comparisons against NULL are all-false, but rare; fall back
    refs = expr.column_refs()
    if alias is not None and any(a not in (None, alias) for a, _ in refs):
        return None
    try:
        fragment: ColumnFragment = partition.column(name)
    except Exception:
        return None
    codes = fragment.codes()
    if op == "=":
        return fragment.equality_mask(value)
    dictionary = fragment.dictionary
    if op == "!=":
        code = dictionary.lookup(value)
        if code is None:
            # Everything non-NULL differs from an absent value.
            return codes != -1
        return (codes != code) & (codes != -1)
    # Range operators: build an allowed-codes table from the dictionary.
    values = dictionary.values()
    if not values:
        return np.zeros(len(codes), dtype=bool)
    try:
        if isinstance(dictionary, MainDictionary):
            allowed = _sorted_range_allowed(values, op, value)
        else:
            allowed = _generic_range_allowed(values, op, value)
    except TypeError:
        return None  # incomparable literal type; fall back to generic eval
    # lut[code + 1]: slot 0 is the NULL code (-1), always false.
    lut = np.zeros(len(values) + 1, dtype=bool)
    lut[1:] = allowed
    return lut[codes + 1]


def _sorted_range_allowed(values, op: str, value) -> np.ndarray:
    """Allowed-code mask via binary search on a sorted dictionary (O(log n))."""
    n = len(values)
    allowed = np.zeros(n, dtype=bool)
    if op == "<":
        allowed[: bisect.bisect_left(values, value)] = True
    elif op == "<=":
        allowed[: bisect.bisect_right(values, value)] = True
    elif op == ">":
        allowed[bisect.bisect_right(values, value):] = True
    elif op == ">=":
        allowed[bisect.bisect_left(values, value):] = True
    return allowed


def _generic_range_allowed(values, op: str, value) -> np.ndarray:
    """Allowed-code mask for an unsorted (delta) dictionary (O(distinct))."""
    if op == "<":
        return np.fromiter((v < value for v in values), dtype=bool, count=len(values))
    if op == "<=":
        return np.fromiter((v <= value for v in values), dtype=bool, count=len(values))
    if op == ">":
        return np.fromiter((v > value for v in values), dtype=bool, count=len(values))
    return np.fromiter((v >= value for v in values), dtype=bool, count=len(values))
