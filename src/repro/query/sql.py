"""A small SQL SELECT parser producing :class:`AggregateQuery` objects.

Supports the aggregate-query dialect the paper's workloads use (e.g. the
Listing-1 profit-and-loss query and the adapted CH-benCHmark queries):

.. code-block:: sql

    SELECT D.Name AS Category, SUM(I.Price) AS Profit
    FROM Header AS H, Item AS I, ProductCategory AS D
    WHERE I.HeaderID = H.HeaderID
      AND I.CategoryID = D.CategoryID
      AND D.Language = 'ENG'
      AND H.FiscalYear = 2013
    GROUP BY D.Name
    ORDER BY Profit DESC
    LIMIT 10

Grammar (informal): ``SELECT`` items are either plain column references
(which must also appear in ``GROUP BY``) or aggregate calls ``SUM | COUNT |
AVG | MIN | MAX`` over an expression or ``*``; ``FROM`` accepts a comma list
with optional ``AS`` aliases and ``[INNER] JOIN ... ON`` clauses; ``WHERE``
is split into equi-join edges and filters; expressions support comparisons,
``AND``/``OR``/``NOT``, ``IN``, ``BETWEEN``, ``IS [NOT] NULL``, and ``+ - *
/`` arithmetic.  Keywords are case-insensitive, identifiers are preserved.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

from ..errors import SqlSyntaxError
from .aggregates import AggFunc, AggregateSpec
from .expr import (
    And,
    Arith,
    Cmp,
    Col,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
    conjuncts_of,
)
from .query import AggregateQuery, JoinEdge, OrderItem, TableRef

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\.|\*|\+|-|/)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AS", "AND",
    "OR", "NOT", "IN", "IS", "NULL", "BETWEEN", "ASC", "DESC", "JOIN",
    "INNER", "ON", "HAVING",
}

_AGG_FUNCS = {f.value for f in AggFunc}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind  # "number" | "string" | "ident" | "op" | "kw" | "eof"
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlSyntaxError(f"unexpected character {sql[pos]!r}", pos)
        if match.lastgroup != "ws":
            text = match.group()
            kind = match.lastgroup
            if kind == "ident" and text.upper() in _KEYWORDS:
                kind, text = "kw", text.upper()
            tokens.append(_Token(kind, text, pos))
        pos = match.end()
    tokens.append(_Token("eof", "", pos))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = _tokenize(sql)
        self._index = 0
        self._agg_counter = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._accept(kind, text)
        if token is None:
            found = self._peek()
            wanted = text or kind
            raise SqlSyntaxError(
                f"expected {wanted!r}, found {found.text or 'end of input'!r}",
                found.pos,
            )
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self._peek().pos)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def parse(self) -> AggregateQuery:
        """Parse the statement into an AggregateQuery."""
        self._expect("kw", "SELECT")
        select_items = self._select_list()
        self._expect("kw", "FROM")
        tables, join_conditions = self._from_clause()
        where: Optional[Expr] = None
        if self._accept("kw", "WHERE"):
            where = self._expression()
        group_by: List[Col] = []
        if self._accept("kw", "GROUP"):
            self._expect("kw", "BY")
            group_by = self._column_list()
        having: Optional[Expr] = None
        if self._accept("kw", "HAVING"):
            having = self._expression()
        order_by: List[OrderItem] = []
        if self._accept("kw", "ORDER"):
            self._expect("kw", "BY")
            order_by = self._order_list()
        limit: Optional[int] = None
        if self._accept("kw", "LIMIT"):
            token = self._expect("number")
            try:
                limit = int(token.text)
            except ValueError:
                raise SqlSyntaxError("LIMIT requires an integer", token.pos) from None
        self._expect("eof")

        join_edges, filters = self._split_where(where, join_conditions)
        aggregates, plain_cols = [], []
        for item in select_items:
            if isinstance(item, AggregateSpec):
                aggregates.append(item)
            else:
                plain_cols.append(item)
        if not group_by:
            group_by = [col for col, _label in plain_cols]
        self._check_plain_columns([c for c, _l in plain_cols], group_by)
        labels = self._group_labels(group_by, plain_cols)
        return AggregateQuery(
            tables=tables,
            aggregates=aggregates,
            group_by=group_by,
            join_edges=join_edges,
            filters=filters,
            order_by=order_by,
            limit=limit,
            group_labels=labels,
            having=having,
        )

    @staticmethod
    def _group_labels(group_by, plain_cols) -> List[str]:
        """Output labels for group columns: the SELECT-list AS alias when a
        select item references the same column, the column name otherwise."""
        by_canonical = {col.canonical(): label for col, label in plain_cols}
        by_name = {col.name: label for col, label in plain_cols}
        labels = []
        for col in group_by:
            label = by_canonical.get(col.canonical()) or by_name.get(col.name)
            labels.append(label if label is not None else col.name)
        return labels

    def _check_plain_columns(self, plain: List[Col], group_by: List[Col]) -> None:
        group_keys = {c.canonical() for c in group_by}
        group_names = {c.name for c in group_by}
        for col in plain:
            if col.canonical() not in group_keys and col.name not in group_names:
                raise SqlSyntaxError(
                    f"non-aggregated column {col.canonical()!r} "
                    "must appear in GROUP BY",
                )

    # ------------------------------------------------------------------
    # clauses
    # ------------------------------------------------------------------
    def _select_list(self):
        items = [self._select_item()]
        while self._accept("op", ","):
            items.append(self._select_item())
        return items

    def _select_item(self):
        token = self._peek()
        if token.kind == "ident" and token.text.upper() in _AGG_FUNCS:
            after = self._tokens[self._index + 1]
            if after.kind == "op" and after.text == "(":
                return self._aggregate_call()
        col = self._column_ref()
        label = col.name
        if self._accept("kw", "AS"):
            label = self._expect("ident").text
        return (col, label)

    def _aggregate_call(self) -> AggregateSpec:
        func_token = self._next()
        func = AggFunc(func_token.text.upper())
        self._expect("op", "(")
        distinct = False
        arg: Optional[Expr]
        if self._accept("op", "*"):
            if func is not AggFunc.COUNT:
                raise self._error(f"{func.value}(*) is not valid")
            arg = None
        else:
            if (
                self._peek().kind == "ident"
                and self._peek().text.upper() == "DISTINCT"
            ):
                if func is not AggFunc.COUNT:
                    raise self._error("DISTINCT is only supported in COUNT")
                self._next()
                distinct = True
            arg = self._expression()
        self._expect("op", ")")
        if self._accept("kw", "AS"):
            output = self._expect("ident").text
        else:
            self._agg_counter += 1
            output = f"{func.value.lower()}_{self._agg_counter}"
        return AggregateSpec(func, arg, output, distinct)

    def _from_clause(self) -> Tuple[List[TableRef], List[Expr]]:
        tables = [self._table_ref()]
        join_conditions: List[Expr] = []
        while True:
            if self._accept("op", ","):
                tables.append(self._table_ref())
                continue
            if self._peek().kind == "kw" and self._peek().text in ("JOIN", "INNER"):
                if self._accept("kw", "INNER"):
                    self._expect("kw", "JOIN")
                else:
                    self._expect("kw", "JOIN")
                tables.append(self._table_ref())
                self._expect("kw", "ON")
                join_conditions.append(self._expression())
                continue
            break
        return tables, join_conditions

    def _table_ref(self) -> TableRef:
        name = self._expect("ident").text
        alias = name
        if self._accept("kw", "AS"):
            alias = self._expect("ident").text
        elif self._peek().kind == "ident":
            alias = self._next().text
        return TableRef(name, alias)

    def _column_list(self) -> List[Col]:
        cols = [self._column_ref()]
        while self._accept("op", ","):
            cols.append(self._column_ref())
        return cols

    def _column_ref(self) -> Col:
        first = self._expect("ident").text
        if self._accept("op", "."):
            second = self._expect("ident").text
            return Col(second, first)
        return Col(first)

    def _order_list(self) -> List[OrderItem]:
        items = [self._order_item()]
        while self._accept("op", ","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> OrderItem:
        name = self._expect("ident").text
        descending = False
        if self._accept("kw", "DESC"):
            descending = True
        else:
            self._accept("kw", "ASC")
        return OrderItem(name, descending)

    # ------------------------------------------------------------------
    # expressions (precedence: OR < AND < NOT < predicate < add < mul < unary)
    # ------------------------------------------------------------------
    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        items = [self._and_expr()]
        while self._accept("kw", "OR"):
            items.append(self._and_expr())
        return items[0] if len(items) == 1 else Or(items)

    def _and_expr(self) -> Expr:
        items = [self._not_expr()]
        while self._accept("kw", "AND"):
            items.append(self._not_expr())
        return items[0] if len(items) == 1 else And(items)

    def _not_expr(self) -> Expr:
        if self._accept("kw", "NOT"):
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "op" and token.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self._next()
            op = "!=" if token.text == "<>" else token.text
            right = self._additive()
            return Cmp(op, left, right)
        if token.kind == "kw" and token.text == "IS":
            self._next()
            negated = self._accept("kw", "NOT") is not None
            self._expect("kw", "NULL")
            return IsNull(left, negated)
        if token.kind == "kw" and token.text == "IN":
            self._next()
            self._expect("op", "(")
            values = [self._literal_value()]
            while self._accept("op", ","):
                values.append(self._literal_value())
            self._expect("op", ")")
            return InList(left, values)
        if token.kind == "kw" and token.text == "BETWEEN":
            self._next()
            low = self._additive()
            self._expect("kw", "AND")
            high = self._additive()
            return And([Cmp(">=", left, low), Cmp("<=", left, high)])
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._next()
                left = Arith(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/"):
                self._next()
                left = Arith(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._accept("op", "-"):
            return Arith("-", Lit(0), self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._next()
            is_float = "." in token.text or "e" in token.text or "E" in token.text
            return Lit(float(token.text) if is_float else int(token.text))
        if token.kind == "string":
            self._next()
            return Lit(token.text[1:-1].replace("''", "'"))
        if token.kind == "kw" and token.text == "NULL":
            self._next()
            return Lit(None)
        if token.kind == "op" and token.text == "(":
            self._next()
            inner = self._expression()
            self._expect("op", ")")
            return inner
        if token.kind == "ident":
            return self._column_ref()
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _literal_value(self):
        expr = self._primary()
        if not isinstance(expr, Lit):
            raise self._error("IN list elements must be literals")
        return expr.value

    # ------------------------------------------------------------------
    # WHERE splitting
    # ------------------------------------------------------------------
    def _split_where(
        self, where: Optional[Expr], join_conditions: List[Expr]
    ) -> Tuple[List[JoinEdge], List[Expr]]:
        """Split conjuncts into equi-join edges and plain filters."""
        conjuncts: List[Expr] = []
        for condition in join_conditions:
            conjuncts.extend(conjuncts_of(condition))
        if where is not None:
            conjuncts.extend(conjuncts_of(where))
        edges: List[JoinEdge] = []
        filters: List[Expr] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, Cmp) and conjunct.is_equi_join():
                left: Col = conjunct.left  # type: ignore[assignment]
                right: Col = conjunct.right  # type: ignore[assignment]
                edges.append(
                    JoinEdge(left.alias, left.name, right.alias, right.name)
                )
            else:
                filters.append(conjunct)
        return edges, filters


# ---------------------------------------------------------------------------
# parse cache
# ---------------------------------------------------------------------------
# Byte-identical statements are common (the aggregate cache exists because
# workloads repeat queries), so raw SQL → parsed template is memoized in a
# small bounded LRU.  Callers receive a *clone* of the cached template: the
# clone shares only immutable parts, so mutating a returned query (or
# binding it against a catalog) can never poison the cache.
_PARSE_CACHE_CAPACITY = 256
_parse_cache: "OrderedDict[str, AggregateQuery]" = OrderedDict()
_parse_cache_lock = threading.Lock()
_parse_cache_hits = 0
_parse_cache_misses = 0


def parse_sql(sql: str) -> AggregateQuery:
    """Parse a SELECT statement into an :class:`AggregateQuery`.

    Cached per byte-identical statement text; the returned object is a
    private copy, safe to mutate or bind.
    """
    global _parse_cache_hits, _parse_cache_misses
    with _parse_cache_lock:
        template = _parse_cache.get(sql)
        if template is not None:
            _parse_cache.move_to_end(sql)
            _parse_cache_hits += 1
    if template is None:
        template = _Parser(sql).parse()
        with _parse_cache_lock:
            _parse_cache_misses += 1
            _parse_cache[sql] = template
            while len(_parse_cache) > _PARSE_CACHE_CAPACITY:
                _parse_cache.popitem(last=False)
    return template.clone()


def parse_cache_stats() -> dict:
    """Lifetime hit/miss/size counters of the parse cache."""
    with _parse_cache_lock:
        return {
            "entries": len(_parse_cache),
            "hits": _parse_cache_hits,
            "misses": _parse_cache_misses,
            "capacity": _PARSE_CACHE_CAPACITY,
        }


def clear_parse_cache() -> None:
    """Empty the parse cache (tests; counters keep accumulating)."""
    with _parse_cache_lock:
        _parse_cache.clear()
