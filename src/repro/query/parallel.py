"""Intra-query parallelism configuration for the subjoin executor.

A query over partitioned tables is a union of independent subjoins (one per
:class:`~repro.query.executor.ComboSpec`), which makes it embarrassingly
parallel: the executor shards the combination list across a worker pool,
each worker folds its subjoins into a private grouped state, and the
partials are merged back in combination order — so a parallel run performs
the *same floating-point additions in the same order* as a serial run and
the results are bit-identical.

:class:`ParallelConfig` carries the knobs; the serial fallback triggers
automatically when the combination list or the scanned row volume is too
small to amortize task dispatch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..envutil import env_int

#: Environment variable overriding the auto-detected worker count.
N_WORKERS_ENV = "REPRO_N_WORKERS"

MEMO_SHARED = "shared"
MEMO_PRIVATE = "private"


def default_workers() -> int:
    """Worker count to use for ``n_workers=None``: the ``REPRO_N_WORKERS``
    environment variable if set, otherwise the machine's CPU count.

    Parsing follows the shared :mod:`repro.envutil` contract: a malformed
    value warns (once) and falls back to the CPU count, while an explicit
    ``0`` or negative is rejected outright — unlike a typo it expresses
    clear intent, and guessing what the caller meant (serial? crash?)
    would mask the misconfiguration.
    """
    return env_int(N_WORKERS_ENV, default=os.cpu_count() or 1, minimum=1)


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for parallel subjoin execution.

    ``n_workers``
        Pool size.  ``1`` disables parallelism entirely.
    ``min_combos``
        Serial fallback when fewer combinations than this are submitted —
        a 3-combination compensation query gains nothing from a pool.
    ``min_rows``
        Serial fallback when the summed physical row count of all
        referenced partitions (a cheap upper bound on scan work) is below
        this — tiny tables are dominated by dispatch overhead.
    ``memo``
        ``"shared"`` — one lock-striped scan/hash-table memo shared by all
        workers (work never duplicated, stripes contend);
        ``"private"`` — one memo per worker thread (zero contention, a
        partition scanned by subjoins on different workers is scanned once
        per worker).  ``bench_parallel_subjoins.py`` measures both.
    """

    n_workers: int = 1
    min_combos: int = 2
    min_rows: int = 2048
    memo: str = MEMO_SHARED

    def __post_init__(self):
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.memo not in (MEMO_SHARED, MEMO_PRIVATE):
            raise ValueError(f"unknown memo mode {self.memo!r}")

    @classmethod
    def auto(cls, **overrides) -> "ParallelConfig":
        """A config sized to the machine (or ``REPRO_N_WORKERS``)."""
        overrides.setdefault("n_workers", default_workers())
        return cls(**overrides)

    def should_parallelize(self, n_combos: int, physical_rows: int) -> bool:
        """Whether a combination list of this size is worth the pool."""
        return (
            self.n_workers > 1
            and n_combos >= self.min_combos
            and physical_rows >= self.min_rows
        )
