"""Physical operators: partition scans, hash joins, grouped aggregation.

The operators work on *row-index sets* rather than materialized tuples:
an intermediate join result is a dict ``alias -> int array`` of parallel row
indices into each alias' partition.  Values are decoded through the column
dictionaries only where an expression or join key needs them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..storage.partition import Partition
from .aggregates import AggregateSpec, GroupedAggregates
from .expr import Col, Expr


class PartitionProvider:
    """Column provider over selected rows of a single partition."""

    __slots__ = ("alias", "partition", "rows")

    def __init__(self, alias: str, partition: Partition, rows: np.ndarray):
        self.alias = alias
        self.partition = partition
        self.rows = rows

    def get(self, alias: Optional[str], name: str) -> np.ndarray:
        """Decoded values of a column over the selected rows."""
        if alias is not None and alias != self.alias:
            raise QueryError(
                f"expression references alias {alias!r} inside a scan of {self.alias!r}"
            )
        return self.partition.column(name).decode_rows(self.rows)

    def row_count(self) -> int:
        """Number of selected rows."""
        return len(self.rows)


class JoinedProvider:
    """Column provider over a joined tuple set.

    ``indices`` maps each alias to a row-index array; all arrays have equal
    length — position ``i`` across them is one joined tuple.
    """

    __slots__ = ("partitions", "indices", "_length")

    def __init__(
        self,
        partitions: Dict[str, Partition],
        indices: Dict[str, np.ndarray],
    ):
        self.partitions = partitions
        self.indices = indices
        lengths = {len(v) for v in indices.values()}
        if len(lengths) > 1:
            raise QueryError(f"unaligned joined index arrays: {lengths}")
        self._length = lengths.pop() if lengths else 0

    def get(self, alias: Optional[str], name: str) -> np.ndarray:
        """Decoded values of ``alias.name`` over the joined tuples."""
        if alias is None:
            alias = self._resolve_unqualified(name)
        partition = self.partitions[alias]
        return partition.column(name).decode_rows(self.indices[alias])

    def codes(self, alias: str, name: str):
        """Dictionary codes of a column over the tuple set, plus the fragment.

        The vectorized group-by path groups on codes (dense small integers)
        instead of decoded values — the standard column-store optimization.
        """
        fragment = self.partitions[alias].column(name)
        return fragment.codes()[self.indices[alias]], fragment

    def _resolve_unqualified(self, name: str) -> str:
        owners = [
            alias
            for alias, partition in self.partitions.items()
            if name in partition.column_names()
        ]
        if len(owners) != 1:
            raise QueryError(
                f"column {name!r} is {'ambiguous' if owners else 'unknown'} "
                f"across aliases {sorted(self.partitions)}"
            )
        return owners[0]

    def row_count(self) -> int:
        """Number of joined tuples."""
        return self._length

    def select(self, mask: np.ndarray) -> "JoinedProvider":
        """Restrict the tuple set to rows where ``mask`` is true."""
        return JoinedProvider(
            self.partitions,
            {alias: rows[mask] for alias, rows in self.indices.items()},
        )


def scan_partition(
    alias: str,
    partition: Partition,
    snapshot: int,
    filters: Sequence[Expr] = (),
) -> np.ndarray:
    """Visible row indices of ``partition`` that pass all local ``filters``.

    Simple comparisons are evaluated in dictionary-code space (see
    ``repro.query.fastpath``) before any row is decoded; only the remaining
    predicates touch decoded values, and only for rows that survived.
    """
    from .fastpath import fast_filter_mask

    mask = partition.visible_mask(snapshot)
    slow_filters: List[Expr] = []
    for expr in filters:
        if not mask.any():
            return np.flatnonzero(mask)
        fast = fast_filter_mask(expr, partition, alias)
        if fast is not None:
            mask &= fast
        else:
            slow_filters.append(expr)
    if slow_filters and mask.any():
        provider = PartitionProvider(alias, partition, np.flatnonzero(mask))
        keep = np.ones(provider.row_count(), dtype=bool)
        for expr in slow_filters:
            keep &= expr.evaluate(provider).astype(bool)
        return provider.rows[keep]
    return np.flatnonzero(mask)


def build_hash_table(
    partition: Partition, rows: np.ndarray, key_columns: Sequence[str]
) -> Dict[Tuple, List[int]]:
    """Hash the given rows of ``partition`` on the composite key columns.

    Rows with a NULL in any key column never join and are dropped here.
    """
    arrays = [partition.column(col).decode_rows(rows) for col in key_columns]
    table: Dict[Tuple, List[int]] = {}
    for i in range(len(rows)):
        key = tuple(arr[i] for arr in arrays)
        if any(part is None for part in key):
            continue
        table.setdefault(key, []).append(int(rows[i]))
    return table


def probe_hash_join(
    current: JoinedProvider,
    probe_columns: Sequence[Tuple[str, str]],
    new_alias: str,
    new_partition: Partition,
    hash_table: Dict[Tuple, List[int]],
) -> JoinedProvider:
    """Join the current tuple set against a hashed partition.

    ``probe_columns`` lists the (alias, column) pairs on the *current* side,
    in the same order as the hash table's key columns.  Produces the expanded
    tuple set including ``new_alias``.
    """
    probe_arrays = [current.get(alias, col) for alias, col in probe_columns]
    n = current.row_count()
    keep_positions: List[int] = []
    matched_rows: List[int] = []
    for i in range(n):
        key = tuple(arr[i] for arr in probe_arrays)
        if any(part is None for part in key):
            continue
        matches = hash_table.get(key)
        if not matches:
            continue
        for row in matches:
            keep_positions.append(i)
            matched_rows.append(row)
    positions = np.asarray(keep_positions, dtype=np.int64)
    indices = {
        alias: rows[positions] for alias, rows in current.indices.items()
    }
    indices[new_alias] = np.asarray(matched_rows, dtype=np.int64)
    partitions = dict(current.partitions)
    partitions[new_alias] = new_partition
    return JoinedProvider(partitions, indices)


_VECTORIZE_THRESHOLD = 48  # below this the plain row loop is cheaper


def aggregate_into(
    grouped: GroupedAggregates,
    provider: JoinedProvider,
    group_by: Sequence[Col],
    specs: Sequence[AggregateSpec],
    sign: int = 1,
) -> int:
    """Fold the provider's tuples into ``grouped``; returns rows aggregated.

    Large self-maintainable aggregations take a vectorized path: rows are
    grouped on dictionary *codes* (mixed-radix combined across the group-by
    columns) and reduced per group with ``numpy.bincount`` before the grouped
    state is touched once per group — the column-store way.  Small inputs
    and MIN/MAX aggregations use the straightforward row loop.
    """
    n = provider.row_count()
    if n == 0:
        return 0
    vectorizable = (
        n >= _VECTORIZE_THRESHOLD
        and all(spec.self_maintainable for spec in specs)
        and all(col.alias is not None for col in group_by)
    )
    if vectorizable:
        _aggregate_vectorized(grouped, provider, group_by, specs, sign, n)
        return n
    if group_by:
        key_arrays = [col.evaluate(provider) for col in group_by]
        keys = list(zip(*key_arrays))
    else:
        keys = [()] * n
    agg_columns: List[np.ndarray] = []
    empty = np.empty(0, dtype=object)
    for spec in specs:
        if spec.arg is None:
            agg_columns.append(empty)  # COUNT(*) ignores its value column
        else:
            agg_columns.append(spec.arg.evaluate(provider))
    grouped.accumulate(keys, agg_columns, sign=sign)
    return n


def _null_mask(values: np.ndarray) -> np.ndarray:
    return np.frompyfunc(lambda v: v is None, 1, 1)(values).astype(bool)


def _aggregate_vectorized(
    grouped: GroupedAggregates,
    provider: JoinedProvider,
    group_by: Sequence[Col],
    specs: Sequence[AggregateSpec],
    sign: int,
    n: int,
) -> None:
    from .aggregates import AggFunc

    # ------------------------------------------------------------- grouping
    if group_by:
        combined = np.zeros(n, dtype=np.int64)
        fragments = []
        radices = []
        for col in group_by:
            codes, fragment = provider.codes(col.alias, col.name)
            fragments.append(fragment)
            radix = len(fragment.dictionary) + 1
            radices.append(radix)
            combined = combined * radix + (codes + 1)
        unique_codes, group_idx = np.unique(combined, return_inverse=True)
        n_groups = len(unique_codes)
        keys = []
        for code in unique_codes:
            parts: List[object] = []
            remaining = int(code)
            for fragment, radix in zip(reversed(fragments), reversed(radices)):
                part_code = remaining % radix - 1
                remaining //= radix
                parts.append(fragment.dictionary.decode(part_code) if part_code >= 0 else None)
            keys.append(tuple(reversed(parts)))
    else:
        group_idx = np.zeros(n, dtype=np.int64)
        n_groups = 1
        keys = [()]
    count_star = np.bincount(group_idx, minlength=n_groups)
    # ----------------------------------------------------------- reductions
    spec_states: List[object] = []
    for spec in specs:
        if spec.func is AggFunc.COUNT and spec.arg is None:
            spec_states.append(count_star)
            continue
        values = spec.arg.evaluate(provider)
        nulls = _null_mask(values)
        nonnull = np.bincount(
            group_idx, weights=(~nulls).astype(np.float64), minlength=n_groups
        ).astype(np.int64)
        if spec.func is AggFunc.COUNT:
            spec_states.append(nonnull)
            continue
        safe = values.copy()
        safe[nulls] = 0.0
        sums = np.bincount(
            group_idx, weights=safe.astype(np.float64), minlength=n_groups
        )
        spec_states.append(list(zip(sums, nonnull)))
    grouped.accumulate_groups(keys, spec_states, count_star, sign=sign)
