"""Physical operators: partition scans, hash joins, grouped aggregation.

The operators work on *row-index sets* rather than materialized tuples:
an intermediate join result is a dict ``alias -> int array`` of parallel row
indices into each alias' partition.  Values are decoded through the column
dictionaries only where an expression needs them.

Joins and large aggregations run in **dictionary-code space** (the
Krueger-et-al. "fast updates on read-optimized databases" template): the
build side of a hash join is grouped by ``np.unique`` over its stacked key
code matrix, the probe side is *bridged* into the build side's code space by
translating dictionaries (one lookup per distinct value, never per row), and
match multiplicities are expanded with ``np.repeat`` + prefix sums.  A
row-at-a-time reference kernel is kept behind ``REPRO_JOIN_KERNEL=rowloop``
(or :func:`kernel_override`); both kernels are bit-identical, which the
parity suite in ``tests/query/test_kernel_parity.py`` pins down.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..storage.dictionary import NULL_CODE, MainDictionary
from ..storage.partition import Partition
from ..storage.schema import SqlType
from .aggregates import AggregateSpec, GroupedAggregates
from .expr import Col, Expr

# ---------------------------------------------------------------------------
# kernel selection
# ---------------------------------------------------------------------------

#: Environment variable selecting the join/aggregation kernel.
JOIN_KERNEL_ENV = "REPRO_JOIN_KERNEL"
KERNEL_VECTORIZED = "vectorized"
KERNEL_ROWLOOP = "rowloop"

_KERNEL_OVERRIDE: Optional[str] = None


def join_kernel() -> str:
    """The active kernel: :func:`kernel_override` > env var > vectorized."""
    if _KERNEL_OVERRIDE is not None:
        return _KERNEL_OVERRIDE
    if os.environ.get(JOIN_KERNEL_ENV, "").strip().lower() == KERNEL_ROWLOOP:
        return KERNEL_ROWLOOP
    return KERNEL_VECTORIZED


@contextmanager
def kernel_override(kernel: str):
    """Force a kernel inside the block (parity tests and benchmarks)."""
    global _KERNEL_OVERRIDE
    if kernel not in (KERNEL_VECTORIZED, KERNEL_ROWLOOP):
        raise QueryError(f"unknown join kernel {kernel!r}")
    previous = _KERNEL_OVERRIDE
    _KERNEL_OVERRIDE = kernel
    try:
        yield
    finally:
        _KERNEL_OVERRIDE = previous


class PartitionProvider:
    """Column provider over selected rows of a single partition."""

    __slots__ = ("alias", "partition", "rows")

    def __init__(self, alias: str, partition: Partition, rows: np.ndarray):
        self.alias = alias
        self.partition = partition
        self.rows = rows

    def get(self, alias: Optional[str], name: str) -> np.ndarray:
        """Decoded values of a column over the selected rows."""
        if alias is not None and alias != self.alias:
            raise QueryError(
                f"expression references alias {alias!r} inside a scan of {self.alias!r}"
            )
        return self.partition.column(name).decode_rows(self.rows)

    def row_count(self) -> int:
        """Number of selected rows."""
        return len(self.rows)


class JoinedProvider:
    """Column provider over a joined tuple set.

    ``indices`` maps each alias to a row-index array; all arrays have equal
    length — position ``i`` across them is one joined tuple.
    """

    __slots__ = ("partitions", "indices", "_length")

    def __init__(
        self,
        partitions: Dict[str, Partition],
        indices: Dict[str, np.ndarray],
    ):
        self.partitions = partitions
        self.indices = indices
        lengths = {len(v) for v in indices.values()}
        if len(lengths) > 1:
            raise QueryError(f"unaligned joined index arrays: {lengths}")
        self._length = lengths.pop() if lengths else 0

    def get(self, alias: Optional[str], name: str) -> np.ndarray:
        """Decoded values of ``alias.name`` over the joined tuples."""
        if alias is None:
            alias = self._resolve_unqualified(name)
        partition = self.partitions[alias]
        return partition.column(name).decode_rows(self.indices[alias])

    def codes(self, alias: str, name: str):
        """Dictionary codes of a column over the tuple set, plus the fragment.

        The vectorized join/group-by kernels work on codes (dense small
        integers) instead of decoded values — the standard column-store
        optimization.
        """
        fragment = self.partitions[alias].column(name)
        return fragment.codes_for(self.indices[alias]), fragment

    def _resolve_unqualified(self, name: str) -> str:
        owners = [
            alias
            for alias, partition in self.partitions.items()
            if name in partition.column_names()
        ]
        if len(owners) != 1:
            raise QueryError(
                f"column {name!r} is {'ambiguous' if owners else 'unknown'} "
                f"across aliases {sorted(self.partitions)}"
            )
        return owners[0]

    def row_count(self) -> int:
        """Number of joined tuples."""
        return self._length

    def select(self, mask: np.ndarray) -> "JoinedProvider":
        """Restrict the tuple set to rows where ``mask`` is true."""
        return JoinedProvider(
            self.partitions,
            {alias: rows[mask] for alias, rows in self.indices.items()},
        )


def scan_partition(
    alias: str,
    partition: Partition,
    snapshot: int,
    filters: Sequence[Expr] = (),
) -> np.ndarray:
    """Visible row indices of ``partition`` that pass all local ``filters``.

    Simple comparisons are evaluated in dictionary-code space (see
    ``repro.query.fastpath``) before any row is decoded; only the remaining
    predicates touch decoded values, and only for rows that survived.
    """
    from .fastpath import fast_filter_mask

    mask = partition.visible_mask(snapshot)
    slow_filters: List[Expr] = []
    for expr in filters:
        if not mask.any():
            return np.flatnonzero(mask)
        fast = fast_filter_mask(expr, partition, alias)
        if fast is not None:
            mask &= fast
        else:
            slow_filters.append(expr)
    if slow_filters and mask.any():
        provider = PartitionProvider(alias, partition, np.flatnonzero(mask))
        keep = np.ones(provider.row_count(), dtype=bool)
        for expr in slow_filters:
            keep &= expr.evaluate(provider).astype(bool)
        return provider.rows[keep]
    return np.flatnonzero(mask)


# ---------------------------------------------------------------------------
# code-space join kernels
# ---------------------------------------------------------------------------

#: Bridged probe code for values absent from the build-side key space.
#: Distinct from NULL_CODE only for clarity — neither can ever match a
#: build code (build codes are >= 0 after NULL rows are masked out).
_NO_MATCH = -2

#: Mixed-radix folds re-compact through ``np.unique`` before the running
#: key domain would exceed this bound (safely inside int64).
_MAX_KEY_DOMAIN = 1 << 62

#: Below this key-domain size the probe lookup uses a dense int array map
#: (O(1) per row) instead of ``searchsorted`` on the unique key set.
_DENSE_MAP_LIMIT = 1 << 20


class _CodeKeySpace:
    """Composite-key factorization over build-side dictionary codes.

    Each key column is compacted to ranks within the distinct codes actually
    present on the build side, then the columns are folded into one int64
    key per row with mixed-radix packing.  Whenever the running key domain
    would no longer fit int64, the running keys are re-compacted through
    ``np.unique`` first (their distinct count is bounded by the row count),
    so wide composite keys over large dictionaries can never silently wrap.
    Every compaction step is recorded so :meth:`probe` can replay the
    identical fold over bridged probe codes with ``searchsorted`` lookups.
    """

    __slots__ = ("steps", "domain", "combined")

    def __init__(self, code_cols: Sequence[np.ndarray]):
        steps: List[Tuple[np.ndarray, Optional[np.ndarray]]] = []
        combined: Optional[np.ndarray] = None
        domain = 1
        for codes in code_cols:
            ucodes = np.unique(codes)
            ranks = np.searchsorted(ucodes, codes)
            radix = int(len(ucodes))
            compact: Optional[np.ndarray] = None
            if combined is None:
                combined = ranks.astype(np.int64, copy=False)
                domain = radix
            else:
                if domain > _MAX_KEY_DOMAIN // max(radix, 1):
                    compact, combined = np.unique(combined, return_inverse=True)
                    domain = len(compact)
                combined = combined * radix + ranks
                domain *= radix
            steps.append((ucodes, compact))
        self.steps = steps
        self.domain = domain
        #: Per-row folded build keys; transient (dropped after grouping).
        self.combined = combined

    def probe(self, bridged_cols: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
        """Replay the fold over bridged probe codes.

        Returns ``(combined, valid)``: the folded probe keys plus the mask
        of rows whose codes exist column-wise in the build key space.
        Invalid rows carry clipped (in-domain, but meaningless) keys, so
        callers must apply ``valid``.  NULL (-1) and absent (-2) bridged
        codes fail the membership check, never matching anything.
        """
        combined: Optional[np.ndarray] = None
        valid: Optional[np.ndarray] = None
        for (ucodes, compact), codes in zip(self.steps, bridged_cols):
            pos = np.searchsorted(ucodes, codes)
            pos = np.minimum(pos, len(ucodes) - 1)
            ok = ucodes[pos] == codes
            valid = ok if valid is None else (valid & ok)
            if combined is None:
                combined = pos.astype(np.int64, copy=False)
            else:
                if compact is not None:
                    cpos = np.searchsorted(compact, combined)
                    cpos = np.minimum(cpos, len(compact) - 1)
                    valid &= compact[cpos] == combined
                    combined = cpos
                combined = combined * len(ucodes) + pos
        return combined, valid


def _comparable_array(values: np.ndarray) -> Optional[np.ndarray]:
    """A primitive-dtype copy usable for vectorized exact matching, or None.

    Integer and string value sets qualify; floats qualify unless NaN is
    present (NaN defeats sorted search yet can match by identity through a
    dict lookup, so those value sets take the per-value fallback).
    """
    try:
        arr = np.array(values.tolist())
    except (ValueError, TypeError):
        return None
    kind = arr.dtype.kind
    if kind in ("i", "U"):
        return arr
    if kind == "f" and not np.isnan(arr).any():
        return arr
    return None


def _dict_lookup_many(build_dict, values: np.ndarray) -> np.ndarray:
    """Build-side codes for an array of values (``_NO_MATCH`` where absent).

    Vectorized via ``searchsorted`` when both value sets share a primitive
    dtype — main dictionaries are already sorted (codes are ranks), delta
    dictionaries are sorted once per call.  Falls back to one hash lookup
    per *distinct* value otherwise.
    """
    build_table = build_dict.decode_table()
    n = len(build_table) - 1
    if n == 0:
        return np.full(len(values), _NO_MATCH, dtype=np.int64)
    pv = _comparable_array(values)
    bv = _comparable_array(build_table[:n]) if pv is not None else None
    if bv is not None and pv.dtype.kind == bv.dtype.kind:
        if isinstance(build_dict, MainDictionary):
            order = None
            sorted_bv = bv
        else:
            order = np.argsort(bv, kind="stable")
            sorted_bv = bv[order]
        pos = np.searchsorted(sorted_bv, pv)
        pos = np.minimum(pos, n - 1)
        hit = sorted_bv[pos] == pv
        mapped = pos if order is None else order[pos]
        return np.where(hit, mapped, _NO_MATCH).astype(np.int64, copy=False)
    lookup = build_dict.lookup
    out = np.full(len(values), _NO_MATCH, dtype=np.int64)
    for i, value in enumerate(values.tolist()):
        code = lookup(value)
        if code is not None:
            out[i] = code
    return out


def _bridge_codes(probe_fragment, probe_codes: np.ndarray, build_fragment) -> np.ndarray:
    """Translate probe-side dictionary codes into the build fragment's codes.

    When both sides share one dictionary object the codes pass through
    unchanged (NULL stays ``-1`` and never matches).  Otherwise only the
    probe *dictionary* is materialized — one translation per distinct value,
    never per row — which is where main/delta dictionary skew is bridged.
    NULL and values absent from the build dictionary map to ``_NO_MATCH``.
    """
    build_dict = build_fragment.dictionary
    if probe_fragment.dictionary is build_dict:
        return probe_codes
    probe_table = probe_fragment.dictionary.decode_table()
    m = len(probe_table) - 1
    lut = np.full(m + 1, _NO_MATCH, dtype=np.int64)
    if m:
        lut[:m] = _dict_lookup_many(build_dict, probe_table[:m])
    return lut[probe_codes]


class _CodeSpaceHashTable:
    """Build side of an equi-join, grouped in dictionary-code space.

    Rows are grouped by composite key via ``np.unique`` over the folded key
    codes; per-group row lists live in one stable-sorted array addressed by
    prefix-sum ``starts``/``counts``, preserving build-row order within each
    key (what makes the expansion bit-identical to the row loop).  Rows with
    a NULL in any key column are masked out wholesale up front.
    """

    kernel = KERNEL_VECTORIZED

    __slots__ = (
        "partition", "key_columns", "fragments", "key_space",
        "unique_keys", "group_rows", "starts", "counts", "dense",
    )

    def __init__(self, partition: Partition, rows, key_columns: Sequence[str]):
        self.partition = partition
        self.key_columns = tuple(key_columns)
        self.fragments = [partition.column(c) for c in key_columns]
        rows = np.asarray(rows, dtype=np.int64)
        code_cols = [frag.codes_for(rows) for frag in self.fragments]
        if rows.size:
            valid = code_cols[0] != NULL_CODE
            for codes in code_cols[1:]:
                valid &= codes != NULL_CODE
            if not valid.all():
                rows = rows[valid]
                code_cols = [codes[valid] for codes in code_cols]
        if rows.size == 0:
            self.key_space = None
            self.unique_keys = np.empty(0, dtype=np.int64)
            self.group_rows = np.empty(0, dtype=np.int64)
            self.starts = np.empty(0, dtype=np.int64)
            self.counts = np.empty(0, dtype=np.int64)
            self.dense = None
            return
        space = _CodeKeySpace(code_cols)
        unique_keys, group_idx = np.unique(space.combined, return_inverse=True)
        space.combined = None  # free the per-row fold; only the plan is kept
        order = np.argsort(group_idx, kind="stable")
        counts = np.bincount(group_idx, minlength=len(unique_keys))
        self.key_space = space
        self.unique_keys = unique_keys
        self.group_rows = rows[order]
        self.counts = counts.astype(np.int64, copy=False)
        self.starts = np.concatenate(([0], np.cumsum(self.counts[:-1])))
        if space.domain <= _DENSE_MAP_LIMIT:
            dense = np.full(space.domain, -1, dtype=np.int64)
            dense[unique_keys] = np.arange(len(unique_keys), dtype=np.int64)
            self.dense = dense
        else:
            self.dense = None

    def __len__(self) -> int:
        return len(self.unique_keys)

    def __bool__(self) -> bool:
        return len(self.unique_keys) > 0

    def _lookup_groups(self, combined: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Group id per probe row, ``-1`` for misses."""
        if self.dense is not None:
            found = self.dense[np.where(valid, combined, 0)]
            return np.where(valid, found, -1)
        pos = np.searchsorted(self.unique_keys, combined)
        pos = np.minimum(pos, len(self.unique_keys) - 1)
        hit = valid & (self.unique_keys[pos] == combined)
        return np.where(hit, pos, -1)

    def probe(self, current: "JoinedProvider", probe_columns) -> Tuple[np.ndarray, np.ndarray]:
        """Match the current tuple set; returns (probe positions, build rows).

        Both arrays are parallel and ordered by ascending probe position,
        with matches within one probe row in build-row order — the exact
        sequence the row loop emits.
        """
        n = current.row_count()
        if n == 0 or not self:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        bridged = []
        for (alias, col), build_frag in zip(probe_columns, self.fragments):
            probe_frag = current.partitions[alias].column(col)
            codes = probe_frag.codes_for(current.indices[alias])
            bridged.append(_bridge_codes(probe_frag, codes, build_frag))
        combined, valid = self.key_space.probe(bridged)
        groups = self._lookup_groups(combined, valid)
        hit = groups >= 0
        safe = np.where(hit, groups, 0)
        reps = np.where(hit, self.counts[safe], 0)
        total = int(reps.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        positions = np.repeat(np.arange(n, dtype=np.int64), reps)
        offsets = np.concatenate(([0], np.cumsum(reps)[:-1]))
        intra = np.arange(total, dtype=np.int64) - np.repeat(offsets, reps)
        matched = self.group_rows[np.repeat(self.starts[safe], reps) + intra]
        return positions, matched

    def as_dict(self) -> Dict[Tuple, List[int]]:
        """Decoded-key rendering for diagnostics/tests: key tuple -> rows."""
        out: Dict[Tuple, List[int]] = {}
        for gid in range(len(self.unique_keys)):
            start = int(self.starts[gid])
            rows = self.group_rows[start: start + int(self.counts[gid])]
            key = tuple(frag.value_at(int(rows[0])) for frag in self.fragments)
            out[key] = [int(r) for r in rows]
        return out


class _RowLoopHashTable:
    """Reference row-at-a-time build side over decoded tuple keys.

    Kept as the bit-identity baseline the parity suite and the kernel
    benchmark compare against (``REPRO_JOIN_KERNEL=rowloop``).
    """

    kernel = KERNEL_ROWLOOP

    __slots__ = ("partition", "key_columns", "table")

    def __init__(self, partition: Partition, rows, key_columns: Sequence[str]):
        self.partition = partition
        self.key_columns = tuple(key_columns)
        rows = np.asarray(rows, dtype=np.int64)
        arrays = [partition.column(col).decode_rows(rows) for col in key_columns]
        table: Dict[Tuple, List[int]] = {}
        for i in range(len(rows)):
            key = tuple(arr[i] for arr in arrays)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(int(rows[i]))
        self.table = table

    def __len__(self) -> int:
        return len(self.table)

    def __bool__(self) -> bool:
        return bool(self.table)

    def probe(self, current: "JoinedProvider", probe_columns) -> Tuple[np.ndarray, np.ndarray]:
        """Row-at-a-time probe; same contract as the code-space kernel."""
        probe_arrays = [current.get(alias, col) for alias, col in probe_columns]
        n = current.row_count()
        keep_positions: List[int] = []
        matched_rows: List[int] = []
        table = self.table
        for i in range(n):
            key = tuple(arr[i] for arr in probe_arrays)
            if any(part is None for part in key):
                continue
            matches = table.get(key)
            if not matches:
                continue
            for row in matches:
                keep_positions.append(i)
                matched_rows.append(row)
        return (
            np.asarray(keep_positions, dtype=np.int64),
            np.asarray(matched_rows, dtype=np.int64),
        )

    def as_dict(self) -> Dict[Tuple, List[int]]:
        """Decoded-key rendering for diagnostics/tests: key tuple -> rows."""
        return {key: list(rows) for key, rows in self.table.items()}


def build_hash_table(
    partition: Partition, rows: np.ndarray, key_columns: Sequence[str]
):
    """Hash the given rows of ``partition`` on the composite key columns.

    Returns the active kernel's build-side table (code-space by default,
    row-loop under ``REPRO_JOIN_KERNEL=rowloop``).  Rows with a NULL in any
    key column never join and are dropped here.  The result is falsy when
    no row survives, so callers can short-circuit empty subjoins.
    """
    if join_kernel() == KERNEL_ROWLOOP:
        return _RowLoopHashTable(partition, rows, key_columns)
    return _CodeSpaceHashTable(partition, rows, key_columns)


def probe_hash_join(
    current: JoinedProvider,
    probe_columns: Sequence[Tuple[str, str]],
    new_alias: str,
    new_partition: Partition,
    hash_table,
) -> JoinedProvider:
    """Join the current tuple set against a hashed partition.

    ``probe_columns`` lists the (alias, column) pairs on the *current* side,
    in the same order as the hash table's key columns.  Produces the expanded
    tuple set including ``new_alias``; both kernels emit identical index
    arrays (ascending probe position, build-row order within a key).
    """
    positions, matched = hash_table.probe(current, probe_columns)
    indices = {
        alias: rows[positions] for alias, rows in current.indices.items()
    }
    indices[new_alias] = matched
    partitions = dict(current.partitions)
    partitions[new_alias] = new_partition
    return JoinedProvider(partitions, indices)


# ---------------------------------------------------------------------------
# grouped aggregation
# ---------------------------------------------------------------------------

_VECTORIZE_THRESHOLD = 48  # below this the plain row loop is cheaper


def aggregate_into(
    grouped: GroupedAggregates,
    provider: JoinedProvider,
    group_by: Sequence[Col],
    specs: Sequence[AggregateSpec],
    sign: int = 1,
) -> int:
    """Fold the provider's tuples into ``grouped``; returns rows aggregated.

    Large self-maintainable aggregations take a vectorized path: rows are
    grouped on dictionary *codes* (overflow-safe mixed-radix fold across the
    group-by columns) and reduced per group before the grouped state is
    touched once per group — the column-store way.  Small inputs, MIN/MAX
    aggregations, and the ``rowloop`` kernel use the straightforward row
    loop.  Both paths produce bit-identical grouped state.
    """
    n = provider.row_count()
    if n == 0:
        return 0
    vectorizable = (
        join_kernel() == KERNEL_VECTORIZED
        and n >= _VECTORIZE_THRESHOLD
        and all(spec.self_maintainable for spec in specs)
        and all(col.alias is not None for col in group_by)
    )
    if vectorizable:
        _aggregate_vectorized(grouped, provider, group_by, specs, sign, n)
        return n
    if group_by:
        key_arrays = [col.evaluate(provider) for col in group_by]
        keys = list(zip(*key_arrays))
    else:
        keys = [()] * n
    agg_columns: List[np.ndarray] = []
    empty = np.empty(0, dtype=object)
    for spec in specs:
        if spec.arg is None:
            agg_columns.append(empty)  # COUNT(*) ignores its value column
        else:
            agg_columns.append(spec.arg.evaluate(provider))
    grouped.accumulate(keys, agg_columns, sign=sign)
    return n


def _null_mask(values: np.ndarray) -> np.ndarray:
    """None mask over a decoded object array (generic-expression fallback;
    simple column references test ``codes == NULL_CODE`` instead)."""
    return np.frompyfunc(lambda v: v is None, 1, 1)(values).astype(bool)


def _fold_group_codes(
    code_cols: Sequence[np.ndarray], radices: Sequence[int]
) -> Tuple[np.ndarray, int]:
    """Dense group ids from per-column (NULL-shifted) code arrays.

    Mixed-radix packing ``combined = combined * radix + code`` is the fast
    path; whenever the running key domain would exceed int64 the running
    keys are re-compacted through ``np.unique`` first (their distinct count
    is bounded by the row count), so wide group-bys over large dictionaries
    can never wrap and silently merge unrelated groups.
    """
    combined = code_cols[0].astype(np.int64, copy=False)
    domain = radices[0]
    for codes, radix in zip(code_cols[1:], radices[1:]):
        if domain > _MAX_KEY_DOMAIN // max(radix, 1):
            uniques, combined = np.unique(combined, return_inverse=True)
            domain = len(uniques)
        combined = combined * radix + codes
        domain *= radix
    uniques, group_idx = np.unique(combined, return_inverse=True)
    return group_idx, len(uniques)


def _int_valued(values: np.ndarray, nulls: np.ndarray) -> bool:
    """Whether every non-null entry of a decoded column is a Python int.

    Used only for computed aggregate arguments — plain column references
    answer this from the schema type without touching the rows.
    """
    if nulls.all():
        return True
    sample = (values[~nulls] if nulls.any() else values).tolist()
    try:
        probe = np.array(sample)
    except (ValueError, TypeError):
        return False
    if probe.dtype.kind == "i":
        return True
    if probe.dtype.kind == "O":  # mixed or beyond int64 — inspect
        return all(type(v) is int for v in sample)
    return False


def _exact_int_group_sums(
    values: np.ndarray,
    nulls: np.ndarray,
    group_idx: np.ndarray,
    n_groups: int,
) -> List[int]:
    """Per-group sums of integer values, exact at any magnitude.

    Non-null values are grouped with a stable sort and reduced per segment.
    The int64 ``reduceat`` fast path is guarded by a worst-case magnitude
    bound (``n * max|v|`` must fit int64); anything bigger reduces in
    object dtype, i.e. Python's arbitrary-precision ints.  Returns Python
    ints, matching what the row loop accumulates.
    """
    mask = ~nulls
    gi = group_idx[mask] if nulls.any() else group_idx
    if gi.size == 0:
        return [0] * n_groups
    vals = values[mask] if nulls.any() else values
    order = np.argsort(gi, kind="stable")
    counts = np.bincount(gi, minlength=n_groups)
    present = counts > 0
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    boundaries = starts[present]
    segments: Optional[np.ndarray] = None
    try:
        v64 = vals.astype(np.int64)
    except (OverflowError, TypeError, ValueError):
        v64 = None
    if v64 is not None:
        peak = int(np.abs(v64).max()) if v64.size else 0
        if 0 <= peak <= 1 or (peak > 1 and gi.size <= _MAX_KEY_DOMAIN // peak):
            segments = np.add.reduceat(v64[order], boundaries)
    if segments is None:
        segments = np.add.reduceat(vals[order], boundaries)
    sums = [0] * n_groups
    for slot, total in zip(np.flatnonzero(present).tolist(), segments.tolist()):
        sums[slot] = int(total)
    return sums


def _aggregate_vectorized(
    grouped: GroupedAggregates,
    provider: JoinedProvider,
    group_by: Sequence[Col],
    specs: Sequence[AggregateSpec],
    sign: int,
    n: int,
) -> None:
    from .aggregates import AggFunc

    # ------------------------------------------------------------- grouping
    if group_by:
        code_cols = []
        fragments = []
        radices = []
        for col in group_by:
            codes, fragment = provider.codes(col.alias, col.name)
            code_cols.append(codes + 1)  # shift NULL (-1) into slot 0
            fragments.append(fragment)
            radices.append(len(fragment.dictionary) + 1)
        group_idx, n_groups = _fold_group_codes(code_cols, radices)
        # Decode keys from one representative row per group (first
        # occurrence), one LUT gather per column.
        order = np.argsort(group_idx, kind="stable")
        counts = np.bincount(group_idx, minlength=n_groups)
        first_rows = order[np.concatenate(([0], np.cumsum(counts)[:-1]))]
        # The row loop inserts groups in first-appearance scan order and
        # finalize() preserves insertion order, so renumber the fold-order
        # group ids to match — bit-identity covers row order too.
        appearance = np.argsort(first_rows, kind="stable")
        remap = np.empty(n_groups, dtype=np.int64)
        remap[appearance] = np.arange(n_groups)
        group_idx = remap[group_idx]
        first_rows = first_rows[appearance]
        key_cols = [
            fragment.decode_codes(codes[first_rows] - 1)
            for fragment, codes in zip(fragments, code_cols)
        ]
        keys = [tuple(col[g] for col in key_cols) for g in range(n_groups)]
    else:
        group_idx = np.zeros(n, dtype=np.int64)
        n_groups = 1
        keys = [()]
    count_star = np.bincount(group_idx, minlength=n_groups)
    # ----------------------------------------------------------- reductions
    spec_states: List[object] = []
    for spec in specs:
        if spec.func is AggFunc.COUNT and spec.arg is None:
            spec_states.append(count_star)
            continue
        arg = spec.arg
        values: Optional[np.ndarray] = None
        int_typed: Optional[bool] = None
        if isinstance(arg, Col) and arg.alias is not None:
            # Code-level NULL test and typed-exactness answer — no decode
            # needed for COUNT, one LUT gather for SUM/AVG.
            codes, fragment = provider.codes(arg.alias, arg.name)
            nulls = codes == NULL_CODE
            schema = provider.partitions[arg.alias].schema
            if schema.has_column(arg.name):
                int_typed = schema.column(arg.name).sql_type is SqlType.INT
            if spec.func is not AggFunc.COUNT:
                values = fragment.decode_codes(codes)
        else:
            values = arg.evaluate(provider)
            nulls = _null_mask(values)
        nonnull = np.bincount(
            group_idx[~nulls] if nulls.any() else group_idx, minlength=n_groups
        )
        if spec.func is AggFunc.COUNT:
            spec_states.append(nonnull)
            continue
        if int_typed is None:
            int_typed = _int_valued(values, nulls)
        if int_typed:
            sums: Sequence = _exact_int_group_sums(values, nulls, group_idx, n_groups)
        else:
            safe = values.copy()
            safe[nulls] = 0.0
            # .tolist() hands the accumulators Python floats, the same type
            # the row loop produces — bincount's in-order accumulation is
            # already bit-identical to the loop's sequential adds.
            sums = np.bincount(
                group_idx, weights=safe.astype(np.float64), minlength=n_groups
            ).tolist()
        spec_states.append(list(zip(sums, nonnull)))
    grouped.accumulate_groups(keys, spec_states, count_star, sign=sign)
