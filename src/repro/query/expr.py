"""Expression trees for filters, join residuals, and aggregate arguments.

Expressions evaluate vectorized over a *column provider* — anything exposing
``get(alias, column) -> numpy object array`` for the current row set (a
filtered partition scan or a joined tuple set).  SQL three-valued logic is
approximated the way aggregate queries need it: any comparison involving
NULL is false, and arithmetic with NULL yields NULL.

Every expression can render a canonical string (``canonical()``), which the
aggregate-cache key uses so that textually different but structurally equal
queries share a cache entry.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError

ColumnRefs = FrozenSet[Tuple[Optional[str], str]]


def _nulls(values: np.ndarray) -> np.ndarray:
    """Boolean mask of None entries in an object array."""
    return np.frompyfunc(lambda v: v is None, 1, 1)(values).astype(bool)


def _cmp_arrays(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Elementwise comparison with NULL-is-false semantics."""
    null_mask = _nulls(left) | _nulls(right)
    safe_left = left.copy()
    safe_right = right.copy()
    # Replace NULLs pairwise with a self-comparable sentinel so the vectorized
    # comparison cannot raise; the null mask zeroes those slots afterwards.
    safe_left[null_mask] = 0
    safe_right[null_mask] = 0
    if op == "=":
        out = safe_left == safe_right
    elif op == "!=":
        out = safe_left != safe_right
    elif op == "<":
        out = safe_left < safe_right
    elif op == "<=":
        out = safe_left <= safe_right
    elif op == ">":
        out = safe_left > safe_right
    elif op == ">=":
        out = safe_left >= safe_right
    else:  # pragma: no cover - guarded by Cmp.__init__
        raise QueryError(f"unknown comparison operator {op!r}")
    out = np.asarray(out, dtype=bool)
    out[null_mask] = False
    return out


class Expr:
    """Base class of all expression nodes."""

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's row set; returns an object/bool array."""
        raise NotImplementedError

    def column_refs(self) -> ColumnRefs:
        """All (alias, column) pairs referenced by this expression."""
        raise NotImplementedError

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        raise NotImplementedError

    def map_columns(self, fn) -> "Expr":
        """Return a copy with every :class:`Col` leaf replaced by ``fn(col)``."""
        raise NotImplementedError

    def rebind(self, alias_map) -> "Expr":
        """Return a copy with aliases substituted per ``alias_map``."""
        return self.map_columns(
            lambda col: Col(col.name, alias_map.get(col.alias, col.alias))
        )

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And([self, other])

    def __or__(self, other: "Expr") -> "Expr":
        return Or([self, other])

    def __invert__(self) -> "Expr":
        return Not(self)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.canonical()})"


class Col(Expr):
    """Reference to a column, optionally qualified with a table alias."""

    __slots__ = ("alias", "name")

    def __init__(self, name: str, alias: Optional[str] = None):
        self.alias = alias
        self.name = name

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        return provider.get(self.alias, self.name)

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        return frozenset({(self.alias, self.name)})

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        return f"{self.alias}.{self.name}" if self.alias else self.name

    def map_columns(self, fn) -> "Expr":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return fn(self)


class Lit(Expr):
    """A literal constant (int, float, str, or None)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        n = provider.row_count()
        out = np.empty(n, dtype=object)
        out[:] = self.value
        return out

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        return frozenset()

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return repr(self.value)

    def map_columns(self, fn) -> "Lit":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return self


_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Cmp(Expr):
    """Binary comparison with NULL-is-false semantics."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _CMP_OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        return _cmp_arrays(self.op, self.left.evaluate(provider), self.right.evaluate(provider))

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        return self.left.column_refs() | self.right.column_refs()

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        return f"({self.left.canonical()} {self.op} {self.right.canonical()})"

    def map_columns(self, fn) -> "Cmp":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return Cmp(self.op, self.left.map_columns(fn), self.right.map_columns(fn))

    def is_equi_join(self) -> bool:
        """True if this is ``a.x = b.y`` across two distinct aliases."""
        return (
            self.op == "="
            and isinstance(self.left, Col)
            and isinstance(self.right, Col)
            and self.left.alias is not None
            and self.right.alias is not None
            and self.left.alias != self.right.alias
        )


class And(Expr):
    """Conjunction of one or more boolean expressions."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        if not items:
            raise QueryError("AND of zero expressions")
        self.items: List[Expr] = list(items)

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        out = self.items[0].evaluate(provider).astype(bool)
        for item in self.items[1:]:
            out &= item.evaluate(provider).astype(bool)
        return out

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        refs: ColumnRefs = frozenset()
        for item in self.items:
            refs |= item.column_refs()
        return refs

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        return "(" + " AND ".join(sorted(i.canonical() for i in self.items)) + ")"

    def map_columns(self, fn) -> "And":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return And([i.map_columns(fn) for i in self.items])

    def conjuncts(self) -> List[Expr]:
        """Flatten nested ANDs into a conjunct list."""
        out: List[Expr] = []
        for item in self.items:
            if isinstance(item, And):
                out.extend(item.conjuncts())
            else:
                out.append(item)
        return out


class Or(Expr):
    """Disjunction of one or more boolean expressions."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        if not items:
            raise QueryError("OR of zero expressions")
        self.items: List[Expr] = list(items)

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        out = self.items[0].evaluate(provider).astype(bool)
        for item in self.items[1:]:
            out |= item.evaluate(provider).astype(bool)
        return out

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        refs: ColumnRefs = frozenset()
        for item in self.items:
            refs |= item.column_refs()
        return refs

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        return "(" + " OR ".join(sorted(i.canonical() for i in self.items)) + ")"

    def map_columns(self, fn) -> "Or":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return Or([i.map_columns(fn) for i in self.items])


class Not(Expr):
    """Boolean negation."""

    __slots__ = ("item",)

    def __init__(self, item: Expr):
        self.item = item

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        return ~self.item.evaluate(provider).astype(bool)

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        return self.item.column_refs()

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        return f"(NOT {self.item.canonical()})"

    def map_columns(self, fn) -> "Not":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return Not(self.item.map_columns(fn))


class InList(Expr):
    """``expr IN (v1, v2, ...)`` over literal values; NULL never matches."""

    __slots__ = ("item", "values")

    def __init__(self, item: Expr, values: Iterable[object]):
        self.item = item
        self.values = frozenset(values)

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        values = self.item.evaluate(provider)
        members = self.values
        return np.frompyfunc(
            lambda v: v is not None and v in members, 1, 1
        )(values).astype(bool)

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        return self.item.column_refs()

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        body = ", ".join(sorted(Lit(v).canonical() for v in self.values))
        return f"({self.item.canonical()} IN ({body}))"

    def map_columns(self, fn) -> "InList":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return InList(self.item.map_columns(fn), self.values)


class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    __slots__ = ("item", "negated")

    def __init__(self, item: Expr, negated: bool = False):
        self.item = item
        self.negated = negated

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        mask = _nulls(self.item.evaluate(provider))
        return ~mask if self.negated else mask

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        return self.item.column_refs()

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        middle = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.item.canonical()} {middle})"

    def map_columns(self, fn) -> "IsNull":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return IsNull(self.item.map_columns(fn), self.negated)


_ARITH_OPS = ("+", "-", "*", "/")


class Arith(Expr):
    """Binary arithmetic; NULL operands propagate to a NULL result."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITH_OPS:
            raise QueryError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, provider) -> np.ndarray:
        """Evaluate over the provider's rows (see :meth:`Expr.evaluate`)."""
        left = self.left.evaluate(provider)
        right = self.right.evaluate(provider)
        null_mask = _nulls(left) | _nulls(right)
        safe_left = left.copy()
        safe_right = right.copy()
        safe_left[null_mask] = 0
        safe_right[null_mask] = 1 if self.op == "/" else 0
        if self.op == "+":
            out = safe_left + safe_right
        elif self.op == "-":
            out = safe_left - safe_right
        elif self.op == "*":
            out = safe_left * safe_right
        else:
            out = safe_left / safe_right
        out = np.asarray(out, dtype=object)
        out[null_mask] = None
        return out

    def column_refs(self) -> ColumnRefs:
        """The (alias, column) pairs this node references."""
        return self.left.column_refs() | self.right.column_refs()

    def canonical(self) -> str:
        """Stable textual form used in cache keys."""
        return f"({self.left.canonical()} {self.op} {self.right.canonical()})"

    def map_columns(self, fn) -> "Arith":
        """Copy of this node with every Col leaf mapped through ``fn``."""
        return Arith(self.op, self.left.map_columns(fn), self.right.map_columns(fn))


def conjuncts_of(expr: Expr) -> List[Expr]:
    """Split a boolean expression into its top-level AND conjuncts."""
    if isinstance(expr, And):
        return expr.conjuncts()
    return [expr]


def single_alias_of(expr: Expr) -> Optional[str]:
    """The one alias an expression touches, or None if zero or several."""
    aliases = {alias for alias, _ in expr.column_refs()}
    if len(aliases) == 1:
        return next(iter(aliases))
    return None
