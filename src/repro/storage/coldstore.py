"""Disk-resident cold store: memory-mapped main partitions (tiered storage).

The paper's hot/cold multi-partitioning (Section 5.4) routes aged tuples
into a cold group that is effectively read-only.  This module gives those
cold mains a second *storage tier*: the code vectors and MVCC stamp vectors
live in flat little-endian ``int64`` files accessed through ``np.memmap``,
and the dictionaries live in JSON files loaded lazily on first data access
and releasable under memory pressure.  Everything the planner and pruner
need — row counts, per-column dictionary min/max, null flags — stays
resident in the partition synopsis, so prune verdicts never touch disk.

Demotion (``demote_partition``) follows the checkpoint machinery's atomic
file protocol: the data files are written and fsynced first, then a
CRC-carrying ``manifest.json`` is published via tmp-file + ``os.replace``.
The manifest is the commit point — a crash before it leaves only ignorable
garbage (the resident main is still authoritative), a crash after it leaves
a complete, attachable cold partition.  Never a torn hybrid.

The in-memory swap preserves object identity: the same
:class:`~repro.storage.partition.Partition` and
:class:`~repro.storage.column.ColumnFragment` objects stay in place, only
their backing vectors and dictionaries are exchanged, and the owning
table's version is *not* bumped — demotion changes the physical layout,
never the data, so cached plans and delta memos (keyed on partition
identity) remain valid across it.

Recovery (``reattach_partition``) re-attaches cold files to a
checkpoint-restored partition only when every file's CRC matches the
restored content; stale files (e.g. from a pre-crash merge that was
re-run) are discarded and the partition stays resident.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..errors import StorageError
from .dictionary import MainDictionary, _build_decode_table

_FORMAT_VERSION = 1
_MANIFEST = "manifest.json"


class MappedIntVector:
    """A read-only ``int64`` vector backed by a memory-mapped file.

    Duck-types the read side of :class:`~repro.storage.vector.IntVector`:
    ``view()`` returns the (lazily opened) memmap array, ``__getitem__``
    serves point reads, and ``release()`` drops the mapping so the OS can
    reclaim the page cache — the length stays known without any I/O.
    Writes raise: cold data is immutable; a partition that must stamp
    ``dts`` on a mapped vector first promotes it to a resident copy.
    """

    __slots__ = ("path", "_length", "_mmap")

    #: Tier marker checked via ``getattr`` so resident vectors (which use
    #: ``__slots__``) need no counterpart attribute.
    is_mapped_store = True

    def __init__(self, path, length: int):
        self.path = Path(path)
        self._length = int(length)
        self._mmap: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._length

    def view(self) -> np.ndarray:
        """The mapped ``int64`` array (opened on first access)."""
        if self._length == 0:
            return np.empty(0, dtype=np.int64)
        if self._mmap is None:
            self._mmap = np.memmap(
                self.path, dtype="<i8", mode="r", shape=(self._length,)
            )
        return self._mmap

    def __getitem__(self, index):
        if isinstance(index, slice):
            return np.asarray(self.view()[index]).copy()
        if index < 0:
            index += self._length
        if index < 0 or index >= self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        return int(self.view()[index])

    def __setitem__(self, index, value) -> None:
        raise StorageError(
            f"mapped vector {self.path.name!r} is read-only; promote to a "
            "resident copy before writing"
        )

    def __iter__(self):
        return iter(self.view().tolist())

    def to_numpy(self) -> np.ndarray:
        """A resident copy of the mapped elements."""
        return np.asarray(self.view(), dtype=np.int64).copy()

    @property
    def is_loaded(self) -> bool:
        """True while a memmap handle is open."""
        return self._mmap is not None

    def release(self) -> None:
        """Drop the memmap handle (reopened transparently on next access)."""
        self._mmap = None

    def nbytes(self) -> int:
        """Bytes of the backing file (8 per element)."""
        return self._length * 8

    def __repr__(self) -> str:
        state = "loaded" if self.is_loaded else "released"
        return f"MappedIntVector({self.path.name!r}, size={self._length}, {state})"


class LazyMainDictionary:
    """A :class:`MainDictionary` proxy whose values live in a JSON file.

    The synopsis facts pruning needs — size, min, max — are carried as
    metadata and answered without I/O; any *data* access (decode, lookup,
    values) loads the real sorted dictionary on first use.  ``release()``
    drops the loaded values again, which is what lets the governor shed
    mapped cold columns first under memory pressure.
    """

    __slots__ = ("path", "_size", "_min", "_max", "_loaded")

    is_lazy = True

    def __init__(self, path, size: int, min_value, max_value):
        self.path = Path(path)
        self._size = int(size)
        self._min = min_value
        self._max = max_value
        self._loaded: Optional[MainDictionary] = None

    # -- metadata (no I/O) ---------------------------------------------
    def __len__(self) -> int:
        return self._size

    def min_value(self):
        """Smallest stored value (from metadata, never from disk)."""
        return self._min

    def max_value(self):
        """Largest stored value (from metadata, never from disk)."""
        return self._max

    @property
    def is_loaded(self) -> bool:
        """True while the value payload is materialized in RAM."""
        return self._loaded is not None

    def loaded_nbytes(self) -> int:
        """Resident bytes currently held (0 when released)."""
        return self._loaded.nbytes() if self._loaded is not None else 0

    def release(self) -> int:
        """Drop the materialized values; returns the bytes freed."""
        freed = self.loaded_nbytes()
        self._loaded = None
        return freed

    # -- data access (loads on demand) ---------------------------------
    def _load(self) -> MainDictionary:
        if self._loaded is None:
            values = json.loads(self.path.read_text())
            self._loaded = MainDictionary.from_sorted(values)
        return self._loaded

    def lookup(self, value):
        if value is None:
            return None
        return self._load().lookup(value)

    def decode(self, code: int):
        return self._load().decode(code)

    def __contains__(self, value) -> bool:
        return self._load().__contains__(value)

    def values(self) -> List[object]:
        return self._load().values()

    def decode_table(self) -> np.ndarray:
        return self._load().decode_table()

    def nbytes(self) -> int:
        """Approximate bytes of the on-disk dictionary payload."""
        loaded = self._loaded
        if loaded is not None:
            return loaded.nbytes()
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def __repr__(self) -> str:
        state = "loaded" if self.is_loaded else "released"
        return f"LazyMainDictionary({self.path.name!r}, size={self._size}, {state})"


# ----------------------------------------------------------------------
# on-disk layout
# ----------------------------------------------------------------------
def partition_dir(directory, table_name: str, partition_name: str) -> Path:
    """``<cold root>/<table>/<partition>`` — one directory per cold main."""
    return Path(directory) / table_name / partition_name


def _int64_bytes(array: np.ndarray) -> bytes:
    return np.ascontiguousarray(array, dtype="<i8").tobytes()


def _write_file(path: Path, payload: bytes, faults=None) -> int:
    """Write ``payload`` + fsync; returns its CRC32.

    Data files need no tmp/replace dance of their own: they are invisible
    until the manifest commits, and a re-demotion simply overwrites them.
    """
    if faults is not None:
        faults.fire("coldstore.write")
    with path.open("wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    return zlib.crc32(payload)


def _dict_payload(values: List[object]) -> bytes:
    return json.dumps(values, separators=(",", ":")).encode("utf-8")


def demote_partition(
    table_name: str,
    partition,
    directory,
    faults=None,
) -> Path:
    """Demote one resident main partition to the memory-mapped cold tier.

    Writes the cold files, publishes the manifest atomically, then swaps
    the partition's fragments onto mapped vectors and lazy dictionaries
    **in place** (same objects, no version bump).  Idempotent: demoting an
    already-mapped partition is a no-op.  Returns the partition directory.
    """
    if partition.kind != "main":
        raise StorageError(
            f"only main partitions can be demoted, not {partition.kind!r} "
            f"partition {partition.name!r}"
        )
    if partition.storage_tier == "mapped":
        return partition_dir(directory, table_name, partition.name)
    target = partition_dir(directory, table_name, partition.name)
    target.mkdir(parents=True, exist_ok=True)
    rows = partition.row_count
    manifest: Dict = {
        "format_version": _FORMAT_VERSION,
        "table": table_name,
        "partition": partition.name,
        "row_count": rows,
        "columns": [],
    }
    swaps = []  # staged in-memory swaps, applied only after the commit
    for name in partition.column_names():
        fragment = partition.column(name)
        codes = np.asarray(fragment.codes(), dtype=np.int64)
        values = fragment.dictionary.values()
        codes_file = f"{name}.codes.bin"
        dict_file = f"{name}.dict.json"
        codes_crc = _write_file(target / codes_file, _int64_bytes(codes), faults)
        dict_crc = _write_file(target / dict_file, _dict_payload(values), faults)
        stats = partition.column_stats(name)
        manifest["columns"].append(
            {
                "name": name,
                "codes_file": codes_file,
                "codes_crc": codes_crc,
                "dict_file": dict_file,
                "dict_crc": dict_crc,
                "dict_size": len(values),
                "min": stats.min,
                "max": stats.max,
                "has_nulls": stats.has_nulls,
            }
        )
        swaps.append((fragment, target / codes_file, target / dict_file, stats))
    manifest["cts_crc"] = _write_file(
        target / "cts.bin", _int64_bytes(partition.cts_array()), faults
    )
    manifest["dts_crc"] = _write_file(
        target / "dts.bin", _int64_bytes(partition.dts_array()), faults
    )
    _commit_manifest(target, manifest, faults)
    # The manifest is durable: flip the in-memory backing.  Object identity
    # (partition, fragments) and the table version are deliberately
    # preserved — see the module docstring.
    for fragment, codes_path, dict_path, stats in swaps:
        spec = {"dict_size": len(fragment.dictionary), "min": stats.min,
                "max": stats.max, "has_nulls": stats.has_nulls}
        _map_fragment(fragment, codes_path, dict_path, rows, spec)
    partition.attach_mapped_stamps(
        MappedIntVector(target / "cts.bin", rows),
        MappedIntVector(target / "dts.bin", rows),
    )
    return target


def _commit_manifest(target: Path, manifest: Dict, faults=None) -> None:
    payload = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    document = json.dumps(
        {"crc": zlib.crc32(payload.encode("utf-8")), "manifest": manifest},
        sort_keys=True,
        separators=(",", ":"),
    )
    if faults is not None:
        faults.fire("coldstore.commit")
    tmp = target / (_MANIFEST + ".tmp")
    with tmp.open("w") as handle:
        handle.write(document)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target / _MANIFEST)


def read_manifest(target: Path) -> Optional[Dict]:
    """The CRC-validated manifest of one cold partition dir, or None."""
    try:
        document = json.loads((Path(target) / _MANIFEST).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or "manifest" not in document:
        return None
    manifest = document["manifest"]
    payload = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(payload.encode("utf-8")) != document.get("crc"):
        return None
    if manifest.get("format_version") != _FORMAT_VERSION:
        return None
    return manifest


def _map_fragment(fragment, codes_path: Path, dict_path: Path, rows: int, spec: Dict) -> None:
    """Swap one fragment's backing onto the cold files (identity-preserving)."""
    fragment.dictionary = LazyMainDictionary(
        dict_path, spec["dict_size"], spec["min"], spec["max"]
    )
    fragment.attach_mapped_codes(
        MappedIntVector(codes_path, rows), has_nulls=spec["has_nulls"]
    )


def _file_crc(path: Path) -> Optional[int]:
    try:
        return zlib.crc32(path.read_bytes())
    except OSError:
        return None


def reattach_partition(table_name: str, partition, directory) -> bool:
    """Re-attach cold files to a freshly restored resident partition.

    Every file must CRC-match the restored partition's own content —
    ``build_main`` is deterministic, so equality proves the files describe
    exactly this data.  ``dts`` is allowed to diverge (WAL replay may have
    stamped invalidations after the demotion): a mismatched ``dts`` stays
    resident while everything else maps.  Stale or torn cold directories
    are deleted.  Returns True when the partition ended up mapped.
    """
    target = partition_dir(directory, table_name, partition.name)
    manifest = read_manifest(target)
    if manifest is None:
        discard_cold_files(directory, table_name, partition.name)
        return False
    if (
        manifest.get("row_count") != partition.row_count
        or [c["name"] for c in manifest["columns"]] != partition.column_names()
    ):
        discard_cold_files(directory, table_name, partition.name)
        return False
    rows = partition.row_count
    for spec in manifest["columns"]:
        fragment = partition.column(spec["name"])
        codes = np.asarray(fragment.codes(), dtype=np.int64)
        if zlib.crc32(_int64_bytes(codes)) != spec["codes_crc"]:
            discard_cold_files(directory, table_name, partition.name)
            return False
        if _file_crc(target / spec["codes_file"]) != spec["codes_crc"]:
            discard_cold_files(directory, table_name, partition.name)
            return False
        values = fragment.dictionary.values()
        if zlib.crc32(_dict_payload(values)) != spec["dict_crc"]:
            discard_cold_files(directory, table_name, partition.name)
            return False
        if _file_crc(target / spec["dict_file"]) != spec["dict_crc"]:
            discard_cold_files(directory, table_name, partition.name)
            return False
    if (
        zlib.crc32(_int64_bytes(partition.cts_array())) != manifest["cts_crc"]
        or _file_crc(target / "cts.bin") != manifest["cts_crc"]
    ):
        discard_cold_files(directory, table_name, partition.name)
        return False
    dts_matches = (
        zlib.crc32(_int64_bytes(partition.dts_array())) == manifest["dts_crc"]
        and _file_crc(target / "dts.bin") == manifest["dts_crc"]
    )
    for spec in manifest["columns"]:
        _map_fragment(
            partition.column(spec["name"]),
            target / spec["codes_file"],
            target / spec["dict_file"],
            rows,
            spec,
        )
    partition.attach_mapped_stamps(
        MappedIntVector(target / "cts.bin", rows),
        None if not dts_matches else MappedIntVector(target / "dts.bin", rows),
    )
    return True


def discard_cold_files(directory, table_name: str, partition_name: Optional[str] = None) -> None:
    """Delete the cold files of one partition (or a whole table)."""
    root = Path(directory) / table_name
    target = root if partition_name is None else root / partition_name
    shutil.rmtree(target, ignore_errors=True)


def release_table(table) -> int:
    """Release every loaded cold handle of ``table``; returns bytes freed."""
    freed = 0
    for partition in table.partitions():
        freed += partition.release_cold()
    return freed


def reattach_database(db) -> int:
    """Post-recovery pass: re-attach (or discard) every table's cold files.

    Returns the number of partitions that came back memory-mapped.
    """
    cold_root = db.cold_dir
    if cold_root is None or not Path(cold_root).is_dir():
        return 0
    attached = 0
    for name in db.catalog.table_names():
        table = db.catalog.table(name)
        table_dir = Path(cold_root) / name
        if not table_dir.is_dir():
            continue
        partition_names = {p.name for p in table.partitions()}
        for sub in list(table_dir.iterdir()):
            if sub.name not in partition_names:
                shutil.rmtree(sub, ignore_errors=True)  # orphaned directory
                continue
            partition = table.partition(sub.name)
            if partition.kind != "main":
                shutil.rmtree(sub, ignore_errors=True)
                continue
            if reattach_partition(name, partition, cold_root):
                attached += 1
    return attached


def register_coldstore_fault_points() -> None:
    """Declare the cold store's kill points with the fault injector."""
    from ..reliability.faults import register_fault_point

    register_fault_point(
        "coldstore.write", "before a cold data file (codes/dict/stamps) is written"
    )
    register_fault_point(
        "coldstore.commit", "before the cold manifest is atomically published"
    )


register_coldstore_fault_points()
