"""Database snapshots: save/load the full engine state to a directory.

An in-memory engine still needs a way to survive restarts; this module
persists a :class:`~repro.database.Database` as a self-describing directory:

* ``catalog.json`` — schemas (including MD tid columns), primary keys,
  table ids, layout flags, the registered matching dependencies and
  consistent-aging declarations, and the transaction high-water mark;
* one ``<table>.<partition>.jsonl`` file per partition, each line holding a
  row's values plus its MVCC create/invalidate stamps, so visibility —
  including retained history from ``merge(keep_history=True)`` — survives
  the round trip.

Aggregate cache entries are deliberately *not* persisted: they are a cache,
rebuilt on first use (and their visibility snapshots reference in-memory
partition objects).  Aging rules built from the library constructors
serialize with the catalog; arbitrary callable rules are code and must be
passed back to :func:`load_database`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Optional

from ..errors import StorageError
from .aging import aging_rule_from_spec, aging_rule_spec
from .partition import LIVE, Partition
from .schema import ColumnDef, Schema, SqlType
from .table import Table

_FORMAT_VERSION = 1


def save_database(db, directory) -> Path:
    """Write a consistent snapshot of ``db`` into ``directory``.

    The directory is created if missing; existing snapshot files in it are
    overwritten.  Returns the directory path.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    catalog: Dict = {
        "format_version": _FORMAT_VERSION,
        "latest_tid": db.transactions.global_snapshot(),
        "tables": [],
        "matching_dependencies": [
            {
                "parent_table": md.parent_table,
                "parent_key": md.parent_key,
                "child_table": md.child_table,
                "child_fk": md.child_fk,
                "tid_column": md.tid_column,
            }
            for md in db.enforcer.dependencies()
        ],
        "consistent_agings": [
            {"left": decl.left_table, "right": decl.right_table}
            for decl in db.cache._agings
        ],
    }
    for name in db.catalog.table_names():
        table = db.table(name)
        catalog["tables"].append(
            {
                "name": name,
                "table_id": table.table_id,
                "aged": table.is_aged(),
                "aging_spec": aging_rule_spec(table.aging_rule)
                if table.is_aged()
                else None,
                "separate_update_delta": table.separate_update_delta,
                "primary_key": table.schema.primary_key,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.sql_type.value,
                        "nullable": column.nullable,
                        "is_tid": column.is_tid,
                    }
                    for column in table.schema
                ],
                "partitions": [p.name for p in table.partitions()],
            }
        )
        for partition in table.partitions():
            _save_partition(root, name, partition)
    (root / "catalog.json").write_text(json.dumps(catalog, indent=2))
    return root


def _save_partition(root: Path, table_name: str, partition: Partition) -> None:
    path = root / f"{table_name}.{partition.name}.jsonl"
    cts = partition.cts_array()
    dts = partition.dts_array()
    with path.open("w") as handle:
        for row_idx in range(partition.row_count):
            record = {
                "row": partition.get_row(row_idx),
                "cts": int(cts[row_idx]),
                "dts": int(dts[row_idx]),
            }
            handle.write(json.dumps(record) + "\n")


def load_database(
    directory,
    aging_rules: Optional[Dict[str, Callable]] = None,
    **database_kwargs,
):
    """Reconstruct a :class:`~repro.database.Database` from a snapshot.

    ``aging_rules`` must supply the aging rule callable for every table that
    was saved with hot/cold partitioning (rules are code and cannot be
    serialized).  Additional keyword arguments go to the ``Database``
    constructor (cache config, policies).
    """
    from ..database import Database

    root = Path(directory)
    catalog_path = root / "catalog.json"
    if not catalog_path.exists():
        raise StorageError(f"no snapshot at {root} (missing catalog.json)")
    catalog = json.loads(catalog_path.read_text())
    if catalog.get("format_version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format {catalog.get('format_version')!r}"
        )
    aging_rules = aging_rules or {}
    db = Database(**database_kwargs)
    for spec in catalog["tables"]:
        schema = Schema(
            [
                ColumnDef(
                    column["name"],
                    SqlType(column["type"]),
                    nullable=column["nullable"],
                    is_tid=column["is_tid"],
                )
                for column in spec["columns"]
            ],
            primary_key=spec["primary_key"],
        )
        aging_rule = aging_rules.get(spec["name"])
        if aging_rule is None and spec["aged"]:
            # Serializable rules round-trip through the snapshot itself; an
            # explicitly passed rule still wins (callable rules are code).
            aging_rule = aging_rule_from_spec(spec.get("aging_spec"))
            if aging_rule is None:
                raise StorageError(
                    f"table {spec['name']!r} was saved with hot/cold "
                    "partitioning under a non-serializable rule; pass it "
                    "via aging_rules={...}"
                )
        table = db.catalog.create_table(
            spec["name"],
            schema,
            aging_rule=aging_rule,
            separate_update_delta=spec["separate_update_delta"],
        )
        table.table_id = spec["table_id"]
        for partition_name in spec["partitions"]:
            _load_partition(root, spec["name"], table, partition_name)
        table.rebuild_pk_index()
    for md_spec in catalog["matching_dependencies"]:
        db.add_matching_dependency(
            md_spec["parent_table"],
            md_spec["parent_key"],
            md_spec["child_table"],
            md_spec["child_fk"],
            tid_column_name=md_spec["tid_column"],
        )
    for aging_spec in catalog["consistent_agings"]:
        db.declare_consistent_aging(aging_spec["left"], aging_spec["right"])
    db.transactions.advance_to(catalog["latest_tid"])
    # New tables created after the restore must not reuse snapshot table ids.
    max_id = max((spec["table_id"] for spec in catalog["tables"]), default=0)
    db.catalog._next_table_id = max(db.catalog._next_table_id, max_id + 1)
    return db


def _load_partition(root: Path, table_name: str, table: Table, partition_name: str) -> None:
    path = root / f"{table_name}.{partition_name}.jsonl"
    if not path.exists():
        raise StorageError(f"snapshot is missing partition file {path.name}")
    rows, cts, dts = [], [], []
    with path.open() as handle:
        for line in handle:
            record = json.loads(line)
            rows.append(record["row"])
            cts.append(record["cts"])
            dts.append(record["dts"])
    target = table.partition(partition_name)
    if target.kind == "main":
        rebuilt = Partition.build_main(partition_name, table.schema, rows, cts, dts)
        group = table._group_of_partition(partition_name)
        group.main = rebuilt
    else:
        for row, created, invalidated in zip(rows, cts, dts):
            row_idx = target.append_row(table.schema.validate_row(row), created)
            if invalidated != LIVE:
                target.invalidate(row_idx, invalidated)
