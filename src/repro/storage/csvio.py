"""CSV import/export for tables.

Loading real data into the engine (and getting results back out) is the
first thing a downstream user needs.  Export writes the *visible* rows at
the current snapshot; import parses values according to the table schema
and routes every row through the normal insert path, so matching-dependency
tid columns are stamped and referential integrity is checked exactly as for
programmatic inserts.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional

from ..errors import SchemaError
from .schema import SqlType


def export_csv(db, table_name: str, path, include_tid_columns: bool = False) -> int:
    """Write the table's visible rows to ``path``; returns the row count.

    NULL is written as the empty string.  MD tid columns are internal
    bookkeeping and are excluded unless explicitly requested.
    """
    table = db.table(table_name)
    snapshot = db.transactions.global_snapshot()
    if include_tid_columns:
        columns = table.schema.column_names
    else:
        columns = table.schema.business_column_names()
    written = 0
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for partition in table.partitions():
            fragments = [partition.column(name) for name in columns]
            for row_idx in partition.visible_rows(snapshot):
                values = [fragment.value_at(int(row_idx)) for fragment in fragments]
                writer.writerow(["" if v is None else v for v in values])
                written += 1
    return written


def import_csv(db, table_name: str, path, batch_size: int = 1000) -> int:
    """Load rows from a CSV file (header row required); returns the count.

    Values are parsed by the schema's column types; the empty string is
    NULL.  Rows are inserted in transactions of ``batch_size`` so a large
    import does not create one transaction per row.  Unknown header columns
    raise ``SchemaError`` before anything is inserted.
    """
    table = db.table(table_name)
    schema = table.schema
    with Path(path).open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty (missing header)") from None
        unknown = [name for name in header if not schema.has_column(name)]
        if unknown:
            raise SchemaError(f"CSV header has unknown columns: {unknown}")
        parsers = [_parser_for(schema.column(name).sql_type) for name in header]
        count = 0
        txn = db.begin()
        for record in reader:
            if len(record) != len(header):
                raise SchemaError(
                    f"CSV row {count + 2} has {len(record)} fields, "
                    f"expected {len(header)}"
                )
            row = {
                name: parser(value)
                for name, parser, value in zip(header, parsers, record)
            }
            db.insert(table_name, row, txn=txn)
            count += 1
            if count % batch_size == 0:
                txn.commit()
                txn = db.begin()
        txn.commit()
    return count


def _parser_for(sql_type: SqlType):
    if sql_type is SqlType.INT:
        return lambda text: int(text) if text != "" else None
    if sql_type is SqlType.FLOAT:
        return lambda text: float(text) if text != "" else None
    # TEXT and DATE stay strings; empty string means NULL.
    return lambda text: text if text != "" else None
