"""Tables: schema + partition groups + primary-key index.

A table owns one or more *partition groups*.  Each group is a (main, delta)
pair: the plain delta-main architecture has the single group ``("main",
"delta")``; hot/cold multi-partitioning (Section 5.4) has the groups
``("hot_main", "hot_delta")`` and ``("cold_main", "cold_delta")``.

All writes follow the insert-only MVCC discipline of the paper:

* ``insert`` appends to the delta of the group selected by the aging rule
  (the hot group by default);
* ``update`` invalidates the old version (wherever it lives — main *or*
  delta) and appends the new version to the delta of the *same* group, which
  is why a cold delta "contains only the updated tuples from cold main";
* ``delete`` just invalidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import IntegrityError, SchemaError, StorageError
from .partition import LIVE, Partition
from .schema import Schema


@dataclass(frozen=True)
class RowLocator:
    """Physical address of a row version: (partition name, row index)."""

    partition: str
    row: int


@dataclass
class PartitionGroup:
    """A (main, delta[, update-delta]) set sharing one merge lifecycle.

    ``update_delta`` is the optional *separate update-delta* of the paper's
    future-work Section 8 ("keeping track of updates in the delta storage in
    a separate negative-delta partition"): new versions written by updates
    land there instead of the insert delta, so the insert delta's tid ranges
    stay fresh and the main x insert-delta subjoins stay prunable even under
    update traffic.
    """

    name: str  # "default", "hot", or "cold"
    main: Partition
    delta: Partition
    update_delta: Optional[Partition] = None

    def partitions(self) -> List[Partition]:
        """The group's partitions: main, delta, and the update delta if any."""
        out = [self.main, self.delta]
        if self.update_delta is not None:
            out.append(self.update_delta)
        return out

    def delta_partitions(self) -> List[Partition]:
        """The group's write-side partitions (delta + optional update delta)."""
        out = [self.delta]
        if self.update_delta is not None:
            out.append(self.update_delta)
        return out


# An aging rule maps a (validated) row dict to a group name ("hot"/"cold").
AgingRule = Callable[[Dict[str, object]], str]


class Table:
    """A columnar table in the delta-main architecture."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        table_id: int = 0,
        aging_rule: Optional[AgingRule] = None,
        separate_update_delta: bool = False,
    ):
        self.name = name
        self.schema = schema
        self.table_id = table_id
        self.aging_rule = aging_rule
        self.separate_update_delta = separate_update_delta

        def make_group(group_name: str, prefix: str) -> PartitionGroup:
            update_delta = (
                Partition(f"{prefix}udelta", "delta", schema)
                if separate_update_delta
                else None
            )
            return PartitionGroup(
                group_name,
                Partition(f"{prefix}main", "main", schema),
                Partition(f"{prefix}delta", "delta", schema),
                update_delta,
            )

        if aging_rule is None:
            self._groups: Dict[str, PartitionGroup] = {
                "default": make_group("default", "")
            }
        else:
            self._groups = {
                "hot": make_group("hot", "hot_"),
                "cold": make_group("cold", "cold_"),
            }
        # Primary-key index: current (latest) version of each live key.
        self._pk_index: Dict[object, RowLocator] = {}
        # Monotonic change counter covering DML, merges (partition swaps),
        # and schema evolution.  Cached query plans are keyed on it: a plan
        # is valid exactly while every referenced table's version is
        # unchanged, so plan-cache invalidation is an integer compare.
        self.version = 0

    def bump_version(self) -> int:
        """Advance and return the table's change counter (any write path)."""
        self.version += 1
        return self.version

    # ------------------------------------------------------------------
    # partition access
    # ------------------------------------------------------------------
    def groups(self) -> List[PartitionGroup]:
        """All partition groups of this table."""
        return list(self._groups.values())

    def group(self, name: str) -> PartitionGroup:
        """The named partition group (default/hot/cold)."""
        try:
            return self._groups[name]
        except KeyError:
            raise StorageError(f"table {self.name!r} has no group {name!r}") from None

    def partition(self, name: str) -> Partition:
        """Look up a partition by physical name (StorageError if unknown)."""
        for grp in self._groups.values():
            for partition in grp.partitions():
                if partition.name == name:
                    return partition
        raise StorageError(f"table {self.name!r} has no partition {name!r}")

    def partitions(self) -> List[Partition]:
        """All partitions, mains first within each group."""
        out: List[Partition] = []
        for grp in self._groups.values():
            out.extend(grp.partitions())
        return out

    def main_partitions(self) -> List[Partition]:
        """The main partition of every group."""
        return [grp.main for grp in self._groups.values()]

    def delta_partitions(self) -> List[Partition]:
        """Every write-side partition across all groups."""
        out: List[Partition] = []
        for grp in self._groups.values():
            out.extend(grp.delta_partitions())
        return out

    def is_aged(self) -> bool:
        """True if the table uses hot/cold multi-partitioning."""
        return self.aging_rule is not None

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _route(self, row: Dict[str, object]) -> PartitionGroup:
        if self.aging_rule is None:
            return self._groups["default"]
        group_name = self.aging_rule(row)
        if group_name not in self._groups:
            raise StorageError(
                f"aging rule returned unknown group {group_name!r} "
                f"for table {self.name!r}"
            )
        return self._groups[group_name]

    def insert(self, values: Dict[str, object], tid: int) -> RowLocator:
        """Validate and insert a row created by transaction ``tid``.

        Enforces primary-key uniqueness against the live index.  Matching-
        dependency ``tid`` columns are expected to be present already (the
        :class:`~repro.database.Database` enforcement hook fills them before
        calling this method).
        """
        row = self.schema.validate_row(values)
        pk_col = self.schema.primary_key
        if pk_col is not None:
            pk_value = row[pk_col]
            if pk_value is None:
                raise IntegrityError(
                    f"NULL primary key on insert into {self.name!r}"
                )
            if pk_value in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {pk_value!r} in table {self.name!r}"
                )
        group = self._route(row)
        row_idx = group.delta.append_row(row, tid)
        locator = RowLocator(group.delta.name, row_idx)
        if pk_col is not None:
            self._pk_index[row[pk_col]] = locator
        self.bump_version()
        return locator

    def update(self, pk_value, changes: Dict[str, object], tid: int) -> RowLocator:
        """Invalidate the current version of ``pk_value`` and insert the new one.

        The new version lands in the delta of the same partition group as the
        old version (updates of cold rows go to the cold delta, Section 5.4).
        """
        old_locator = self._require_pk(pk_value)
        old_partition = self.partition(old_locator.partition)
        old_row = old_partition.get_row(old_locator.row)
        new_row = dict(old_row)
        for key, value in changes.items():
            if not self.schema.has_column(key):
                raise SchemaError(f"unknown column {key!r} in update")
            new_row[key] = value
        new_row = self.schema.validate_row(new_row)
        pk_col = self.schema.primary_key
        if new_row[pk_col] != pk_value:
            raise IntegrityError("primary-key updates are not supported")
        group = self._group_of_partition(old_locator.partition)
        old_partition.invalidate(old_locator.row, tid)
        target = group.update_delta if group.update_delta is not None else group.delta
        row_idx = target.append_row(new_row, tid)
        locator = RowLocator(target.name, row_idx)
        self._pk_index[pk_value] = locator
        self.bump_version()
        return locator

    def delete(self, pk_value, tid: int) -> None:
        """Invalidate the current version of ``pk_value``."""
        locator = self._require_pk(pk_value)
        self.partition(locator.partition).invalidate(locator.row, tid)
        del self._pk_index[pk_value]
        self.bump_version()

    def _require_pk(self, pk_value) -> RowLocator:
        if self.schema.primary_key is None:
            raise IntegrityError(f"table {self.name!r} has no primary key")
        locator = self._pk_index.get(pk_value)
        if locator is None:
            raise IntegrityError(
                f"no live row with primary key {pk_value!r} in table {self.name!r}"
            )
        return locator

    def _group_of_partition(self, partition_name: str) -> PartitionGroup:
        for grp in self._groups.values():
            if partition_name in [p.name for p in grp.partitions()]:
                return grp
        raise StorageError(f"unknown partition {partition_name!r}")

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def pk_lookup(self, pk_value) -> Optional[RowLocator]:
        """Locator of the live version of ``pk_value`` or ``None``."""
        return self._pk_index.get(pk_value)

    def get_row(self, pk_value) -> Optional[Dict[str, object]]:
        """Decoded current version of the row with the given key, or None."""
        locator = self._pk_index.get(pk_value)
        if locator is None:
            return None
        return self.partition(locator.partition).get_row(locator.row)

    def row_count(self) -> int:
        """Physical rows across all partitions (including invalidated)."""
        return sum(p.row_count for p in self.partitions())

    def visible_row_count(self, snapshot: int) -> int:
        """Rows visible to ``snapshot`` across all partitions."""
        return sum(p.visible_count(snapshot) for p in self.partitions())

    def nbytes(self) -> int:
        """Approximate bytes across all partitions."""
        return sum(p.nbytes() for p in self.partitions())

    def nbytes_resident(self) -> int:
        """Approximate RAM bytes across all partitions (mapped excluded)."""
        return sum(p.nbytes_resident() for p in self.partitions())

    def nbytes_mapped(self) -> int:
        """Approximate cold-tier (memory-mapped) bytes across all partitions."""
        return sum(p.nbytes_mapped() for p in self.partitions())

    def tier_bytes(self) -> Dict[str, int]:
        """Byte totals by storage tier, the ``repro_storage_tier_bytes``
        breakdown: ``hot`` (resident bytes of hot/default groups),
        ``cold_resident`` (cold-group bytes still in RAM — cold deltas,
        un-demoted cold mains, loaded lazy dictionaries), and
        ``cold_mapped`` (bytes backed by cold-store files)."""
        out = {"hot": 0, "cold_resident": 0, "cold_mapped": 0}
        for grp in self._groups.values():
            for partition in grp.partitions():
                if grp.name == "cold":
                    out["cold_resident"] += partition.nbytes_resident()
                    out["cold_mapped"] += partition.nbytes_mapped()
                else:
                    out["hot"] += partition.nbytes_resident()
                    # A mapped non-cold main is unusual but representable
                    # (manual demotion of a default-group main).
                    out["cold_mapped"] += partition.nbytes_mapped()
        return out

    # ------------------------------------------------------------------
    # schema evolution
    # ------------------------------------------------------------------
    def extend_schema(self, extra_columns) -> None:
        """Append columns to an *empty* table's schema.

        Used when a matching dependency installs its tid column after table
        creation.  Extending a populated table would require a backfill,
        which the engine does not support — declare tid columns up front or
        register MDs before loading data.
        """
        if self.row_count() > 0:
            raise SchemaError(
                f"cannot extend schema of non-empty table {self.name!r}"
            )
        extra = [c for c in extra_columns if not self.schema.has_column(c.name)]
        if not extra:
            return
        self.schema = self.schema.extended_with(extra)
        for group in self._groups.values():
            group.main = Partition(group.main.name, "main", self.schema)
            group.delta = Partition(group.delta.name, "delta", self.schema)
            if group.update_delta is not None:
                group.update_delta = Partition(
                    group.update_delta.name, "delta", self.schema
                )
        self.bump_version()

    # ------------------------------------------------------------------
    # merge support (used by repro.storage.merge)
    # ------------------------------------------------------------------
    def replace_group(
        self,
        group_name: str,
        new_main: Partition,
        new_delta: Partition,
        new_update_delta: Optional[Partition] = None,
    ) -> None:
        """Swap in the rebuilt partition set after a delta merge."""
        group = self.group(group_name)
        group.main = new_main
        group.delta = new_delta
        if group.update_delta is not None:
            if new_update_delta is None:
                new_update_delta = Partition(
                    group.update_delta.name, "delta", self.schema
                )
            group.update_delta = new_update_delta
        self.bump_version()

    def rebuild_pk_index(self) -> None:
        """Recompute the primary-key index after partitions were rebuilt."""
        pk_col = self.schema.primary_key
        if pk_col is None:
            return
        self._pk_index.clear()
        for partition in self.partitions():
            dts = partition.dts_array()
            fragment = partition.column(pk_col)
            for row in range(partition.row_count):
                if dts[row] == LIVE:
                    self._pk_index[fragment.value_at(row)] = RowLocator(
                        partition.name, row
                    )

    def __repr__(self) -> str:
        parts = ", ".join(f"{p.name}={p.row_count}" for p in self.partitions())
        return f"Table({self.name!r}, {parts})"
