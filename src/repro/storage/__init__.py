"""Columnar delta-main storage substrate.

Implements the storage model the aggregate cache relies on (Section 2 of
the paper): dictionary-encoded column fragments, main/delta partitions with
MVCC visibility stamps, packed visibility bit vectors, the delta-merge
operation, hot/cold aging, and the table catalog.
"""

from .aging import (
    COLD,
    HOT,
    ConsistentAging,
    ThresholdAging,
    aging_rule_from_spec,
    aging_rule_spec,
    ratio_aging,
    threshold_aging,
)
from .bitvector import BitVector
from .catalog import Catalog
from .coldstore import (
    LazyMainDictionary,
    MappedIntVector,
    demote_partition,
    discard_cold_files,
    reattach_database,
    reattach_partition,
    read_manifest,
    release_table,
)
from .column import ColumnFragment
from .dictionary import NULL_CODE, DeltaDictionary, MainDictionary
from .merge import MergeEvent, MergeListener, MergeStats, merge_table
from .partition import LIVE, ColumnStats, Partition
from .schema import ColumnDef, Schema, SqlType, tid_column
from .csvio import export_csv, import_csv
from .snapshot import load_database, save_database
from .table import PartitionGroup, RowLocator, Table
from .vector import IntVector, ObjectVector

__all__ = [
    "BitVector",
    "Catalog",
    "COLD",
    "ColumnDef",
    "ColumnFragment",
    "ColumnStats",
    "ConsistentAging",
    "DeltaDictionary",
    "HOT",
    "IntVector",
    "LIVE",
    "LazyMainDictionary",
    "MainDictionary",
    "MappedIntVector",
    "MergeEvent",
    "MergeListener",
    "MergeStats",
    "NULL_CODE",
    "ObjectVector",
    "Partition",
    "PartitionGroup",
    "RowLocator",
    "Schema",
    "SqlType",
    "Table",
    "ThresholdAging",
    "aging_rule_from_spec",
    "aging_rule_spec",
    "demote_partition",
    "discard_cold_files",
    "export_csv",
    "import_csv",
    "load_database",
    "merge_table",
    "reattach_database",
    "reattach_partition",
    "read_manifest",
    "release_table",
    "save_database",
    "ratio_aging",
    "threshold_aging",
    "tid_column",
]
