"""Table catalog: name -> table registry with stable table ids.

Table ids participate in the aggregate-cache key (Fig. 2: "Table Name &
Id"), so a dropped-and-recreated table of the same name never matches stale
cache entries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CatalogError
from .schema import Schema
from .table import AgingRule, Table


class Catalog:
    """Registry of the tables known to one :class:`~repro.database.Database`."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._next_table_id = 1

    def create_table(
        self,
        name: str,
        schema: Schema,
        aging_rule: Optional[AgingRule] = None,
        separate_update_delta: bool = False,
    ) -> Table:
        """Create and register a table; raises if the name is taken."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(
            name,
            schema,
            table_id=self._next_table_id,
            aging_rule=aging_rule,
            separate_update_delta=separate_update_delta,
        )
        self._next_table_id += 1
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Unregister a table (CatalogError if absent)."""
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name (CatalogError if absent)."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        """True if the name is registered."""
        return name in self._tables

    def table_names(self) -> List[str]:
        """Registered table names in creation order."""
        return list(self._tables)

    def tables(self) -> List[Table]:
        """The registered Table objects."""
        return list(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __repr__(self) -> str:
        return f"Catalog(tables={list(self._tables)})"
