"""Dictionary-encoded column fragments.

A *column fragment* is the physical storage of one column inside one
horizontal partition: a dictionary (delta- or main-flavoured) plus an
``int64`` code vector with one entry per row.  NULLs are encoded as
``NULL_CODE``.

The fragment also answers the two questions the object-aware optimizations
ask at run time (Section 5.1): the current ``min``/``max`` of the column's
dictionary (for the dynamic-pruning prefilter of Equation 5) and fast
decoded access to row ranges (for join/aggregation processing).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from .dictionary import NULL_CODE, DeltaDictionary, MainDictionary
from .vector import IntVector

Dictionary = Union[DeltaDictionary, MainDictionary]


class ColumnFragment:
    """One column of one partition: dictionary + code vector.

    The code vector is either a resident :class:`IntVector` or — after the
    partition is demoted to the cold tier — a memory-mapped vector from
    :mod:`repro.storage.coldstore`.  The fragment object itself never
    changes identity across that swap.
    """

    __slots__ = ("name", "dictionary", "_codes", "_null_state")

    def __init__(self, name: str, dictionary: Optional[Dictionary] = None):
        self.name = name
        self.dictionary: Dictionary = dictionary if dictionary is not None else DeltaDictionary()
        self._codes = IntVector()
        # Cached (row_count, has_nulls) synopsis fact.  Code vectors are
        # append-only (invalidation touches only MVCC stamps), so a cached
        # verdict stays valid exactly while the length is unchanged.
        self._null_state: Optional[tuple] = None

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, value) -> None:
        """Append one value (requires a writable :class:`DeltaDictionary`)."""
        if not isinstance(self.dictionary, DeltaDictionary):
            raise TypeError(
                f"column {self.name!r} uses a read-only main dictionary; "
                "appends are only valid on delta fragments"
            )
        self._codes.append(self.dictionary.encode(value))

    @classmethod
    def build_main(cls, name: str, values: Sequence[object]) -> "ColumnFragment":
        """Bulk-build a read-optimized fragment from raw ``values``.

        Used by the delta merge: the sorted main dictionary is created from
        the distinct values and every row re-encoded against it.
        """
        dictionary = MainDictionary(values)
        fragment = cls(name, dictionary)
        codes = np.fromiter(
            (NULL_CODE if v is None else dictionary.lookup(v) for v in values),
            dtype=np.int64,
            count=len(values),
        )
        fragment._codes.extend(codes)
        return fragment

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._codes)

    def codes(self) -> np.ndarray:
        """Zero-copy view of the code vector (do not hold across appends)."""
        return self._codes.view()

    def codes_for(self, rows) -> np.ndarray:
        """Codes of the given row indices (one gather, no decoding)."""
        return self._codes.view()[np.asarray(rows, dtype=np.int64)]

    def value_at(self, row: int):
        """Decoded value of one row."""
        return self.dictionary.decode(self._codes[row])

    def decode_codes(self, codes: np.ndarray) -> np.ndarray:
        """Decoded values for an array of dictionary codes (object array).

        Decoding is one fancy-indexing pass over the dictionary's cached
        decode LUT — ``NULL_CODE`` (-1) wraps to the LUT's trailing None
        slot, so NULLs need no separate branch.
        """
        return self.dictionary.decode_table()[codes]

    def decode_rows(self, rows) -> np.ndarray:
        """Decoded values for the given row indices as an object array.

        ``rows`` may be a list or a numpy integer array.  Decoding goes
        through the dictionary's cached dense LUT so repeated values are
        decoded once, which is the usual column-store trick.
        """
        return self.decode_codes(self.codes_for(rows))

    def decode_all(self) -> List[object]:
        """All row values in row order (used by the merge to rebuild mains)."""
        return list(self.decode_rows(np.arange(len(self._codes), dtype=np.int64)))

    def equality_mask(self, value) -> np.ndarray:
        """Boolean mask over all rows where the column equals ``value``.

        Comparison happens in *code space*: the value is looked up once in
        the dictionary; absence means an all-false mask without touching the
        rows.  NULL never matches.
        """
        code = self.dictionary.lookup(value)
        if code is None:
            return np.zeros(len(self._codes), dtype=bool)
        return self._codes.view() == code

    def has_nulls(self) -> bool:
        """True when any stored row is NULL.

        The dictionary ranges used for dynamic join pruning ignore NULLs;
        the pruner must know whether NULL rows exist when referential
        integrity is not enforced (a NULL-tid row may still join).  The
        verdict is cached per code-vector length (codes are append-only),
        so repeated prune checks — and mapped cold fragments, whose flag is
        seeded from the cold manifest — answer without scanning.
        """
        n_rows = len(self._codes)
        if self._null_state is not None and self._null_state[0] == n_rows:
            return self._null_state[1]
        verdict = bool((self._codes.view() == NULL_CODE).any())
        self._null_state = (n_rows, verdict)
        return verdict

    def min_value(self):
        """Dictionary minimum (the pruning prefilter input), None if empty."""
        return self.dictionary.min_value()

    def max_value(self):
        """Dictionary maximum (the pruning prefilter input), None if empty."""
        return self.dictionary.max_value()

    # ------------------------------------------------------------------
    # storage tiers
    # ------------------------------------------------------------------
    @property
    def is_mapped(self) -> bool:
        """True when the code vector lives in the memory-mapped cold tier."""
        return bool(getattr(self._codes, "is_mapped_store", False))

    def attach_mapped_codes(self, vector, has_nulls: bool) -> None:
        """Swap the code backing onto a mapped vector (demotion/reattach).

        ``has_nulls`` seeds the null-state cache from the cold manifest so
        the synopsis never has to fault the mapping in.
        """
        if len(vector) != len(self._codes):
            raise ValueError(
                f"mapped codes for {self.name!r} have {len(vector)} rows, "
                f"fragment has {len(self._codes)}"
            )
        self._codes = vector
        self._null_state = (len(vector), bool(has_nulls))

    def release(self) -> int:
        """Drop loaded cold handles (memmap + lazy dictionary payload).

        No-op on resident fragments.  Returns the resident bytes freed.
        """
        freed = 0
        release_codes = getattr(self._codes, "release", None)
        if self.is_mapped and release_codes is not None:
            release_codes()
        release_dict = getattr(self.dictionary, "release", None)
        if release_dict is not None:
            freed += release_dict()
        return freed

    def nbytes(self) -> int:
        """Approximate bytes: packed code vector + dictionary payload.

        Codes are counted at the bit-packed width a column store would use
        (``ceil(log2(|dict|+1))`` bits per row), which is what makes the main
        store's better compression visible in the Section 6.2 experiment.
        Mapped fragments are counted at their on-disk footprint instead —
        use :meth:`nbytes_resident`/:meth:`nbytes_mapped` where the tier
        split matters (eviction profit, budgets).
        """
        return self.nbytes_resident() + self.nbytes_mapped()

    def nbytes_resident(self) -> int:
        """Bytes held in RAM.  For a mapped fragment this is only the
        lazily loaded dictionary payload (0 when released); the mapped
        pages themselves are the OS page cache's problem, not the budget's.
        """
        if self.is_mapped:
            loaded = getattr(self.dictionary, "loaded_nbytes", None)
            return loaded() if loaded is not None else 0
        n_rows = len(self._codes)
        n_distinct = len(self.dictionary)
        bits = max(1, int(np.ceil(np.log2(n_distinct + 2))))
        return (n_rows * bits + 7) // 8 + self.dictionary.nbytes()

    def nbytes_mapped(self) -> int:
        """Bytes backed by cold files (0 for resident fragments)."""
        if not self.is_mapped:
            return 0
        mapped = self._codes.nbytes()
        loaded = getattr(self.dictionary, "loaded_nbytes", lambda: 0)()
        return mapped + max(0, self.dictionary.nbytes() - loaded)

    def __repr__(self) -> str:
        kind = "main" if isinstance(self.dictionary, MainDictionary) else "delta"
        tier = ", mapped" if self.is_mapped else ""
        return f"ColumnFragment({self.name!r}, kind={kind}, rows={len(self._codes)}{tier})"
