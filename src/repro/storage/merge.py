"""The delta-merge operation.

Periodically the rows accumulated in a delta partition are propagated into a
freshly rebuilt, read-optimized main partition (Krueger et al. [17], cited
as the merge mechanism in Section 2).  The aggregate cache piggy-backs its
incremental maintenance on this event (Sections 5.2 and 6.1): listeners are
notified *before* the physical swap — while the pre-merge state is still
queryable, so compensation deltas can be computed — and *after* it, so
stored visibility snapshots can be re-anchored to the new main.

``merge_table`` merges every partition group of a table (or a selected one),
so hot and cold groups can be merged independently, and related tables can
be merge-synchronized by the caller to maximize the pruning success rate
(Section 5.2).

The merge is **atomic**: it runs in two phases.  Phase one notifies every
listener and *stages* the rebuilt main/delta pairs off to the side; nothing
observable changes, and any exception — a listener failure, a storage
invariant violation, an injected fault — leaves the table exactly as it
was, after giving listeners a ``cancel_merge`` callback to discard the
maintenance they planned.  Phase two swaps every staged group in, rebuilds
the primary-key index, and only then fires ``after_merge``.  The aggregate
cache depends on this all-or-nothing behavior: a half-merged table would
strand its pending maintenance and corrupt every entry anchored on the old
partitions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from ..errors import StorageError
from .partition import LIVE, Partition
from .table import PartitionGroup, Table


@dataclass
class MergeEvent:
    """Description of one group merge, passed to listeners.

    ``snapshot`` is the transaction id whose visible rows are folded into the
    new main.  Rows invalidated at or before the snapshot are dropped unless
    the merge keeps history.
    """

    table: Table
    group_name: str
    main_name: str
    delta_name: str
    snapshot: int
    keep_history: bool
    merged_delta_rows: int = 0
    update_delta_name: Optional[str] = None  # set when the group keeps one


class MergeListener(Protocol):
    """Two-phase observer of delta merges (the aggregate cache implements it).

    ``cancel_merge`` is optional: listeners that plan state in
    ``before_merge`` should implement it to discard that state when the
    merge aborts before the swap (no ``after_merge`` will follow).
    """

    def before_merge(self, event: MergeEvent) -> None:
        """Called while the pre-merge partitions are still in place."""

    def after_merge(self, event: MergeEvent) -> None:
        """Called after the new main/delta pair has been swapped in."""


@dataclass
class MergeStats:
    """Summary of one ``merge_table`` call."""

    table: str
    groups_merged: int = 0
    rows_moved: int = 0
    rows_dropped: int = 0


@dataclass
class _StagedGroup:
    """A rebuilt (main, delta) pair waiting for the phase-two swap."""

    group: PartitionGroup
    event: MergeEvent
    new_main: Partition
    new_delta: Partition
    moved: int
    dropped: int


def merge_table(
    table: Table,
    snapshot: int,
    listeners: Sequence[MergeListener] = (),
    group_name: Optional[str] = None,
    keep_history: bool = False,
    faults=None,
    obs=None,
) -> MergeStats:
    """Atomically merge the delta(s) of ``table`` into rebuilt main partition(s).

    Parameters
    ----------
    snapshot:
        The current global transaction id.  All rows created at or before it
        participate; newer rows cannot exist in the single-writer model, and
        encountering one raises ``StorageError`` to surface the bug.
    listeners:
        Merge observers; see :class:`MergeListener`.
    group_name:
        Merge only the named partition group ("default"/"hot"/"cold").
        Merging groups separately models the unsynchronized-merge scenario
        of Fig. 5.
    keep_history:
        Keep invalidated rows (with their ``dts`` stamps) in the new main so
        temporal queries on historical data remain possible (Section 2).
        The default drops them, which is what retires main-compensation
        debt — maintenance listeners account for the dropped contributions.
    faults:
        Optional :class:`~repro.reliability.FaultInjector`; the merge fires
        ``merge.stage``, ``merge.before_swap``, and ``merge.after_swap``.
    obs:
        Optional :class:`~repro.obs.EngineMetrics`; a successful merge
        observes its wall time and row-movement counters.  Aborted merges
        record nothing — the table did not change.

    Any failure before the swap — including a listener's ``before_merge`` —
    leaves the table untouched: listeners get ``cancel_merge(event)`` for
    every event already announced, then the exception propagates.
    """
    stats = MergeStats(table=table.name)
    merge_started = time.perf_counter()
    groups = [table.group(group_name)] if group_name else table.groups()
    staged: List[_StagedGroup] = []
    announced: List[MergeEvent] = []
    fire = faults.fire if faults is not None else (lambda point: None)
    try:
        for group in groups:
            event = MergeEvent(
                table=table,
                group_name=group.name,
                main_name=group.main.name,
                delta_name=group.delta.name,
                snapshot=snapshot,
                keep_history=keep_history,
                merged_delta_rows=sum(p.row_count for p in group.delta_partitions()),
                update_delta_name=(
                    group.update_delta.name if group.update_delta is not None else None
                ),
            )
            announced.append(event)
            for listener in listeners:
                listener.before_merge(event)
            fire("merge.stage")
            new_main, new_delta, moved, dropped = _build_group(
                table, group, snapshot, keep_history
            )
            staged.append(
                _StagedGroup(group, event, new_main, new_delta, moved, dropped)
            )
        fire("merge.before_swap")
    except BaseException:
        # Phase one failed: nothing was swapped.  Give listeners the chance
        # to discard whatever they planned for the announced events, then
        # surface the original failure.
        for event in announced:
            _cancel_listeners(listeners, event)
        raise
    # Phase two: the physical swap.  Pure pointer exchanges — no I/O, no
    # listener code — so the table transitions atomically for any observer.
    for item in staged:
        table.replace_group(item.group.name, item.new_main, item.new_delta)
        stats.groups_merged += 1
        stats.rows_moved += item.moved
        stats.rows_dropped += item.dropped
    table.rebuild_pk_index()
    fire("merge.after_swap")
    for item in staged:
        for listener in listeners:
            listener.after_merge(item.event)
    if obs is not None:
        obs.merge_seconds.observe(time.perf_counter() - merge_started)
        if stats.rows_moved:
            obs.merge_rows_moved.inc(stats.rows_moved)
        if stats.rows_dropped:
            obs.merge_rows_dropped.inc(stats.rows_dropped)
    return stats


def _cancel_listeners(listeners: Sequence[MergeListener], event) -> None:
    for listener in listeners:
        cancel = getattr(listener, "cancel_merge", None)
        if cancel is not None:
            cancel(event)


def _build_group(
    table: Table, group: PartitionGroup, snapshot: int, keep_history: bool
) -> Tuple[Partition, Partition, int, int]:
    """Rebuild one (main, delta) pair off to the side, without swapping.

    Returns ``(new_main, new_delta, rows moved, rows dropped)``.
    """
    rows: List[Dict[str, object]] = []
    cts: List[int] = []
    dts: List[int] = []
    moved = 0
    dropped = 0
    for partition in group.partitions():
        cts_arr = partition.cts_array()
        dts_arr = partition.dts_array()
        for row in range(partition.row_count):
            if cts_arr[row] > snapshot:
                raise StorageError(
                    f"row created by future transaction {int(cts_arr[row])} "
                    f"found during merge at snapshot {snapshot}"
                )
            invalidated = dts_arr[row] != LIVE and dts_arr[row] <= snapshot
            if invalidated and not keep_history:
                dropped += 1
                continue
            rows.append(partition.get_row(row))
            cts.append(int(cts_arr[row]))
            dts.append(int(dts_arr[row]))
            if partition.kind == "delta":
                moved += 1
    new_main = Partition.build_main(group.main.name, table.schema, rows, cts, dts)
    new_delta = Partition(group.delta.name, "delta", table.schema)
    return new_main, new_delta, moved, dropped
