"""Dictionary encoding for columnar storage.

Both partition kinds store each column as a dictionary of distinct values
plus a vector of integer value codes.  The two dictionary flavours mirror
the paper's storage model (Section 2):

* :class:`DeltaDictionary` — write-optimized: values are appended in first-
  seen order, lookup is a hash map.  Used by delta partitions.
* :class:`MainDictionary` — read-optimized: values are sorted, codes are
  ranks.  Built in bulk during the delta merge.  Sorted order makes the
  min/max needed by dynamic join pruning (Example 1 / Equation 5) O(1).

NULL is never stored in a dictionary; columns encode NULL as code ``-1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

NULL_CODE = -1


def _build_decode_table(values: Sequence[object]) -> np.ndarray:
    """Dense decode LUT: ``table[code]`` is the value, ``table[-1]`` is None.

    The extra trailing slot lets ``NULL_CODE`` (-1) wrap to a None entry, so
    a whole code vector decodes in one fancy-indexing operation without a
    separate NULL branch.
    """
    table = np.empty(len(values) + 1, dtype=object)
    for i, value in enumerate(values):
        table[i] = value
    table[-1] = None
    return table


class DeltaDictionary:
    """Unsorted, append-order dictionary for write-optimized partitions."""

    __slots__ = ("_values", "_codes", "_decode_table")

    def __init__(self):
        self._values: List[object] = []
        self._codes: Dict[object, int] = {}
        self._decode_table: Optional[np.ndarray] = None

    def encode(self, value) -> int:
        """Return the code for ``value``, inserting it if unseen."""
        if value is None:
            return NULL_CODE
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._codes[value] = code
            self._decode_table = None  # LUT is stale once the dictionary grows
        return code

    def lookup(self, value) -> Optional[int]:
        """Return the code for ``value`` or ``None`` if absent (NULL -> None)."""
        if value is None:
            return None
        return self._codes.get(value)

    def decode(self, code: int):
        """Return the value for ``code`` (``NULL_CODE`` -> None)."""
        if code == NULL_CODE:
            return None
        return self._values[code]

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value) -> bool:
        return value in self._codes

    def values(self) -> List[object]:
        """The distinct values in code order (a copy)."""
        return list(self._values)

    def decode_table(self) -> np.ndarray:
        """Cached decode LUT: ``table[code]`` -> value, ``table[-1]`` -> None.

        Rebuilt lazily after the dictionary grows; callers must treat the
        array as read-only (it is shared across all decode calls).
        """
        table = self._decode_table
        if table is None or len(table) != len(self._values) + 1:
            table = _build_decode_table(self._values)
            self._decode_table = table
        return table

    def min_value(self):
        """Smallest stored value, or ``None`` for an empty dictionary."""
        return min(self._values) if self._values else None

    def max_value(self):
        """Largest stored value, or ``None`` for an empty dictionary."""
        return max(self._values) if self._values else None

    def nbytes(self) -> int:
        """Approximate heap bytes of the dictionary payload."""
        return sum(_value_bytes(v) for v in self._values)

    def __repr__(self) -> str:
        return f"DeltaDictionary(size={len(self._values)})"


class MainDictionary:
    """Sorted dictionary for read-optimized main partitions.

    Codes are the ranks of the values in sorted order, which is what enables
    order-preserving compressed scans in a real column store.  Built once
    from the distinct values present at merge time.
    """

    __slots__ = ("_values", "_codes", "_decode_table")

    def __init__(self, values: Iterable[object] = ()):
        distinct = set(v for v in values if v is not None)
        self._values: List[object] = sorted(distinct)
        self._codes: Dict[object, int] = {v: i for i, v in enumerate(self._values)}
        self._decode_table: Optional[np.ndarray] = None

    @classmethod
    def from_sorted(cls, sorted_values: Sequence[object]) -> "MainDictionary":
        """Build from an already-sorted, de-duplicated sequence (no checks)."""
        out = cls()
        out._values = list(sorted_values)
        out._codes = {v: i for i, v in enumerate(out._values)}
        out._decode_table = None
        return out

    def lookup(self, value) -> Optional[int]:
        """Return the code for ``value`` or ``None`` if absent (NULL -> None)."""
        if value is None:
            return None
        return self._codes.get(value)

    def decode(self, code: int):
        """Return the value for ``code`` (``NULL_CODE`` -> None)."""
        if code == NULL_CODE:
            return None
        return self._values[code]

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value) -> bool:
        return value in self._codes

    def values(self) -> List[object]:
        """The distinct values in code (= sorted) order (a copy)."""
        return list(self._values)

    def decode_table(self) -> np.ndarray:
        """Cached decode LUT: ``table[code]`` -> value, ``table[-1]`` -> None.

        Main dictionaries are immutable between merges, so the LUT is built
        once; callers must treat the array as read-only.
        """
        table = self._decode_table
        if table is None or len(table) != len(self._values) + 1:
            table = _build_decode_table(self._values)
            self._decode_table = table
        return table

    def min_value(self):
        """Smallest stored value (O(1) — first element), or ``None`` if empty."""
        return self._values[0] if self._values else None

    def max_value(self):
        """Largest stored value (O(1) — last element), or ``None`` if empty."""
        return self._values[-1] if self._values else None

    def nbytes(self) -> int:
        """Approximate heap bytes of the dictionary payload.

        Sorted integer dictionaries are modelled as delta-encoded (store the
        gaps between consecutive values, varint-sized), which is why main
        partitions compress better than deltas — the effect behind the
        10 % vs 13 % tid-column overhead of Section 6.2.  Monotonic ids and
        transaction ids compress particularly well this way.
        """
        if self._values and all(
            isinstance(v, int) and not isinstance(v, bool) for v in self._values
        ):
            total = 8  # the base value
            previous = self._values[0]
            for value in self._values[1:]:
                gap = value - previous
                previous = value
                total += max(1, (gap.bit_length() + 7) // 8)
            return total
        return sum(_value_bytes(v) for v in self._values)

    def __repr__(self) -> str:
        return f"MainDictionary(size={len(self._values)})"


def _value_bytes(value) -> int:
    """Crude per-value byte estimate used by the Section 6.2 memory bench."""
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    return 16
