"""Growable typed vectors backed by numpy arrays.

Delta partitions grow one row at a time; main partitions are rebuilt in bulk
during the delta merge.  :class:`IntVector` provides an append-friendly
``int64`` array with amortized O(1) growth so both access patterns are cheap,
and exposes the underlying numpy view for vectorized scans.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

_INITIAL_CAPACITY = 16


class IntVector:
    """An append-only vector of 64-bit signed integers.

    The vector doubles its backing buffer when full.  ``view()`` returns a
    zero-copy numpy slice of the live elements; the slice is invalidated by
    the next append that triggers a reallocation, so callers must not retain
    it across writes.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, values: Iterable[int] = ()):
        initial = np.fromiter(values, dtype=np.int64)
        if initial.size:
            capacity = max(_INITIAL_CAPACITY, initial.size)
            self._data = np.empty(capacity, dtype=np.int64)
            self._data[: initial.size] = initial
            self._size = int(initial.size)
        else:
            self._data = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
            self._size = 0

    # ------------------------------------------------------------------
    def _ensure(self, extra: int) -> None:
        need = self._size + extra
        if need <= len(self._data):
            return
        capacity = max(len(self._data) * 2, need)
        grown = np.empty(capacity, dtype=np.int64)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, value: int) -> None:
        """Append a single value."""
        self._ensure(1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values) -> None:
        """Append all ``values`` (any iterable or numpy array).

        Non-sized iterables (generators, ``map`` objects) are materialized
        first: ``np.asarray`` would otherwise wrap them in a 0-d object
        array and raise instead of consuming them.
        """
        if not isinstance(values, np.ndarray) and not hasattr(values, "__len__"):
            values = list(values)
        arr = np.asarray(values, dtype=np.int64)
        self._ensure(arr.size)
        self._data[self._size : self._size + arr.size] = arr
        self._size += int(arr.size)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.view()[index].copy()
        if index < 0:
            index += self._size
        if index < 0 or index >= self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        return int(self._data[index])

    def __setitem__(self, index: int, value: int) -> None:
        if index < 0:
            index += self._size
        if index < 0 or index >= self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        self._data[index] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self.view().tolist())

    def view(self) -> np.ndarray:
        """Zero-copy numpy view of the live elements (do not hold across appends)."""
        return self._data[: self._size]

    def to_numpy(self) -> np.ndarray:
        """A defensive copy of the live elements."""
        return self.view().copy()

    def copy(self) -> "IntVector":
        """Independent copy of the live elements."""
        out = IntVector()
        out._data = self._data[: self._size].copy()
        out._size = self._size
        return out

    def nbytes(self) -> int:
        """Bytes used by the live elements (not the spare capacity)."""
        return self._size * 8

    def __repr__(self) -> str:
        head = self.view()[:8].tolist()
        suffix = ", ..." if self._size > 8 else ""
        return f"IntVector({head}{suffix}, size={self._size})"


class ObjectVector:
    """An append-only vector of arbitrary Python objects.

    Used for dictionary value arrays where values may be strings, numbers,
    or dates.  Backed by a plain list (numpy object arrays add overhead
    without vectorization benefit for heterogeneous payloads).
    """

    __slots__ = ("_items",)

    def __init__(self, values: Iterable = ()):
        self._items = list(values)

    def append(self, value) -> None:
        """Append one value."""
        self._items.append(value)

    def extend(self, values) -> None:
        """Append all values from an iterable."""
        self._items.extend(values)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def __iter__(self):
        return iter(self._items)

    def to_list(self) -> list:
        """The values as a plain list (copy)."""
        return list(self._items)

    def to_numpy(self) -> np.ndarray:
        """The values as a numpy object array (copy)."""
        arr = np.empty(len(self._items), dtype=object)
        for i, item in enumerate(self._items):
            arr[i] = item
        return arr

    def copy(self) -> "ObjectVector":
        """Independent copy."""
        return ObjectVector(self._items)

    def __repr__(self) -> str:
        head = self._items[:8]
        suffix = ", ..." if len(self._items) > 8 else ""
        return f"ObjectVector({head}{suffix}, size={len(self._items)})"
